"""The versioned public surface of :mod:`repro`.

This module is the single place that defines what the library promises
to keep stable: everything in ``__all__`` here is the supported API,
``from repro import X`` resolves through this facade, and
``tests/api/test_public_surface.py`` snapshots the surface so it cannot
drift silently (CI fails on any change that does not also update the
manifest and ``docs/api.md``).

Stability policy (see ``docs/api.md`` for the full statement):

* Names in ``__all__`` only gain keyword arguments; they are removed or
  re-signatured only across a major version, after at least one minor
  release of ``DeprecationWarning``.
* Names importable from :mod:`repro` but *not* listed here are legacy
  spellings kept working through warn-once deprecation shims in the
  package ``__init__``; import them from their home modules instead.
* Everything else (``repro.*`` submodules' private helpers) carries no
  compatibility promise.

Every user-facing operation verdict — offline realization, healing
submit, service response, bench report — satisfies the :class:`Result`
protocol (``ok`` / ``reason`` / ``as_dict``), so callers and the CLI
handle all of them through one code path
(:func:`repro.report.serialize.result_to_dict`).
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.core.admission import (
    AdmissionController,
    AdmissionDenied,
    BatchAdmissionOutcome,
)
from repro.core.batch import BatchRouteOutcome, route_batch
from repro.core.churn import (
    ChurnLimitExceeded,
    ChurnPolicy,
    ChurnResult,
    apply_churn,
    extend_route,
    join_member,
    leave_member,
    prune_route,
)
from repro.core.conference import Conference, ConferenceSet
from repro.core.conflict import ConflictReport, analyze_conflicts
from repro.core.healing import RetryPolicy, SelfHealingController, SubmitOutcome
from repro.core.network import ConferenceNetwork, RealizationResult
from repro.cluster.bench import ClusterBenchReport, run_cluster_bench
from repro.cluster.controller import ClusterService, ClusterStats, ShardInfo, ShardState
from repro.cluster.directory import DirectoryEntry, SessionDirectory
from repro.cluster.placement import place_shard, rank_shards
from repro.cluster.rebalance import RebalancePlan, plan_rebalance
from repro.core.routing import (
    Route,
    RoutingPolicy,
    TapPolicy,
    UnroutableError,
    route_conference,
)
from repro.obs.export import ExpositionServer
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    BurnWindow,
    SLOEvaluator,
    SLOSpec,
    WindowedHistogram,
    default_serve_slos,
)
from repro.obs.trace import Tracer
from repro.parallel.cache import RouteCache
from repro.perfmodel.capacity import DeliveryModel
from repro.perfmodel.model import (
    CycleSim,
    LaneQueue,
    LinkModel,
    PerfModelConfig,
    simulate_delivery,
)
from repro.perfmodel.report import PerfReport
from repro.protect.plans import BackupPlan, BackupPlanStore, PlanStats
from repro.serve.backpressure import AdmissionQueue, ShedPolicy
from repro.serve.bench import ServeBenchReport, run_serve_bench
from repro.serve.protocol import Priority, ServiceResponse, SessionRequest
from repro.serve.service import FabricService, ServiceStats
from repro.serve.session import Session, SessionState, SessionTable
from repro.sim.engine import EventLoop
from repro.sim.faults import (
    FaultInjector,
    FaultProcessConfig,
    FaultTransition,
    generate_fault_timeline,
)
from repro.switching.fabric import CapacityExceeded, DeliveryReport, Fabric
from repro.topology.builders import PAPER_TOPOLOGIES, TOPOLOGY_BUILDERS, build
from repro.topology.network import MultistageNetwork
from repro.workloads.churn import (
    ChurnEvent,
    diurnal_load,
    flash_crowd,
    lurker_joins,
    replay_churn,
    zipf_sizes,
)

#: Version of the public surface (bumped on any additive change; the
#: library version tracks releases, this tracks the API contract).
API_VERSION = "1.7"


@runtime_checkable
class Result(Protocol):
    """The contract every operation verdict in the library satisfies.

    ``ok`` says whether the operation fully succeeded, ``reason`` is
    ``None`` exactly when ``ok`` is true (otherwise a short
    machine-readable cause), and ``as_dict`` returns a JSON-ready view
    whose ``"kind"`` key names the concrete result type.
    :class:`~repro.core.network.RealizationResult`,
    :class:`~repro.core.healing.SubmitOutcome`,
    :class:`~repro.serve.protocol.ServiceResponse`, and
    :class:`~repro.serve.bench.ServeBenchReport` all conform; the test
    suite checks conformance with ``isinstance(x, Result)``.
    """

    @property
    def ok(self) -> bool: ...

    @property
    def reason(self) -> "str | None": ...

    def as_dict(self) -> dict[str, Any]: ...


__all__ = [
    # the contract
    "API_VERSION",
    "Result",
    # build & offline realization
    "ConferenceNetwork",
    "RealizationResult",
    "MultistageNetwork",
    "PAPER_TOPOLOGIES",
    "TOPOLOGY_BUILDERS",
    "build",
    # conferences & routing
    "Conference",
    "ConferenceSet",
    "Route",
    "RoutingPolicy",
    "TapPolicy",
    "UnroutableError",
    "ConflictReport",
    "analyze_conflicts",
    "route_conference",
    # columnar batch routing
    "route_batch",
    "BatchRouteOutcome",
    "BatchAdmissionOutcome",
    # incremental membership churn
    "ChurnLimitExceeded",
    "ChurnPolicy",
    "ChurnResult",
    "apply_churn",
    "extend_route",
    "prune_route",
    "join_member",
    "leave_member",
    # churn workload timelines
    "ChurnEvent",
    "flash_crowd",
    "diurnal_load",
    "lurker_joins",
    "zipf_sizes",
    "replay_churn",
    # switching fabric
    "Fabric",
    "DeliveryReport",
    "CapacityExceeded",
    # admission & self-healing
    "AdmissionController",
    "AdmissionDenied",
    "RetryPolicy",
    "SelfHealingController",
    "SubmitOutcome",
    "RouteCache",
    # protection (precomputed fast failover)
    "BackupPlan",
    "BackupPlanStore",
    "PlanStats",
    # faults & simulation clock
    "EventLoop",
    "FaultInjector",
    "FaultProcessConfig",
    "FaultTransition",
    "generate_fault_timeline",
    # the online service layer
    "FabricService",
    "ServiceStats",
    "SessionRequest",
    "ServiceResponse",
    "Priority",
    "ShedPolicy",
    "AdmissionQueue",
    "Session",
    "SessionState",
    "SessionTable",
    "ServeBenchReport",
    "run_serve_bench",
    # the sharded cluster layer
    "ClusterService",
    "ClusterStats",
    "ShardInfo",
    "ShardState",
    "SessionDirectory",
    "DirectoryEntry",
    "RebalancePlan",
    "plan_rebalance",
    "place_shard",
    "rank_shards",
    "ClusterBenchReport",
    "run_cluster_bench",
    # cycle-level buffered-switch performance model
    "PerfModelConfig",
    "LaneQueue",
    "LinkModel",
    "CycleSim",
    "PerfReport",
    "DeliveryModel",
    "simulate_delivery",
    # observability
    "Tracer",
    "MetricsRegistry",
    # live health (SLOs, flight recording, exposition)
    "SLOSpec",
    "SLOEvaluator",
    "BurnWindow",
    "WindowedHistogram",
    "default_serve_slos",
    "FlightRecorder",
    "ExpositionServer",
]
