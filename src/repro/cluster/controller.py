"""The cluster facade: one service surface over a pool of fabric shards.

:class:`ClusterService` runs many independent
:class:`~repro.serve.service.FabricService` fabrics ("shards") behind
the same ``submit_open`` / ``submit_join`` / ``submit_leave`` /
``submit_close`` surface a single fabric offers.  On top of the shards
it owns exactly the cross-fabric concerns:

* **Placement** — every open is routed to the shard that
  :func:`~repro.cluster.placement.place_shard` names for its cluster
  session id, weighted by shard capacity.  Clients hold *cluster*
  session ids; the :class:`~repro.cluster.directory.SessionDirectory`
  maps them to whichever shard-local session currently realizes them.
* **Lockstep time** — :meth:`tick` starts this tick's migration
  allowance, then ticks every live shard in sorted id order, so all
  shard clocks advance together and a seeded workload makes identical
  admission decisions regardless of how sessions map onto shards.
* **Elastic rebalancing** — :meth:`scale_up` / :meth:`scale_down` /
  :meth:`rebalance` move only the placement-delta sessions (the HRW
  minimal-disruption bound), make-before-break, throttled by the
  :class:`~repro.cluster.rebalance.MigrationQueue` budget per tick.
* **Shard failover** — :meth:`fail_shard` declares a fabric dead:
  in-flight operations against it fail fast with ``shard-failed``,
  and every session it hosted is re-homed onto the surviving shards
  through the same migration machinery (priority opens that retry until
  they land — a live session is never abandoned, mirroring the
  per-fabric healing guarantee of PR 1's restore path).

Observability (PR 3) threads through: ``cluster.migrate`` /
``cluster.failover`` spans per move, shard-labelled request counters,
and cluster-level gauges.  Shards receive the tracer but **not** the
metrics registry — per-shard gauges would clobber one another under a
shared registry, so the cluster emits its own shard-labelled series
instead.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable

from repro.cluster.directory import DirectoryEntry, EntryState, SessionDirectory
from repro.cluster.placement import place_shard, rank_shards
from repro.cluster.rebalance import MigrationQueue, Move, RebalancePlan, plan_rebalance
from repro.core.churn import ChurnPolicy
from repro.perfmodel.capacity import DeliveryModel, validate_capacity_model
from repro.serve.backpressure import ShedPolicy
from repro.serve.protocol import Priority, RequestKind, ServiceResponse
from repro.serve.service import FabricService
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - annotations only
    import numpy as np

    from repro.core.healing import RetryPolicy
    from repro.core.network import ConferenceNetwork
    from repro.obs.flight import FlightRecorder
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.slo import SLOEvaluator
    from repro.obs.trace import Tracer
    from repro.parallel.cache import RouteCache
    from repro.perfmodel.model import PerfModelConfig
    from repro.serve.batcher import BatchReport
    from repro.sim.faults import FaultInjector, FaultTransition

__all__ = ["ShardState", "ShardInfo", "ClusterStats", "ClusterService"]

CompletionCallback = Callable[[ServiceResponse], None]


class ShardState(Enum):
    """Where a shard sits in its cluster-membership lifecycle."""

    ACTIVE = "active"  # placeable; hosts sessions
    DRAINING = "draining"  # no new placements; sessions moving off
    FAILED = "failed"  # fabric declared dead; sessions re-homed
    REMOVED = "removed"  # drained to empty and shut down


#: Shard states whose fabric still executes ticks.
LIVE_SHARD_STATES = frozenset({ShardState.ACTIVE, ShardState.DRAINING})


@dataclass
class ShardInfo:
    """One member fabric of the cluster."""

    shard_id: str
    weight: float
    service: FabricService
    state: ShardState = ShardState.ACTIVE

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view for reports and the CLI."""
        return {
            "shard": self.shard_id,
            "weight": self.weight,
            "state": self.state.value,
            "sessions": self.service.sessions.counts(),
            "service": self.service.stats.as_dict(),
        }


@dataclass
class ClusterStats:
    """Lifetime accounting of one :class:`ClusterService`.

    Request tallies count **client-visible** verdicts only; internal
    traffic (migration opens, make-before-break closes) shows up in
    ``migrations`` / ``failovers`` instead, so the client-facing numbers
    are invariant under how sessions happen to map onto shards.
    """

    ticks: int = 0
    offered: int = 0
    admitted: int = 0
    applied: int = 0
    closed: int = 0
    rejected: int = 0
    errors: int = 0
    migrations: int = 0  # completed rebalance/drain moves
    failovers: int = 0  # completed failure re-homes
    shard_failures: int = 0
    lost_sessions: int = 0
    latency_sum: float = 0.0
    latency_max: float = 0.0
    outcomes: dict[str, int] = field(default_factory=dict)

    def record(self, response: ServiceResponse) -> None:
        """Fold one client-visible terminal response into the tallies."""
        self.outcomes[response.status] = self.outcomes.get(response.status, 0) + 1
        if response.status == "admitted":
            self.admitted += 1
            self.latency_sum += response.latency
            self.latency_max = max(self.latency_max, response.latency)
        elif response.status == "applied":
            self.applied += 1
        elif response.status == "closed":
            self.closed += 1
        elif response.status == "error":
            self.errors += 1
        elif response.status in ("rejected", "shed"):
            self.rejected += 1

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view for reports and the CLI."""
        return {
            "ticks": self.ticks,
            "offered": self.offered,
            "admitted": self.admitted,
            "applied": self.applied,
            "closed": self.closed,
            "rejected": self.rejected,
            "errors": self.errors,
            "migrations": self.migrations,
            "failovers": self.failovers,
            "shard_failures": self.shard_failures,
            "lost_sessions": self.lost_sessions,
            "mean_admission_latency": (
                self.latency_sum / self.admitted if self.admitted else 0.0
            ),
            "max_admission_latency": self.latency_max,
            "outcomes": dict(sorted(self.outcomes.items())),
        }


#: Shard label used on synthesized responses that never reached a fabric.
_NO_SHARD = "-"


class ClusterService:
    """A sharded conference service over a pool of fabrics.

    ``network_factory`` builds one fresh
    :class:`~repro.core.network.ConferenceNetwork` per shard (called
    with the shard id); all other configuration is keyword-only and
    applied uniformly to every shard fabric.  ``migration_budget`` caps
    the cross-shard moves *started* per tick.
    """

    def __init__(
        self,
        network_factory: "Callable[[str], ConferenceNetwork]",
        *,
        shards: int = 2,
        shard_ids: "list[str] | tuple[str, ...] | None" = None,
        weights: "dict[str, float] | None" = None,
        retry: "RetryPolicy | None" = None,
        rng: "int | np.random.Generator | None" = None,
        route_cache: "RouteCache | None" = None,
        protection: int = 0,
        churn: "ChurnPolicy | None" = None,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        slo: "SLOEvaluator | None" = None,
        flight: "FlightRecorder | None" = None,
        queue_capacity: int = 1024,
        shed_policy: "ShedPolicy | str" = ShedPolicy.REJECT_NEWEST,
        max_batch: int = 64,
        tick_interval: float = 1.0,
        migration_budget: int = 8,
        capacity_model: str = "abstract",
        perf: "PerfModelConfig | None" = None,
    ):
        check_positive(tick_interval, "tick_interval")
        validate_capacity_model(capacity_model)
        self._factory = network_factory
        self._retry = retry
        self._rng = ensure_rng(rng)
        self._route_cache = route_cache
        self._protection = protection
        self._churn = churn
        self.tracer = tracer
        self._metrics = metrics
        # Cluster-level live health (see repro.obs.slo / repro.obs.flight).
        # Shards run without their own evaluator — client-visible signals
        # are recorded here, at the layer clients actually experience.
        self._slo = slo
        self._flight = flight
        self._queue_capacity = queue_capacity
        self._shed_policy = shed_policy
        self._max_batch = max_batch
        self._tick_interval = tick_interval
        self._capacity_model = capacity_model
        self._perf = perf
        self.stats = ClusterStats()
        self._shards: dict[str, ShardInfo] = {}
        self._directory = SessionDirectory()
        self._queue = MigrationQueue(migration_budget)
        self._state = "running"  # running -> draining -> closed
        self._shard_seq = 0
        self._next_op_id = 0
        # Cluster sessions whose open verdict is still owed to the client.
        self._pending_opens: dict[int, "CompletionCallback | None"] = {}
        # Client-submitted join/leave/close in flight on a shard:
        # op id -> (shard_id, cluster_session_id, kind, notify, internal).
        self._inflight_ops: dict[int, tuple] = {}
        # Moves whose target open is in flight: csid -> (move, target).
        self._moving: dict[int, tuple[Move, str]] = {}
        # Open ``cluster.open`` trace spans awaiting their verdict.
        self._open_trace: dict[int, int] = {}
        # SLO bookkeeping: per-shard recovery samples already observed,
        # and the stat watermarks the per-tick shed-rate deltas read from.
        self._slo_recovery_seen: dict[str, int] = {}
        self._slo_prev = {"offered": 0, "dropped": 0}
        if shard_ids is None:
            shard_ids = [f"shard-{i}" for i in range(shards)]
        if not shard_ids:
            raise ValueError("a cluster needs at least one shard")
        for shard_id in shard_ids:
            self.add_shard(shard_id, weight=(weights or {}).get(shard_id, 1.0))

    # -- introspection -----------------------------------------------------

    @property
    def shards(self) -> dict[str, ShardInfo]:
        """The shard table, keyed by shard id (read-only use, please)."""
        return self._shards

    @property
    def directory(self) -> SessionDirectory:
        """The cluster-wide session directory."""
        return self._directory

    @property
    def migrations(self) -> MigrationQueue:
        """The budgeted queue of pending cross-shard moves."""
        return self._queue

    @property
    def now(self) -> float:
        """Current cluster (virtual) time — shards tick in lockstep."""
        return self.stats.ticks * self._tick_interval

    @property
    def state(self) -> str:
        """``running``, ``draining``, or ``closed``."""
        return self._state

    @property
    def tick_interval(self) -> float:
        """Virtual time advanced per tick."""
        return self._tick_interval

    @property
    def protection(self) -> int:
        """Backup-plan budget F applied uniformly to every shard fabric."""
        return self._protection

    @property
    def churn_policy(self) -> "ChurnPolicy":
        """The membership-churn policy applied uniformly to every shard."""
        return self._churn if self._churn is not None else ChurnPolicy()

    @property
    def capacity_model(self) -> str:
        """``"abstract"`` or ``"buffered"``, applied uniformly to shards."""
        return self._capacity_model

    def delivery_summary(self) -> "dict[str, Any] | None":
        """Cluster-wide buffered-delivery block (``None`` in abstract mode).

        Merges every live shard's per-tick delivery aggregates — counts
        add, the latency percentiles come from the commutatively merged
        shard histograms, so the result is independent of shard
        enumeration order.
        """
        if self._capacity_model != "buffered":
            return None
        merged = DeliveryModel(self._perf)
        for shard_id in sorted(self._shards):
            model = self._shards[shard_id].service.delivery
            if model is None:
                continue
            merged.merge_summary(model.summary())
            merged.merge_histogram(model)
        summary = merged.summary()
        summary["shards"] = sum(
            1 for s in self._shards.values() if s.service.delivery is not None
        )
        return summary

    @property
    def slo(self) -> "SLOEvaluator | None":
        """The attached cluster-level SLO evaluator, or ``None``."""
        return self._slo

    @property
    def flight(self) -> "FlightRecorder | None":
        """The attached flight recorder, or ``None``."""
        return self._flight

    def active_weights(self) -> dict[str, float]:
        """Capacity weights of the currently placeable (ACTIVE) shards."""
        return {
            sid: s.weight
            for sid, s in self._shards.items()
            if s.state is ShardState.ACTIVE
        }

    def shard_sessions(self) -> dict[str, dict[int, tuple[int, ...]]]:
        """Live session tables of every live shard (for consistency checks)."""
        out: dict[str, dict[int, tuple[int, ...]]] = {}
        for shard_id, shard in self._shards.items():
            if shard.state in LIVE_SHARD_STATES:
                out[shard_id] = {
                    s.session_id: s.members for s in shard.service.sessions.live()
                }
        return out

    def check_consistency(self) -> list[str]:
        """Directory/shard invariant violations (empty means consistent)."""
        return self._directory.inconsistencies(self.shard_sessions())

    # -- shard-set management ----------------------------------------------

    def add_shard(
        self,
        shard_id: "str | None" = None,
        *,
        weight: float = 1.0,
        network: "ConferenceNetwork | None" = None,
    ) -> str:
        """Bring a fresh fabric into the pool as a placeable shard."""
        if shard_id is None:
            while f"shard-{self._shard_seq}" in self._shards:
                self._shard_seq += 1
            shard_id = f"shard-{self._shard_seq}"
        if shard_id in self._shards:
            raise ValueError(f"shard id {shard_id!r} already in use")
        if weight <= 0.0:
            raise ValueError(f"shard weight must be > 0, got {weight}")
        self._shard_seq += 1
        net = network if network is not None else self._factory(shard_id)
        (shard_rng,) = self._rng.spawn(1)
        service = FabricService(
            net,
            retry=self._retry,
            rng=shard_rng,
            route_cache=self._route_cache,
            protection=self._protection,
            churn=self._churn,
            tracer=self.tracer,
            metrics=None,  # see module docstring: cluster owns the registry
            queue_capacity=self._queue_capacity,
            shed_policy=self._shed_policy,
            max_batch=self._max_batch,
            tick_interval=self._tick_interval,
            capacity_model=self._capacity_model,
            perf=self._perf,
        )
        self._shards[shard_id] = ShardInfo(shard_id, float(weight), service)
        if self.tracer is not None:
            self.tracer.event("cluster.shard_add", t=self.now, shard=shard_id, weight=weight)
        return shard_id

    def attach_faults(
        self, shard_id: str, timeline: "tuple[FaultTransition, ...] | list[FaultTransition]"
    ) -> "FaultInjector":
        """Schedule a fault timeline against one shard's fabric clock."""
        return self._require_shard(shard_id).service.attach_faults(timeline)

    def fail_shard(self, shard_id: str) -> int:
        """Declare one fabric dead and re-home everything it hosted.

        In-flight client operations against the shard complete with
        ``status="error", reason="shard-failed"``; every session homed
        on it (pending, active, or mid-migration) is re-routed to the
        surviving shards through failover moves that retry until they
        land.  Returns the number of sessions re-homed.
        """
        shard = self._require_shard(shard_id)
        if shard.state is ShardState.FAILED:
            return 0
        if shard.state is ShardState.REMOVED:
            raise ValueError(f"shard {shard_id!r} was already removed")
        span = None
        if self.tracer is not None:
            span = self.tracer.span_open("cluster.failover", t=self.now, shard=shard_id)
        shard.state = ShardState.FAILED
        self.stats.shard_failures += 1
        if self._metrics is not None:
            self._metrics.counter(
                "repro_cluster_shard_failures_total", "Shards declared failed"
            ).inc(shard=shard_id)
        # Fail fast every client op the dead fabric will never answer.
        for op, (op_shard, csid, kind, notify, internal) in list(self._inflight_ops.items()):
            if op_shard != shard_id:
                continue
            del self._inflight_ops[op]
            if internal:
                continue  # make-before-break close on a dead ledger: moot
            self._deliver(
                self._synthesize(
                    kind, "error", csid, op, reason="shard-failed", shard=shard_id
                ),
                notify,
            )
        # Moves that were landing *on* the dead fabric go back in the
        # queue; their next start picks a surviving target.
        for csid, (move, target) in list(self._moving.items()):
            if target != shard_id:
                continue
            del self._moving[csid]
            self._queue.requeue(move)
        # Re-home every session the dead fabric hosted.  The failover
        # moves are enqueued under this span's context so each per-move
        # ``cluster.failover`` span carries it as causal parent.
        moved = 0
        with self.tracer.context(span) if self.tracer is not None else nullcontext():
            for entry in self._directory.on_shard(shard_id):
                csid = entry.cluster_session_id
                if entry.state is EntryState.PENDING:
                    # The open never completed; carry the client's verdict
                    # callback over to the failover move.
                    notify = self._pending_opens.pop(csid, None)
                    self._enqueue_move(
                        entry, "failover", source=None, notify=notify, restore_open=True
                    )
                    moved += 1
                elif entry.state is EntryState.ACTIVE:
                    self._enqueue_move(entry, "failover", source=None)
                    moved += 1
                elif entry.state is EntryState.MIGRATING:
                    # The next generation is already building elsewhere; the
                    # old home just vanished, so there is nothing to close.
                    pending = next(
                        (m for m in self._queue if m.cluster_session_id == csid), None
                    )
                    inflight = self._moving.get(csid)
                    move = pending or (inflight[0] if inflight else None)
                    if move is not None:
                        move.source_shard = None
        if span is not None:
            self.tracer.span_close(span, t=self.now, sessions=moved)
        return moved

    def drain_shard(self, shard_id: str) -> int:
        """Gracefully take one shard out of service.

        The shard stops receiving placements immediately; its sessions
        move off make-before-break under the migration budget, and once
        empty the fabric is shut down and the shard marked ``removed``.
        Returns the number of moves enqueued now (opens still pending on
        the shard are moved as they complete).
        """
        shard = self._require_shard(shard_id)
        if shard.state is not ShardState.ACTIVE:
            raise ValueError(
                f"can only drain an active shard; {shard_id!r} is {shard.state.value}"
            )
        shard.state = ShardState.DRAINING
        if self.tracer is not None:
            self.tracer.event("cluster.shard_drain", t=self.now, shard=shard_id)
        moved = 0
        for entry in self._directory.on_shard(shard_id):
            if entry.state is EntryState.ACTIVE:
                self._enqueue_move(entry, "drain", source=shard_id)
                moved += 1
        return moved

    def rebalance(self) -> RebalancePlan:
        """Re-home the placement delta after a shard-set change."""
        plan = plan_rebalance(self._directory.live(), self.active_weights())
        for csid, source, _target in plan.moves:
            self._enqueue_move(self._directory.require(csid), "rebalance", source=source)
        if self.tracer is not None:
            self.tracer.event(
                "cluster.rebalance",
                t=self.now,
                moves=len(plan.moves),
                total=plan.total_sessions,
            )
        return plan

    def scale_up(
        self, shard_id: "str | None" = None, *, weight: float = 1.0
    ) -> tuple[str, RebalancePlan]:
        """Add a shard and re-home its rendezvous share of sessions."""
        shard_id = self.add_shard(shard_id, weight=weight)
        return shard_id, self.rebalance()

    def scale_down(self, shard_id: str) -> int:
        """Drain a shard out of the pool (moves trickle per tick)."""
        return self.drain_shard(shard_id)

    def _require_shard(self, shard_id: str) -> ShardInfo:
        try:
            return self._shards[shard_id]
        except KeyError:
            raise KeyError(f"no shard with id {shard_id!r}") from None

    # -- client surface ----------------------------------------------------

    def submit_open(
        self,
        members,
        *,
        priority: Priority = Priority.NORMAL,
        on_complete: "CompletionCallback | None" = None,
    ) -> int:
        """Open a conference somewhere in the pool; returns the cluster id.

        The terminal :class:`ServiceResponse` arrives via ``on_complete``
        with the *cluster* session id and the hosting shard in
        ``detail["shard"]``.
        """
        members = tuple(int(p) for p in members)
        entry = self._directory.create(members, priority)
        csid = entry.cluster_session_id
        self.stats.offered += 1
        if self._state != "running":
            reason = "service-closed" if self._state == "closed" else "draining"
            entry.state = EntryState.REJECTED
            self._deliver(
                self._synthesize(RequestKind.OPEN, "rejected", csid, self._next_op(), reason=reason),
                on_complete,
            )
            return csid
        target = place_shard(csid, self.active_weights())
        if target is None:
            entry.state = EntryState.REJECTED
            self._deliver(
                self._synthesize(
                    RequestKind.OPEN, "rejected", csid, self._next_op(), reason="no-active-shards"
                ),
                on_complete,
            )
            return csid
        span = None
        if self.tracer is not None:
            # The root of the causal chain: the shard-level submit/admit
            # spans this open causes all parent back to this record.
            span = self.tracer.span_open(
                "cluster.open", t=self.now, session=csid, shard=target, members=len(members)
            )
            self._open_trace[csid] = span
        self._pending_opens[csid] = on_complete
        with self.tracer.context(span) if self.tracer is not None else nullcontext():
            self._open_on(target, entry)
        return csid

    def submit_join(
        self,
        cluster_session_id: int,
        ports,
        *,
        priority: Priority = Priority.NORMAL,
        on_complete: "CompletionCallback | None" = None,
    ) -> int:
        """Grow a cluster session's membership; returns the op id."""
        return self._submit_op(
            RequestKind.JOIN,
            cluster_session_id,
            tuple(int(p) for p in ports),
            priority=priority,
            on_complete=on_complete,
        )

    def submit_leave(
        self,
        cluster_session_id: int,
        ports,
        *,
        on_complete: "CompletionCallback | None" = None,
    ) -> int:
        """Shrink a cluster session's membership; returns the op id."""
        return self._submit_op(
            RequestKind.LEAVE,
            cluster_session_id,
            tuple(int(p) for p in ports),
            on_complete=on_complete,
        )

    def submit_close(
        self, cluster_session_id: int, *, on_complete: "CompletionCallback | None" = None
    ) -> int:
        """Close a cluster session wherever it lives; returns the op id."""
        return self._submit_op(
            RequestKind.CLOSE, cluster_session_id, (), on_complete=on_complete
        )

    def _submit_op(
        self,
        kind: str,
        csid: int,
        ports: tuple[int, ...],
        *,
        priority: Priority = Priority.NORMAL,
        on_complete: "CompletionCallback | None" = None,
    ) -> int:
        op = self._next_op()
        self.stats.offered += 1
        if self._state == "closed":
            self._deliver(
                self._synthesize(kind, "rejected", csid, op, reason="service-closed"),
                on_complete,
            )
            return op
        entry = self._directory.get(csid)
        if entry is None:
            self._deliver(
                self._synthesize(kind, "error", csid, op, reason="unknown-session"),
                on_complete,
            )
            return op
        if kind == RequestKind.CLOSE:
            return self._close_entry(entry, op, on_complete)
        if entry.state is not EntryState.ACTIVE:
            # Resizes need a settled home; a session in motion (pending
            # admission or mid-migration) bounces deterministically.
            status = "rejected" if entry.live else "error"
            self._deliver(
                self._synthesize(
                    kind, status, csid, op, reason=f"session-{entry.state.value}"
                ),
                on_complete,
            )
            return op
        shard = self._shards[entry.shard_id]
        if shard.state not in LIVE_SHARD_STATES:
            self._deliver(
                self._synthesize(
                    kind, "error", csid, op, reason="shard-failed", shard=entry.shard_id
                ),
                on_complete,
            )
            return op
        self._inflight_ops[op] = (entry.shard_id, csid, kind, on_complete, False)

        def adapter(resp: ServiceResponse, *, _op=op, _csid=csid, _kind=kind, _ports=ports) -> None:
            self._op_completed(_op, _csid, _kind, _ports, resp)

        if kind == RequestKind.JOIN:
            shard.service.submit_join(
                entry.shard_session_id, ports, priority=priority, on_complete=adapter
            )
        else:
            shard.service.submit_leave(entry.shard_session_id, ports, on_complete=adapter)
        return op

    def _close_entry(
        self, entry: DirectoryEntry, op: int, on_complete: "CompletionCallback | None"
    ) -> int:
        csid = entry.cluster_session_id
        if entry.state in (EntryState.CLOSED, EntryState.REJECTED, EntryState.LOST):
            self._deliver(
                self._synthesize(
                    RequestKind.CLOSE, "error", csid, op, reason="already-closed"
                ),
                on_complete,
            )
            return op
        if entry.state is EntryState.ACTIVE:
            shard = self._shards[entry.shard_id]
            if shard.state in LIVE_SHARD_STATES:
                return self._forward_close(entry, op, on_complete)
            # Defensive: an ACTIVE entry on a dead shard cannot persist
            # (fail_shard converts them), but never strand a close.
            entry.state = EntryState.CLOSED
            self._deliver(
                self._synthesize(RequestKind.CLOSE, "closed", csid, op), on_complete
            )
            return op
        # PENDING or MIGRATING: the session is in motion.
        queued = self._queue.discard(csid)
        inflight = self._moving.get(csid)
        if queued is None and inflight is None and entry.state is EntryState.PENDING:
            # Plain pending open on a live shard: let the fabric cancel
            # it (the open completes "rejected/cancelled" on its own).
            return self._forward_close(entry, op, on_complete)
        move = queued or (inflight[0] if inflight else None)
        if move is not None:
            move.cancelled = True
            if queued is not None:
                self._finish_move_span(queued, "cancelled")
        if csid in self._pending_opens:
            # The open verdict was going to come from a cancelled move.
            self._close_open_trace(csid, "cancelled")
            notify = self._pending_opens.pop(csid)
            self._deliver(
                self._synthesize(
                    RequestKind.OPEN, "rejected", csid, self._next_op(), reason="cancelled"
                ),
                notify,
            )
        if entry.state is EntryState.MIGRATING and entry.shard_id is not None:
            shard = self._shards.get(entry.shard_id)
            if (
                shard is not None
                and shard.state in LIVE_SHARD_STATES
                and entry.shard_session_id is not None
            ):
                # Tear down the still-live old generation.
                return self._forward_close(entry, op, on_complete)
        entry.state = EntryState.CLOSED
        self._deliver(self._synthesize(RequestKind.CLOSE, "closed", csid, op), on_complete)
        return op

    def _forward_close(
        self, entry: DirectoryEntry, op: int, on_complete: "CompletionCallback | None"
    ) -> int:
        csid = entry.cluster_session_id
        shard_id = entry.shard_id
        self._inflight_ops[op] = (shard_id, csid, RequestKind.CLOSE, on_complete, False)

        def adapter(resp: ServiceResponse, *, _op=op, _csid=csid) -> None:
            self._close_completed(_op, _csid, resp)

        self._shards[shard_id].service.submit_close(
            entry.shard_session_id, on_complete=adapter
        )
        return op

    # -- completion plumbing -----------------------------------------------

    def _open_on(self, shard_id: str, entry: DirectoryEntry) -> None:
        csid = entry.cluster_session_id
        entry.shard_id = shard_id
        op = self._next_op()

        def adapter(resp: ServiceResponse, *, _csid=csid, _shard=shard_id, _op=op) -> None:
            self._open_completed(_csid, _shard, _op, resp)

        shard_sid = self._shards[shard_id].service.submit_open(
            entry.members, priority=entry.priority, on_complete=adapter
        )
        # The callback may have fired synchronously (backpressure
        # reject); only a still-pending entry takes the shard sid here.
        if entry.state is EntryState.PENDING and entry.shard_session_id is None:
            entry.shard_session_id = shard_sid

    def _open_completed(
        self, csid: int, shard_id: str, op: int, resp: ServiceResponse
    ) -> None:
        entry = self._directory.require(csid)
        if entry.shard_id != shard_id:
            return  # superseded by a failover re-home
        if entry.state is EntryState.PENDING:
            if resp.ok:
                entry.shard_session_id = resp.session_id
                entry.state = EntryState.ACTIVE
                if self._shards[shard_id].state is ShardState.DRAINING:
                    # Admitted onto a shard that is on its way out.
                    self._enqueue_move(entry, "drain", source=shard_id)
            else:
                entry.state = EntryState.REJECTED
        self._close_open_trace(csid, resp.status)
        notify = self._pending_opens.pop(csid, None)
        self._deliver(self._translate(resp, csid, shard_id, op), notify)

    def _op_completed(
        self, op: int, csid: int, kind: str, ports: tuple[int, ...], resp: ServiceResponse
    ) -> None:
        record = self._inflight_ops.pop(op, None)
        if record is None:
            return  # already failed fast by fail_shard
        shard_id, _, _, notify, _ = record
        entry = self._directory.require(csid)
        if resp.ok:
            current = set(entry.members)
            merged = current | set(ports) if kind == RequestKind.JOIN else current - set(ports)
            entry.members = tuple(sorted(merged))
        self._deliver(self._translate(resp, csid, shard_id, op), notify)

    def _close_completed(self, op: int, csid: int, resp: ServiceResponse) -> None:
        record = self._inflight_ops.pop(op, None)
        if record is None:
            return
        shard_id, _, _, notify, _ = record
        entry = self._directory.require(csid)
        if resp.ok and entry.state is not EntryState.CLOSED:
            entry.state = EntryState.CLOSED
        self._deliver(self._translate(resp, csid, shard_id, op), notify)

    def _deliver(
        self, response: ServiceResponse, notify: "CompletionCallback | None"
    ) -> None:
        self.stats.record(response)
        if (
            self._slo is not None
            and response.kind == RequestKind.OPEN
            and response.status == "admitted"
            and "admission_latency" in self._slo
        ):
            # Client-visible admission latency: the same quantity
            # ClusterStats folds into mean/max, streamed into the
            # windowed histogram for live percentiles.
            self._slo.observe("admission_latency", response.latency, now=self.now)
        if self._metrics is not None:
            self._metrics.counter(
                "repro_cluster_requests_total",
                "Cluster session requests by shard, kind, and outcome",
            ).inc(
                shard=str(response.detail.get("shard", _NO_SHARD)),
                kind=response.kind,
                status=response.status,
            )
        if notify is not None:
            notify(response)

    def _translate(
        self, resp: ServiceResponse, csid: int, shard_id: str, op: int
    ) -> ServiceResponse:
        """Re-address a shard-local response into cluster terms."""
        return replace(
            resp,
            request_id=op,
            session_id=csid,
            detail={**resp.detail, "shard": shard_id},
        )

    def _synthesize(
        self,
        kind: str,
        status: str,
        csid: "int | None",
        op: int,
        *,
        reason: "str | None" = None,
        shard: "str | None" = None,
    ) -> ServiceResponse:
        return ServiceResponse(
            ok=status in ("admitted", "applied", "closed"),
            status=status,
            kind=kind,
            request_id=op,
            session_id=csid,
            reason=reason,
            submitted_at=self.now,
            completed_at=self.now,
            detail={"shard": shard} if shard is not None else {},
        )

    def _next_op(self) -> int:
        op = self._next_op_id
        self._next_op_id += 1
        return op

    # -- migration machinery -----------------------------------------------

    def _enqueue_move(
        self,
        entry: DirectoryEntry,
        kind: str,
        *,
        source: "str | None",
        notify: "CompletionCallback | None" = None,
        restore_open: bool = False,
    ) -> Move:
        move = Move(
            cluster_session_id=entry.cluster_session_id,
            members=entry.members,
            priority=entry.priority,
            kind=kind,
            source_shard=source,
            notify=notify,
            restore_open=restore_open,
        )
        if self.tracer is not None:
            name = "cluster.failover" if kind == "failover" else "cluster.migrate"
            move.span = self.tracer.span_open(
                name, t=self.now, session=entry.cluster_session_id, kind=kind, source=source
            )
        if not restore_open:
            entry.state = EntryState.MIGRATING
        self._queue.enqueue(move)
        return move

    def _move_target(self, move: Move) -> "str | None":
        weights = {
            sid: w
            for sid, w in self.active_weights().items()
            if sid != move.source_shard
        }
        if not weights:
            return None
        ranked = rank_shards(move.cluster_session_id, weights)
        # Retries walk the preference list so a capacity-starved first
        # choice cannot wedge the move forever.
        return ranked[move.attempts % len(ranked)]

    def _start_move(self, move: Move) -> None:
        entry = self._directory.require(move.cluster_session_id)
        if move.cancelled or not entry.live:
            self._finish_move_span(move, "cancelled")
            return
        target = self._move_target(move)
        if target is None:
            self._queue.requeue(move)  # no placeable shard yet; keep waiting
            return
        csid = move.cluster_session_id
        self._moving[csid] = (move, target)

        def adapter(resp: ServiceResponse, *, _move=move, _target=target) -> None:
            self._move_completed(_move, _target, resp)

        # Migration opens ride the interactive lane: a session that is
        # already admitted (or owed a restore) outranks fresh arrivals.
        # Submitting under the move span's context parents the target
        # shard's admission spans to this failover/migration.
        with self.tracer.context(move.span) if self.tracer is not None else nullcontext():
            self._shards[target].service.submit_open(
                entry.members, priority=Priority.INTERACTIVE, on_complete=adapter
            )

    def _move_completed(self, move: Move, target: str, resp: ServiceResponse) -> None:
        csid = move.cluster_session_id
        self._moving.pop(csid, None)
        entry = self._directory.require(csid)
        if move.cancelled or entry.state is EntryState.CLOSED:
            if resp.ok:
                # Landed after the client closed: tear it straight down.
                self._internal_close(target, resp.session_id, csid)
            self._finish_move_span(move, "cancelled")
            return
        if not resp.ok:
            self._queue.requeue(move)  # a live session is never abandoned
            return
        old_sid = entry.shard_session_id
        self._directory.record_move(
            csid, target, resp.session_id, failover=move.kind == "failover"
        )
        entry.state = EntryState.ACTIVE
        self._queue.completed += 1
        if move.kind == "failover":
            self.stats.failovers += 1
        else:
            self.stats.migrations += 1
        if self._metrics is not None:
            self._metrics.counter(
                "repro_cluster_migrations_total", "Completed cross-shard moves by kind"
            ).inc(kind=move.kind)
        # Break: close the old generation on its still-live source.
        if move.source_shard is not None and not move.restore_open and old_sid is not None:
            src = self._shards.get(move.source_shard)
            if src is not None and src.state in LIVE_SHARD_STATES:
                self._internal_close(move.source_shard, old_sid, csid)
        if move.restore_open:
            # The client's original open verdict, finally deliverable.
            self._close_open_trace(csid, resp.status)
            self._deliver(self._translate(resp, csid, target, self._next_op()), move.notify)
        elif move.notify is not None:
            move.notify(self._translate(resp, csid, target, self._next_op()))
        self._finish_move_span(move, "moved", target=target)

    def _internal_close(self, shard_id: str, shard_sid: int, csid: int) -> None:
        """Fire-and-forget teardown of a superseded shard session."""
        op = self._next_op()
        self._inflight_ops[op] = (shard_id, csid, RequestKind.CLOSE, None, True)
        self._shards[shard_id].service.submit_close(
            shard_sid, on_complete=lambda resp, _op=op: self._inflight_ops.pop(_op, None)
        )

    def _finish_move_span(self, move: Move, outcome: str, **attrs) -> None:
        if move.span is not None and self.tracer is not None:
            self.tracer.span_close(move.span, t=self.now, outcome=outcome, **attrs)
        move.span = None

    def _close_open_trace(self, csid: int, outcome: str) -> None:
        span = self._open_trace.pop(csid, None)
        if span is not None and self.tracer is not None:
            self.tracer.span_close(span, t=self.now, outcome=outcome)

    # -- the tick ----------------------------------------------------------

    def tick(self) -> "dict[str, BatchReport]":
        """Advance one cluster interval across every live shard.

        Order: this tick's migration allowance starts first (targets
        admit the moves in the same tick), then every live shard ticks
        in sorted id order — lockstep virtual time — and finally any
        drained-empty shard is retired.  Returns the per-shard batch
        reports.
        """
        if self._state == "closed":
            raise RuntimeError("cannot tick a closed cluster")
        for move in self._queue.start_batch():
            self._start_move(move)
        reports: "dict[str, BatchReport]" = {}
        for shard_id in sorted(self._shards):
            shard = self._shards[shard_id]
            if shard.state in LIVE_SHARD_STATES:
                reports[shard_id] = shard.service.tick()
        for shard_id in sorted(self._shards):
            shard = self._shards[shard_id]
            if shard.state is ShardState.DRAINING and self._shard_quiescent(shard):
                shard.service.shutdown()
                shard.state = ShardState.REMOVED
                if self.tracer is not None:
                    self.tracer.event("cluster.shard_removed", t=self.now, shard=shard_id)
        self.stats.ticks += 1
        self._observe()
        if self._slo is not None:
            self._slo_tick()
        return reports

    def _shard_quiescent(self, shard: ShardInfo) -> bool:
        if self._directory.on_shard(shard.shard_id):
            return False
        if any(rec[0] == shard.shard_id for rec in self._inflight_ops.values()):
            return False
        svc = shard.service
        if len(svc.queue) or svc.healing.down_conferences:
            return False
        counts = svc.sessions.counts()
        return counts["queued"] == 0 and counts["down"] == 0

    def _observe(self) -> None:
        reg = self._metrics
        if reg is None:
            return
        sessions = reg.gauge(
            "repro_cluster_sessions", "Cluster sessions by directory state"
        )
        for state, count in self._directory.counts().items():
            sessions.set(count, state=state)
        shards = reg.gauge("repro_cluster_shards", "Shards by membership state")
        tallies = {state.value: 0 for state in ShardState}
        for shard in self._shards.values():
            tallies[shard.state.value] += 1
        for state, count in tallies.items():
            shards.set(count, state=state)
        reg.gauge(
            "repro_cluster_migration_backlog",
            "Moves queued or in flight at tick end",
        ).set(self._queue.depth + len(self._moving))

    def _slo_tick(self) -> None:
        """Feed this tick's cluster-wide health signals into the SLO engine.

        Mirrors :meth:`FabricService._slo_tick` one layer up: session
        availability and recovery times are summed across the live
        shards; the shed rate reads the *client-visible* verdict deltas
        (rejected + errors), so internal migration traffic never counts
        against the budget.  Pure observation — nothing feeds back.
        """
        slo, now = self._slo, self.now
        if "availability" in slo:
            live = down = 0
            for shard_id in sorted(self._shards):
                shard = self._shards[shard_id]
                if shard.state not in LIVE_SHARD_STATES:
                    continue
                counts = shard.service.sessions.counts()
                live += counts.get("active", 0) + counts.get("degraded", 0)
                down += counts.get("down", 0)
            if live or down:
                slo.record("availability", good=live, bad=down, now=now)
        if "recovery" in slo:
            for shard_id in sorted(self._shards):
                samples = self._shards[shard_id].service.healing.stats.recovery_samples
                seen = self._slo_recovery_seen.get(shard_id, 0)
                for ticks in samples[seen:]:
                    slo.observe("recovery", ticks, now=now)
                self._slo_recovery_seen[shard_id] = len(samples)
        if "shed_rate" in slo:
            offered = self.stats.offered
            dropped = self.stats.rejected + self.stats.errors
            d_offered = offered - self._slo_prev["offered"]
            d_dropped = dropped - self._slo_prev["dropped"]
            if d_offered:
                slo.record(
                    "shed_rate",
                    good=max(0, d_offered - d_dropped),
                    bad=d_dropped,
                    now=now,
                )
            self._slo_prev.update(offered=offered, dropped=dropped)
        status = slo.evaluate(now)
        if self._flight is not None:
            if self._metrics is not None:
                self._flight.sample_metrics(self._metrics, now)
            self._flight.note_slo(now, status)

    # -- drain / shutdown --------------------------------------------------

    def _busy(self) -> bool:
        if self._queue.depth or self._moving or self._inflight_ops:
            return True
        if any(
            e.state in (EntryState.PENDING, EntryState.MIGRATING)
            for e in self._directory.live()
        ):
            return True
        for shard in self._shards.values():
            if shard.state not in LIVE_SHARD_STATES:
                continue
            svc = shard.service
            if len(svc.queue) or svc.healing.down_conferences:
                return True
            counts = svc.sessions.counts()
            if counts["queued"] or counts["down"]:
                return True
        return False

    def drain(self, max_ticks: int = 100_000) -> int:
        """Stop accepting opens and tick until all motion settles.

        Returns the number of ticks it took; ``RuntimeError`` if moves,
        pending verdicts, or shard backlogs have not settled within
        ``max_ticks`` (e.g. a failover with no surviving shard to land on).
        """
        if self._state == "closed":
            raise RuntimeError("cannot drain a closed cluster")
        self._state = "draining"
        ticks = 0
        while self._busy():
            if ticks >= max_ticks:
                raise RuntimeError(
                    f"cluster drain did not settle within {max_ticks} ticks "
                    f"({self._queue.depth} moves queued, {len(self._moving)} landing, "
                    f"{len(self._inflight_ops)} ops in flight)"
                )
            self.tick()
            ticks += 1
        return ticks

    def shutdown(self) -> dict[str, int]:
        """Drain, close every remaining live session, and stop.

        Returns the final directory tally per state.  Idempotent once
        closed.
        """
        if self._state != "closed":
            self.drain()
            for shard in self._shards.values():
                if shard.state not in LIVE_SHARD_STATES:
                    continue
                counts = shard.service.shutdown()
                self.stats.lost_sessions += counts.get("lost", 0)
            for entry in self._directory.live():
                # After a settled drain only ACTIVE entries remain; the
                # shard shutdowns above closed their fabric sessions.
                # Anything still in motion here would be a real loss.
                if entry.state is EntryState.ACTIVE:
                    entry.state = EntryState.CLOSED
                else:
                    entry.state = EntryState.LOST
                    self.stats.lost_sessions += 1
            self._state = "closed"
        return self._directory.counts()
