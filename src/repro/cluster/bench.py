"""Seeded churn benchmark for the sharded cluster.

``run_cluster_bench`` drives one :class:`~repro.cluster.controller.ClusterService`
with the same synthetic workload shape as the per-fabric serve bench —
Poisson conference arrivals over a shared logical port pool, geometric
holding times, optional membership churn — plus the cluster-only drills:
a shard kill at a chosen tick (with optional per-shard fault timelines
firing underneath) and an elastic scale-up mid-run.

**Shard-count invariance.** In plain mode (no faults, no kill, no
scale event) the client-visible metrics are *byte-identical* for a
fixed seed regardless of how many shards the cluster runs:

* the workload derives entirely from the seed (the RNG stream layout
  mirrors the serve bench), never from cluster state;
* members come from one global port pool, so concurrent conferences
  are port-disjoint and no shard ever denies on port conflicts;
* shard fabrics are built with generous dilation (default: one slot
  per port), so capacity never denies either;
* shards tick in lockstep, so admission latency is a pure function of
  the tick schedule, not of the placement mapping.

:meth:`ClusterBenchReport.invariant` returns exactly the fields this
argument covers; the acceptance test diffs its JSON bytes across shard
counts 1/2/4/8, and the CI determinism job ``cmp``'s the files the CLI
writes.  Drill modes (kill/faults/scale) are exempt from invariance but
must still finish with **zero lost sessions** and a consistent
directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.cluster.controller import ClusterService, ShardState
from repro.cluster.directory import EntryState
from repro.core.network import ConferenceNetwork
from repro.serve.backpressure import ShedPolicy
from repro.serve.protocol import ServiceResponse
from repro.sim.faults import generate_fault_timeline
from repro.sim.metrics import AvailabilityStats
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.churn import ChurnPolicy
    from repro.core.healing import RetryPolicy
    from repro.obs.flight import FlightRecorder
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.slo import SLOEvaluator
    from repro.obs.trace import Tracer
    from repro.perfmodel.model import PerfModelConfig
    from repro.sim.faults import FaultProcessConfig

__all__ = ["ClusterBenchReport", "run_cluster_bench"]


@dataclass
class ClusterBenchReport:
    """Outcome of one cluster churn run (shared result contract)."""

    topology: str
    n_ports: int
    shards: int  # shard count at launch
    seed: int
    conferences: int  # opens actually offered
    ticks: int
    drain_ticks: int
    starved_arrivals: int  # arrivals skipped for want of free ports
    resizes: int
    fault_transitions: int
    killed_shard: "str | None"
    kill_tick: "int | None"
    added_shard: "str | None"
    rebalance_fraction: "float | None"  # of the scale-up plan, if any
    queue_capacity: int
    shed_policy: str
    peak_queue_depth: int  # max over shards (NOT shard-count invariant)
    lost_sessions: int
    # Protection is deliberately NOT part of ``invariant()``: the fast
    # path changes recovery *accounting*, never client-visible decisions.
    protection: int = 0
    recovery: dict[str, Any] = field(default_factory=dict)
    consistency: list[str] = field(default_factory=list)
    session_counts: dict[str, int] = field(default_factory=dict)
    cluster: dict[str, Any] = field(default_factory=dict)
    per_shard: dict[str, Any] = field(default_factory=dict)
    #: Cluster-wide buffered-delivery block; ``None`` in abstract mode
    #: and then absent from ``as_dict`` (abstract output stays byte-
    #: identical to pre-perfmodel runs).
    delivery: "dict[str, Any] | None" = None

    @property
    def ok(self) -> bool:
        """Did the cluster sustain: nothing lost, directory consistent."""
        return self.lost_sessions == 0 and not self.consistency

    @property
    def reason(self) -> "str | None":
        """Why the run failed the sustain criteria (``None`` when ok)."""
        if self.lost_sessions:
            return f"{self.lost_sessions} session(s) lost"
        if self.consistency:
            return f"directory inconsistent: {self.consistency[0]}"
        return None

    @property
    def throughput(self) -> float:
        """Admitted conferences per tick."""
        admitted = self.cluster.get("admitted", 0)
        return admitted / self.ticks if self.ticks else 0.0

    def invariant(self) -> dict[str, Any]:
        """The client-visible metrics that are shard-count invariant.

        For a fixed seed in plain mode, this dict is byte-identical
        (through sorted-key JSON) across shard counts — the determinism
        CI job and ``tests/cluster/test_bench.py`` compare exactly this.
        """
        return {
            "kind": "cluster_bench_invariant",
            "topology": self.topology,
            "n_ports": self.n_ports,
            "seed": self.seed,
            "conferences": self.conferences,
            "ticks": self.ticks,
            "drain_ticks": self.drain_ticks,
            "starved_arrivals": self.starved_arrivals,
            "resizes": self.resizes,
            "offered": self.cluster.get("offered", 0),
            "admitted": self.cluster.get("admitted", 0),
            "applied": self.cluster.get("applied", 0),
            "closed": self.cluster.get("closed", 0),
            "rejected": self.cluster.get("rejected", 0),
            "errors": self.cluster.get("errors", 0),
            "mean_admission_latency": self.cluster.get("mean_admission_latency", 0.0),
            "max_admission_latency": self.cluster.get("max_admission_latency", 0.0),
            "outcomes": dict(self.cluster.get("outcomes", {})),
            "lost_sessions": self.lost_sessions,
            "session_counts": dict(self.session_counts),
        }

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view (the shared result-serializer contract)."""
        return {
            "kind": "cluster_bench",
            "ok": self.ok,
            "reason": self.reason,
            "topology": self.topology,
            "n_ports": self.n_ports,
            "shards": self.shards,
            "seed": self.seed,
            "conferences": self.conferences,
            "ticks": self.ticks,
            "drain_ticks": self.drain_ticks,
            "throughput": self.throughput,
            "starved_arrivals": self.starved_arrivals,
            "resizes": self.resizes,
            "fault_transitions": self.fault_transitions,
            "killed_shard": self.killed_shard,
            "kill_tick": self.kill_tick,
            "added_shard": self.added_shard,
            "rebalance_fraction": self.rebalance_fraction,
            "queue_capacity": self.queue_capacity,
            "shed_policy": self.shed_policy,
            "peak_queue_depth": self.peak_queue_depth,
            "lost_sessions": self.lost_sessions,
            "protection": self.protection,
            "recovery": dict(self.recovery),
            "consistency": list(self.consistency),
            "session_counts": dict(self.session_counts),
            "cluster": dict(self.cluster),
            "per_shard": dict(self.per_shard),
            **({"delivery": dict(self.delivery)} if self.delivery is not None else {}),
        }


class _PortPool:
    """Free-port bookkeeping with deterministic sampling order.

    The pool spans the cluster's *logical* endpoint space (one fabric's
    port range): concurrent conferences are therefore port-disjoint no
    matter which shard hosts them, which is one leg of the shard-count
    invariance argument above.
    """

    def __init__(self, n_ports: int):
        self._free = list(range(n_ports))  # kept sorted

    def __len__(self) -> int:
        return len(self._free)

    def grab(self, rng, count: int) -> tuple[int, ...]:
        """Remove and return ``count`` uniformly-chosen free ports."""
        picked = rng.choice(len(self._free), size=count, replace=False)
        ports = tuple(sorted(self._free[i] for i in picked))
        for p in ports:
            self._free.remove(p)
        return ports

    def release(self, ports) -> None:
        """Return ports to the pool (kept sorted for determinism)."""
        for p in ports:
            self._free.append(p)
        self._free.sort()


def run_cluster_bench(
    *,
    topology: str = "indirect-binary-cube",
    ports: int = 16,
    shards: int = 2,
    dilation: "int | None" = None,
    conferences: int = 200,
    seed: int = 0,
    arrival_rate: float = 4.0,
    mean_size: float = 4.0,
    max_size: "int | None" = None,
    mean_hold_ticks: float = 20.0,
    resize_prob: float = 0.0,
    queue_capacity: int = 256,
    shed_policy: "ShedPolicy | str" = ShedPolicy.REJECT_NEWEST,
    max_batch: int = 256,
    churn: "ChurnPolicy | None" = None,
    retry: "RetryPolicy | None" = None,
    migration_budget: int = 8,
    fault_process: "FaultProcessConfig | None" = None,
    fault_horizon: "float | None" = None,
    kill_shard_at: "int | None" = None,
    add_shard_at: "int | None" = None,
    protection: int = 0,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
    slo: "SLOEvaluator | None" = None,
    flight: "FlightRecorder | None" = None,
    max_ticks: "int | None" = None,
    capacity_model: str = "abstract",
    perf: "PerfModelConfig | None" = None,
) -> ClusterBenchReport:
    """Run a seeded churn workload against a fresh cluster.

    ``shards`` fabrics of ``ports`` ports each (``dilation`` defaults to
    ``ports`` — generous enough that capacity never denies, see module
    docstring) serve ``conferences`` opens at ``arrival_rate`` per tick.
    ``kill_shard_at`` fails the busiest shard at that tick (the failover
    drill); ``add_shard_at`` scales a fresh shard in and rebalances;
    ``fault_process`` attaches an independent per-shard fault timeline.
    ``protection`` (plan budget F, default 0 = reactive) arms every
    shard fabric with precomputed backup plans; the report's
    ``recovery`` block folds all shards' recovery-tick samples and plan
    counters into one distribution.  Protection never enters the
    invariant fields — decisions are bit-identical with or without it.
    """
    check_positive(arrival_rate, "arrival_rate")
    check_positive(mean_hold_ticks, "mean_hold_ticks")
    if conferences < 1:
        raise ValueError(f"conferences must be >= 1, got {conferences}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    dil = ports if dilation is None else dilation
    base = ensure_rng(seed)
    # Stream order is part of the file format of this benchmark (it
    # deliberately mirrors the serve bench): reorder it and every
    # same-seed comparison with older runs breaks.
    arrivals_rng, size_rng, member_rng, hold_rng, resize_rng, fault_rng, service_rng = (
        base.spawn(7)
    )

    def factory(shard_id: str) -> ConferenceNetwork:
        return ConferenceNetwork.build(topology, ports, dilation=dil)

    cluster = ClusterService(
        factory,
        shards=shards,
        retry=retry,
        rng=service_rng,
        protection=protection,
        tracer=tracer,
        metrics=metrics,
        slo=slo,
        flight=flight,
        queue_capacity=queue_capacity,
        shed_policy=shed_policy,
        max_batch=max_batch,
        migration_budget=migration_budget,
        churn=churn,
        capacity_model=capacity_model,
        perf=perf,
    )
    injectors = []
    if fault_process is not None:
        if fault_horizon is None:
            fault_horizon = 4.0 * conferences / arrival_rate + 8.0 * mean_hold_ticks
        for shard_id in sorted(cluster.shards):
            shard = cluster.shards[shard_id]
            (shard_fault_rng,) = fault_rng.spawn(1)
            timeline = generate_fault_timeline(
                shard.service.network.topology,
                fault_process,
                fault_horizon,
                seed=shard_fault_rng,
            )
            injectors.append(cluster.attach_faults(shard_id, timeline))

    directory = cluster.directory
    pool = _PortPool(ports)
    closes_due: dict[int, list[int]] = {}
    outstanding = [0]  # submitted requests awaiting a terminal response
    starved = [0]
    resizes = [0]
    killed_shard: "list[str | None]" = [None]
    added_shard: "list[str | None]" = [None]
    rebalance_fraction: "list[float | None]" = [None]

    def finish(fn):
        def callback(response: ServiceResponse) -> None:
            outstanding[0] -= 1
            fn(response)

        return callback

    def on_opened(hold: int):
        # The hold is drawn at *submit* time: shard fan-out reorders
        # completion callbacks by shard, so drawing here would map the
        # hold stream onto different sessions per shard count.
        def callback(response: ServiceResponse) -> None:
            csid = response.session_id
            if response.ok:
                closes_due.setdefault(tick[0] + max(hold, 1), []).append(csid)
            else:
                pool.release(directory.require(csid).members)

        return callback

    def on_closed(response: ServiceResponse) -> None:
        entry = directory.require(response.session_id)
        if response.ok:
            pool.release(entry.members)
        elif entry.live:
            # A close bounced off a failing/migrating shard; the session
            # still owns its ports, so try again shortly.
            closes_due.setdefault(tick[0] + 1, []).append(entry.cluster_session_id)

    def on_join(ports_taken):
        def callback(response: ServiceResponse) -> None:
            if not response.ok:
                pool.release(ports_taken)

        return callback

    def on_leave(ports_freed):
        def callback(response: ServiceResponse) -> None:
            if response.ok:
                pool.release(ports_freed)

        return callback

    def open_one() -> bool:
        want = 2 + int(size_rng.poisson(max(mean_size - 2.0, 0.0)))
        if max_size is not None:
            want = min(want, max_size)
        if len(pool) < max(want, 2):
            starved[0] += 1
            return False
        members = pool.grab(member_rng, max(want, 2))
        hold = int(hold_rng.geometric(min(1.0, 1.0 / mean_hold_ticks)))
        outstanding[0] += 1
        cluster.submit_open(members, on_complete=finish(on_opened(hold)))
        return True

    def churn_resize() -> None:
        active = sorted(
            e.cluster_session_id for e in directory if e.state is EntryState.ACTIVE
        )
        if not active:
            return
        csid = active[int(resize_rng.integers(len(active)))]
        entry = directory.require(csid)
        grow = bool(resize_rng.integers(2))
        if grow and len(pool):
            taken = pool.grab(member_rng, 1)
            outstanding[0] += 1
            cluster.submit_join(csid, taken, on_complete=finish(on_join(taken)))
            resizes[0] += 1
        elif not grow and len(entry.members) > 2:
            port = entry.members[int(resize_rng.integers(len(entry.members)))]
            outstanding[0] += 1
            cluster.submit_leave(csid, (port,), on_complete=finish(on_leave((port,))))
            resizes[0] += 1

    def kill_busiest_shard() -> None:
        actives = sorted(
            sid for sid, s in cluster.shards.items() if s.state is ShardState.ACTIVE
        )
        if len(actives) < 2:
            return  # refuse to orphan the whole population
        victim = max(actives, key=lambda sid: (len(directory.on_shard(sid)), -actives.index(sid)))
        killed_shard[0] = victim
        cluster.fail_shard(victim)

    tick = [0]
    opened = 0
    budget = max_ticks if max_ticks is not None else max(200, conferences * 100)
    while (
        opened < conferences
        or outstanding[0]
        or closes_due
        or any(e.live for e in directory)
    ):
        if tick[0] >= budget:
            raise RuntimeError(
                f"cluster bench did not settle within {budget} ticks "
                f"({opened}/{conferences} opened, {outstanding[0]} outstanding)"
            )
        if kill_shard_at is not None and tick[0] == kill_shard_at:
            kill_busiest_shard()
        if add_shard_at is not None and tick[0] == add_shard_at:
            new_id, plan = cluster.scale_up()
            added_shard[0] = new_id
            rebalance_fraction[0] = plan.fraction
        if opened < conferences:
            for _ in range(int(arrivals_rng.poisson(arrival_rate))):
                if opened >= conferences:
                    break
                if open_one():
                    opened += 1
        for csid in sorted(closes_due.pop(tick[0], [])):
            if directory.require(csid).live:
                outstanding[0] += 1
                cluster.submit_close(csid, on_complete=finish(on_closed))
        if resize_prob and float(resize_rng.random()) < resize_prob:
            churn_resize()
        cluster.tick()
        tick[0] += 1

    consistency = cluster.check_consistency()
    before = cluster.stats.ticks
    counts = cluster.shutdown()
    peak = max(
        (s.service.queue.stats.peak_depth for s in cluster.shards.values()), default=0
    )
    # Fold every shard's healing stats (failed shards included — their
    # pre-kill failovers count) into one cluster-wide recovery table.
    samples: list[float] = []
    recovery: dict[str, Any] = {"plan_hits": 0, "plan_misses": 0, "plan_stale": 0}
    for shard_id in sorted(cluster.shards):
        healing_stats = cluster.shards[shard_id].service.healing.stats
        samples.extend(healing_stats.recovery_samples)
        recovery["plan_hits"] += healing_stats.plan_hits
        recovery["plan_misses"] += healing_stats.plan_misses
        recovery["plan_stale"] += healing_stats.plan_stale
    recovery = {**AvailabilityStats.summarize_recovery(samples), **recovery}
    return ClusterBenchReport(
        topology=topology,
        n_ports=ports,
        shards=shards,
        seed=seed,
        conferences=opened,
        ticks=cluster.stats.ticks,
        drain_ticks=cluster.stats.ticks - before,
        starved_arrivals=starved[0],
        resizes=resizes[0],
        fault_transitions=sum(len(inj.history) for inj in injectors),
        killed_shard=killed_shard[0],
        kill_tick=kill_shard_at if killed_shard[0] is not None else None,
        added_shard=added_shard[0],
        rebalance_fraction=rebalance_fraction[0],
        queue_capacity=queue_capacity,
        shed_policy=str(
            shed_policy.value if isinstance(shed_policy, ShedPolicy) else shed_policy
        ),
        peak_queue_depth=peak,
        lost_sessions=cluster.stats.lost_sessions,
        protection=cluster.protection,
        recovery=recovery,
        consistency=consistency,
        session_counts=counts,
        cluster=cluster.stats.as_dict(),
        per_shard={
            shard_id: cluster.shards[shard_id].as_dict()
            for shard_id in sorted(cluster.shards)
        },
        delivery=cluster.delivery_summary(),
    )
