"""Rendezvous (HRW) placement of conferences onto fabric shards.

One fabric serves disjoint conferences within its own N ports; a
cluster multiplies capacity by running many fabrics side by side and
assigning each conference wholly to one of them.  The assignment has to
be computable by anyone from public data (no coordination service), has
to respect heterogeneous shard capacities, and — crucially for elastic
scaling — has to move as few conferences as possible when the shard set
changes.  Weighted rendezvous hashing gives all three:

* every ``(key, shard)`` pair hashes through BLAKE2b to a uniform
  deviate ``u`` in (0, 1), scored ``weight / -ln(u)`` (the standard
  weighted-rendezvous transform: a shard of weight 2 wins twice as many
  keys as a shard of weight 1);
* the shard with the highest score owns the key, ties broken by shard
  id, so placement is a pure deterministic function of
  ``(key, shard ids, weights)`` — no RNG, no state, identical across
  processes and platforms;
* **minimal disruption**: adding a shard moves exactly the keys whose
  top score now belongs to the newcomer (expected fraction
  ``w_new / W_total`` of all keys) and removing one moves only the keys
  it owned — every other key's ranking among the survivors is
  untouched.  ``tests/cluster/test_placement.py`` proves both bounds.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from hashlib import blake2b

__all__ = ["shard_score", "rank_shards", "place_shard"]


def shard_score(key: "int | str", shard_id: str, weight: float = 1.0) -> float:
    """The rendezvous score of ``shard_id`` for ``key`` (higher wins).

    ``weight`` scales the shard's expected share of keys linearly
    (capacity weighting); it must be positive.
    """
    if weight <= 0.0:
        raise ValueError(f"shard weight must be > 0, got {weight}")
    digest = blake2b(f"{key}\x1f{shard_id}".encode(), digest_size=8).digest()
    # Map the 64-bit digest into the open interval (0, 1); +0.5 keeps
    # both endpoints unreachable so the log below is always finite.
    u = (int.from_bytes(digest, "big") + 0.5) / 2.0**64
    return weight / -math.log(u)


def rank_shards(key: "int | str", shards: Mapping[str, float]) -> list[str]:
    """All shards ordered by descending preference for ``key``.

    ``shards`` maps shard id to capacity weight.  The first entry is
    the key's home; the rest are its failover order — the property the
    cluster's failover and rebalance paths lean on is that removing the
    first entry promotes the second without disturbing anything else.
    """
    return sorted(shards, key=lambda sid: (-shard_score(key, sid, shards[sid]), sid))


def place_shard(key: "int | str", shards: Mapping[str, float]) -> "str | None":
    """The shard that owns ``key``, or ``None`` when no shards exist."""
    if not shards:
        return None
    return min(shards, key=lambda sid: (-shard_score(key, sid, shards[sid]), sid))
