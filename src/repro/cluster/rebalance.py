"""Elastic rebalancing: placement-delta planning and the migration queue.

When the shard set changes — a shard joins (scale-up), drains
(scale-down), or dies (failover) — some sessions' rendezvous homes
change.  This module owns the two pieces the
:class:`~repro.cluster.controller.ClusterService` composes:

* :func:`plan_rebalance` computes the **placement delta**: exactly the
  live sessions whose current home differs from what
  :func:`~repro.cluster.placement.place_shard` now says, and where each
  should go.  Rendezvous hashing guarantees the delta is minimal —
  adding a shard of weight ``w`` to total weight ``W`` moves an
  expected ``w / W`` fraction of sessions, all of them *onto* the new
  shard — so the plan never shuffles sessions between surviving shards.
* :class:`MigrationQueue` throttles execution.  Every move is
  make-before-break (the next generation opens on the target fabric
  before the old one closes on the source), which costs transient
  double capacity; the queue releases at most ``budget`` moves per
  tick so a large rebalance ripples through the cluster instead of
  thundering onto it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.serve.protocol import Priority

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from collections.abc import Iterable, Mapping

    from repro.cluster.directory import DirectoryEntry
    from repro.serve.protocol import ServiceResponse

__all__ = ["Move", "MigrationQueue", "RebalancePlan", "plan_rebalance"]

#: Why a session is being moved between shards.
MOVE_KINDS = ("rebalance", "drain", "failover")


@dataclass
class Move:
    """One pending cross-shard migration of a cluster session."""

    cluster_session_id: int
    members: tuple[int, ...]
    priority: Priority
    kind: str  # "rebalance" | "drain" | "failover"
    source_shard: "str | None"  # None when the source fabric is gone
    attempts: int = 0
    cancelled: bool = False  # client closed the session mid-move
    restore_open: bool = False  # the original open never completed
    notify: "Callable[[ServiceResponse], None] | None" = None
    span: "int | None" = None  # open cluster.migrate/failover span id

    def __post_init__(self) -> None:
        if self.kind not in MOVE_KINDS:
            raise ValueError(f"unknown move kind {self.kind!r}")


class MigrationQueue:
    """A budgeted FIFO of pending :class:`Move` records.

    ``budget`` is the number of moves the cluster may *start* per tick;
    moves denied by the target (capacity, backpressure) come back via
    :meth:`requeue` and are retried on a later tick.  The queue holds at
    most one move per session — the controller enforces that by marking
    the directory entry ``MIGRATING`` while a move is queued or in
    flight.
    """

    def __init__(self, budget: int = 8):
        if budget < 1:
            raise ValueError(f"migration budget must be >= 1, got {budget}")
        self._budget = budget
        self._pending: deque[Move] = deque()
        self.started = 0
        self.completed = 0
        self.retried = 0

    @property
    def budget(self) -> int:
        """Moves the cluster may start per tick."""
        return self._budget

    @property
    def depth(self) -> int:
        """Moves waiting to start."""
        return len(self._pending)

    def __len__(self) -> int:
        return len(self._pending)

    def __iter__(self):
        return iter(self._pending)

    def enqueue(self, move: Move) -> None:
        """Add one move to the back of the queue."""
        self._pending.append(move)

    def requeue(self, move: Move) -> None:
        """A started move was denied by its target; try again later."""
        move.attempts += 1
        self.retried += 1
        self._pending.append(move)

    def start_batch(self) -> list[Move]:
        """Pop this tick's allowance (up to ``budget`` moves)."""
        batch: list[Move] = []
        while self._pending and len(batch) < self._budget:
            batch.append(self._pending.popleft())
        self.started += len(batch)
        return batch

    def discard(self, cluster_session_id: int) -> "Move | None":
        """Remove and return the queued move for one session, if any."""
        for move in self._pending:
            if move.cluster_session_id == cluster_session_id:
                self._pending.remove(move)
                return move
        return None


@dataclass(frozen=True)
class RebalancePlan:
    """The placement delta of one shard-set change.

    ``moves`` lists ``(cluster_session_id, source_shard, target_shard)``
    for exactly the sessions whose rendezvous home changed;
    ``total_sessions`` is the live population the delta was computed
    over, so ``fraction`` is the movement ratio the HRW bound speaks
    about (expected ``w_changed / W_total``).
    """

    moves: tuple[tuple[int, "str | None", str], ...]
    total_sessions: int
    targets: dict[str, int] = field(default_factory=dict)

    @property
    def fraction(self) -> float:
        """Fraction of live sessions the plan moves."""
        return len(self.moves) / self.total_sessions if self.total_sessions else 0.0

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view for reports and the CLI."""
        return {
            "kind": "rebalance_plan",
            "moves": [list(m) for m in self.moves],
            "total_sessions": self.total_sessions,
            "fraction": self.fraction,
            "targets": dict(sorted(self.targets.items())),
        }


def plan_rebalance(
    entries: "Iterable[DirectoryEntry]", weights: "Mapping[str, float]"
) -> RebalancePlan:
    """The minimal move set that re-homes ``entries`` per ``weights``.

    ``weights`` maps *placeable* shard ids to capacity weights (the
    controller passes only ACTIVE shards, so draining and failed shards
    are drained by construction).  Only ACTIVE entries are planned —
    pending opens land wherever admission puts them, and sessions
    already migrating are left to finish their current move first.
    """
    from repro.cluster.directory import EntryState
    from repro.cluster.placement import place_shard

    moves: list[tuple[int, "str | None", str]] = []
    targets: dict[str, int] = {}
    total = 0
    for entry in entries:
        if entry.state is not EntryState.ACTIVE:
            continue
        total += 1
        target = place_shard(entry.cluster_session_id, weights)
        if target is not None and target != entry.shard_id:
            moves.append((entry.cluster_session_id, entry.shard_id, target))
            targets[target] = targets.get(target, 0) + 1
    return RebalancePlan(moves=tuple(moves), total_sessions=total, targets=targets)
