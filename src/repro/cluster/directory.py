"""The cluster-wide session directory.

Clients of the cluster hold *cluster* session ids; fabrics hold their
own shard-local ids.  The directory is the one mapping between the two:
every cluster session records which shard currently hosts it, under
which shard-local session id, and how many times it has been moved
(rebalance, drain) or re-homed (shard failure).  The
:class:`~repro.cluster.controller.ClusterService` is the only writer;
everything else — benches, tests, the CLI — reads it.

The directory deliberately mirrors only the *cluster-relevant* slice of
a session's lifecycle.  Shard-internal excursions (DEGRADED under a
fault detour, DOWN while the shard's healing controller restores a
dropped route) stay shard-local: from the cluster's point of view the
session is simply ``ACTIVE`` on that shard the whole time.  What the
directory does track is the cross-shard machinery: ``MIGRATING`` marks
a session whose next generation is being opened on another shard
(make-before-break), and every completed move bumps ``generation`` so
clients can detect that their media path was rebuilt.

Consistency invariant (checked by :meth:`SessionDirectory.inconsistencies`
and asserted in ``tests/cluster``): every live entry points at exactly
one shard, and every live shard-local session is pointed at by exactly
one live entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from repro.serve.protocol import Priority

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from collections.abc import Mapping

__all__ = ["EntryState", "DirectoryEntry", "SessionDirectory"]


class EntryState(Enum):
    """Where a cluster session sits in its cluster-level lifecycle."""

    PENDING = "pending"  # open submitted, verdict not yet in
    ACTIVE = "active"  # admitted on its home shard
    MIGRATING = "migrating"  # next generation opening on another shard
    CLOSED = "closed"
    REJECTED = "rejected"
    LOST = "lost"  # must never happen; tracked so tests can assert it


#: States in which the session owns (or is owed) capacity somewhere.
LIVE_STATES = frozenset({EntryState.PENDING, EntryState.ACTIVE, EntryState.MIGRATING})


@dataclass
class DirectoryEntry:
    """One cluster session's current placement record."""

    cluster_session_id: int
    members: tuple[int, ...]
    priority: Priority = Priority.NORMAL
    state: EntryState = EntryState.PENDING
    shard_id: "str | None" = None
    shard_session_id: "int | None" = None
    generation: int = 0  # bumped on every completed cross-shard move
    moves: int = 0  # rebalance / drain migrations survived
    failovers: int = 0  # shard-failure re-homes survived

    @property
    def live(self) -> bool:
        """True while the session owns (or is owed) fabric capacity."""
        return self.state in LIVE_STATES

    def as_dict(self) -> dict:
        """A JSON-ready view for reports and the CLI."""
        return {
            "session": self.cluster_session_id,
            "members": list(self.members),
            "state": self.state.value,
            "shard": self.shard_id,
            "shard_session": self.shard_session_id,
            "generation": self.generation,
            "moves": self.moves,
            "failovers": self.failovers,
        }


class SessionDirectory:
    """The registry of every session the cluster has ever accepted."""

    def __init__(self) -> None:
        self._entries: dict[int, DirectoryEntry] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def __contains__(self, cluster_session_id: int) -> bool:
        return cluster_session_id in self._entries

    def create(
        self, members: "tuple[int, ...]", priority: Priority = Priority.NORMAL
    ) -> DirectoryEntry:
        """Mint a new PENDING entry with the next free cluster id."""
        entry = DirectoryEntry(
            cluster_session_id=self._next_id,
            members=tuple(members),
            priority=priority,
        )
        self._entries[entry.cluster_session_id] = entry
        self._next_id += 1
        return entry

    def get(self, cluster_session_id: int) -> "DirectoryEntry | None":
        """The entry with this cluster id, or ``None``."""
        return self._entries.get(cluster_session_id)

    def require(self, cluster_session_id: int) -> DirectoryEntry:
        """The entry with this cluster id, or ``KeyError``."""
        try:
            return self._entries[cluster_session_id]
        except KeyError:
            raise KeyError(f"no cluster session with id {cluster_session_id}") from None

    def live(self) -> list[DirectoryEntry]:
        """Entries currently owning (or owed) capacity, in id order."""
        return [e for e in self._entries.values() if e.live]

    def on_shard(self, shard_id: str) -> list[DirectoryEntry]:
        """Live entries currently homed on ``shard_id``, in id order."""
        return [e for e in self._entries.values() if e.live and e.shard_id == shard_id]

    def counts(self) -> dict[str, int]:
        """Entry tally per cluster lifecycle state (all states present)."""
        out = {state.value: 0 for state in EntryState}
        for entry in self._entries.values():
            out[entry.state.value] += 1
        return out

    def record_move(
        self, cluster_session_id: int, shard_id: str, shard_session_id: int, *, failover: bool
    ) -> DirectoryEntry:
        """Point one session at its new home and bump its generation."""
        entry = self.require(cluster_session_id)
        entry.shard_id = shard_id
        entry.shard_session_id = shard_session_id
        entry.generation += 1
        if failover:
            entry.failovers += 1
        else:
            entry.moves += 1
        return entry

    def inconsistencies(
        self, shard_sessions: "Mapping[str, Mapping[int, tuple[int, ...]]]"
    ) -> list[str]:
        """Cross-check the directory against shard-local session tables.

        ``shard_sessions`` maps shard id -> {live shard session id ->
        members} (what each live fabric believes it is hosting).
        Returns human-readable violations of the consistency invariant —
        an empty list is the assertion the cluster tests make after
        every drill.
        """
        problems: list[str] = []
        claimed: dict[tuple[str, int], int] = {}
        for entry in self._entries.values():
            if entry.state is not EntryState.ACTIVE:
                continue
            if entry.shard_id is None or entry.shard_session_id is None:
                problems.append(f"active session {entry.cluster_session_id} has no home")
                continue
            home = (entry.shard_id, entry.shard_session_id)
            if home in claimed:
                problems.append(
                    f"sessions {claimed[home]} and {entry.cluster_session_id} "
                    f"both claim {home}"
                )
            claimed[home] = entry.cluster_session_id
            table = shard_sessions.get(entry.shard_id)
            if table is None:
                problems.append(
                    f"session {entry.cluster_session_id} homed on unknown "
                    f"shard {entry.shard_id!r}"
                )
            elif entry.shard_session_id not in table:
                problems.append(
                    f"session {entry.cluster_session_id} points at dead "
                    f"shard session {home}"
                )
            elif tuple(table[entry.shard_session_id]) != entry.members:
                problems.append(
                    f"session {entry.cluster_session_id} membership drifted "
                    f"from shard {entry.shard_id!r}"
                )
        for shard_id, table in shard_sessions.items():
            for shard_sid in table:
                if (shard_id, shard_sid) not in claimed:
                    problems.append(
                        f"shard {shard_id!r} hosts unclaimed session {shard_sid}"
                    )
        return problems
