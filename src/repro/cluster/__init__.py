"""Sharded multi-fabric cluster layer.

One fabric serves disjoint conferences within its N ports; this package
scales the paper's switching fabric horizontally by running a pool of
:class:`~repro.serve.service.FabricService` shards behind one facade:

* :mod:`repro.cluster.placement` — weighted rendezvous (HRW) hashing of
  conference ids onto shards, with the minimal-disruption bound.
* :mod:`repro.cluster.directory` — the cluster-wide session directory
  mapping cluster sessions to shard generations through migrations.
* :mod:`repro.cluster.rebalance` — placement-delta planning and the
  per-tick migration budget.
* :mod:`repro.cluster.controller` — :class:`ClusterService`: placement-
  routed admission, lockstep shard ticks, graceful drain, and the
  shard-failure drill (zero lost sessions).
* :mod:`repro.cluster.bench` — the seeded churn benchmark whose
  client-visible metrics are byte-identical across shard counts.
"""

from repro.cluster.bench import ClusterBenchReport, run_cluster_bench
from repro.cluster.controller import ClusterService, ClusterStats, ShardInfo, ShardState
from repro.cluster.directory import DirectoryEntry, EntryState, SessionDirectory
from repro.cluster.placement import place_shard, rank_shards, shard_score
from repro.cluster.rebalance import MigrationQueue, Move, RebalancePlan, plan_rebalance

__all__ = [
    "ClusterBenchReport",
    "ClusterService",
    "ClusterStats",
    "DirectoryEntry",
    "EntryState",
    "MigrationQueue",
    "Move",
    "RebalancePlan",
    "SessionDirectory",
    "ShardInfo",
    "ShardState",
    "place_shard",
    "plan_rebalance",
    "rank_shards",
    "run_cluster_bench",
    "shard_score",
]
