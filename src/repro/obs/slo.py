"""Live SLO engine: streaming percentiles, error budgets, burn-rate alerts.

The metrics registry (PR 3) answers "what happened"; this module answers
"is the service meeting its objectives *right now*".  Three pieces:

* :class:`WindowedHistogram` — a streaming, log-bucketed histogram that
  keeps a short ring of fixed-width time windows and answers p50/p95/p99
  over the live windows.  Log-spaced bucket edges give a guaranteed
  relative error: for any observation ``v`` with ``low <= v <= high``,
  the reported quantile ``q`` satisfies ``v <= q < v * growth``.  The
  whole structure is plain dicts under the hood: :meth:`snapshot` /
  :meth:`merge` compose across parallel workers exactly like the
  registry's, and merging is commutative (windows are keyed by absolute
  window index, counts add), so any merge order renders identically.
* :class:`SLOSpec` — a declarative objective: a good-event ratio target
  (``availability``-style) or a latency bound (good when the observed
  value is ``<= threshold``), with an error budget ``1 - objective`` and
  a set of :class:`BurnWindow` alerting rules.
* :class:`SLOEvaluator` — holds specs plus their windowed good/bad
  counts and latency histograms, evaluates every spec per tick, tracks
  multi-window burn rates, and reports an alert state per spec:
  ``ok`` → ``warn`` → ``page``.  Transitions into ``page`` fire breach
  hooks (the flight recorder registers one to dump an incident bundle).

Burn rate is the standard SRE quantity: observed bad fraction over a
window divided by the error budget.  A burn rate of 1.0 consumes the
budget exactly at the sustainable pace; a :class:`BurnWindow` with
``factor=14.4`` over a short window pages when the budget would be gone
in under 1/14.4 of the compliance period.

Everything here is driven by the *virtual* clock (ticks), never the
wall clock, and draws no randomness — evaluation is a pure function of
the recorded observations, so instrumented runs stay bit-transparent
and reproducible.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "BurnWindow",
    "SLOEvaluator",
    "SLOSpec",
    "WindowedHistogram",
    "default_serve_slos",
    "log_bucket_edges",
]

#: Alert states in increasing severity; evaluator output uses these.
ALERT_STATES = ("ok", "warn", "page")


def log_bucket_edges(low: float, high: float, growth: float) -> tuple[float, ...]:
    """Geometric bucket upper edges from ``low`` up to at least ``high``.

    ``edges[0] == low`` and ``edges[i] == low * growth**i``; the last
    edge is the first one ``>= high``.  A value ``v`` in ``(edges[i-1],
    edges[i]]`` reported as ``edges[i]`` carries relative error below
    ``growth`` — the bound the property suite checks.
    """
    if not (low > 0.0 and high >= low):
        raise ValueError(f"need 0 < low <= high, got low={low!r} high={high!r}")
    if not growth > 1.0:
        raise ValueError(f"growth must be > 1, got {growth!r}")
    edges = [float(low)]
    while edges[-1] < high:
        edges.append(edges[-1] * growth)
    return tuple(edges)


class WindowedHistogram:
    """Log-bucketed histogram over a sliding ring of time windows.

    Observations land in the window ``int(now // window)``; only the
    ``windows`` most recent windows are retained, so quantiles describe
    recent behaviour, not the whole run.  ``now`` is virtual time —
    the caller's tick clock — which keeps results reproducible.
    """

    def __init__(
        self,
        *,
        low: float = 0.5,
        high: float = 4096.0,
        growth: float = 2.0 ** 0.5,
        window: float = 60.0,
        windows: int = 5,
    ):
        if window <= 0.0:
            raise ValueError(f"window must be positive, got {window!r}")
        if windows < 1:
            raise ValueError(f"windows must be >= 1, got {windows!r}")
        self._edges = log_bucket_edges(low, high, growth)
        self._growth = float(growth)
        self._window = float(window)
        self._max_windows = int(windows)
        # window index -> per-bucket counts (len(edges) + 1, last = overflow)
        self._frames: dict[int, list[int]] = {}
        # Lazily maintained sum over live frames; the evaluator queries
        # count + three quantiles every tick, so rescanning the ring each
        # time dominates the whole SLO path without this.
        self._merged: "list[int] | None" = None
        self.observed = 0  # every observation ever, trimmed or not

    # -- recording ---------------------------------------------------------

    @property
    def edges(self) -> tuple[float, ...]:
        """Bucket upper edges (immutable; shared by merge partners)."""
        return self._edges

    def _bucket(self, value: float) -> int:
        # bisect_left finds the first edge >= value, i.e. the tightest
        # upper bound; values past the last edge go to the overflow slot.
        return bisect_left(self._edges, value)

    def _frame(self, now: float) -> list[int]:
        wid = int(now // self._window)
        frame = self._frames.get(wid)
        if frame is None:
            frame = self._frames[wid] = [0] * (len(self._edges) + 1)
            self._trim(wid)
        return frame

    def _trim(self, newest: int) -> None:
        floor = newest - self._max_windows + 1
        stale = [w for w in self._frames if w < floor]
        for wid in stale:
            del self._frames[wid]
        if stale:
            self._merged = None

    def observe(self, value: float, now: float) -> None:
        """Record one observation at virtual time ``now``."""
        frame = self._frame(now)  # may trim, invalidating the cache
        bucket = self._bucket(float(value))
        frame[bucket] += 1
        if self._merged is not None:
            self._merged[bucket] += 1
        self.observed += 1

    def advance(self, now: float) -> None:
        """Expire windows that fell out of the ring as of ``now``.

        Called per tick by the evaluator so quiet histograms still age
        out; recording paths trim implicitly.
        """
        if self._frames:
            self._trim(max(int(now // self._window), max(self._frames)))

    # -- querying ----------------------------------------------------------

    def _merged_counts(self) -> list[int]:
        if self._merged is None:
            counts = [0] * (len(self._edges) + 1)
            for frame in self._frames.values():
                for i, c in enumerate(frame):
                    counts[i] += c
            self._merged = counts
        return self._merged

    def count(self) -> int:
        """Observations currently retained (live windows only)."""
        return sum(self._merged_counts())

    def quantile(self, q: float) -> "float | None":
        """The ``q``-quantile over the live windows; ``None`` if empty.

        Returns the upper edge of the bucket holding the ``q``-ranked
        observation — an overestimate by strictly less than ``growth``
        for in-range values.  The overflow bucket reports ``inf``.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q!r}")
        counts = self._merged_counts()
        total = sum(counts)
        if total == 0:
            return None
        rank = max(1, math.ceil(q * total - 1e-9))
        seen = 0
        for i, c in enumerate(counts):
            seen += c
            if seen >= rank:
                return self._edges[i] if i < len(self._edges) else math.inf
        return math.inf  # pragma: no cover - rank <= total by construction

    def percentiles(self) -> "dict[str, float | None]":
        """The conventional p50/p95/p99 triple over the live windows."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> dict:
        """A picklable plain-dict view; window keys are absolute indices."""
        return {
            "edges": list(self._edges),
            "growth": self._growth,
            "window": self._window,
            "windows": self._max_windows,
            "observed": self.observed,
            "frames": {wid: list(frame) for wid, frame in sorted(self._frames.items())},
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Windows are keyed by absolute index and counts add, so merging
        is commutative and associative: any merge order of the same
        snapshots yields an identical histogram (the exposition
        determinism the regression suite shuffles to check).
        """
        if list(snapshot["edges"]) != list(self._edges) or snapshot["window"] != self._window:
            raise ValueError("cannot merge windowed histograms with different shapes")
        for wid, counts in snapshot["frames"].items():
            wid = int(wid)
            frame = self._frames.setdefault(wid, [0] * (len(self._edges) + 1))
            for i, c in enumerate(counts):
                frame[i] += c
        self._merged = None
        self.observed += snapshot.get("observed", 0)
        if self._frames:
            self._trim(max(self._frames))


@dataclass(frozen=True)
class BurnWindow:
    """One burn-rate alerting rule: window length, threshold, severity."""

    ticks: float
    factor: float
    severity: str = "page"

    def __post_init__(self):
        if self.ticks <= 0.0:
            raise ValueError(f"window ticks must be positive, got {self.ticks!r}")
        if self.factor <= 0.0:
            raise ValueError(f"burn factor must be positive, got {self.factor!r}")
        if self.severity not in ("warn", "page"):
            raise ValueError(f"severity must be 'warn' or 'page', got {self.severity!r}")


#: Default alerting rules: a slow 6x warn and a fast 14.4x page, the
#: classic multi-window multi-burn-rate pair scaled to tick time.
DEFAULT_BURN_WINDOWS = (
    BurnWindow(ticks=240.0, factor=6.0, severity="warn"),
    BurnWindow(ticks=60.0, factor=14.4, severity="page"),
)


@dataclass(frozen=True)
class SLOSpec:
    """A declarative service-level objective.

    ``kind="ratio"`` counts good/bad events directly (availability,
    shed rate); ``kind="latency"`` derives good/bad from observed
    values against ``threshold`` (good when ``value <= threshold``)
    and additionally keeps a :class:`WindowedHistogram` for
    percentiles.  ``objective`` is the target good fraction; the error
    budget is ``1 - objective``.
    """

    name: str
    objective: float = 0.99
    kind: str = "ratio"
    threshold: "float | None" = None
    description: str = ""
    windows: "tuple[BurnWindow, ...]" = DEFAULT_BURN_WINDOWS
    histogram_low: float = 0.5
    histogram_high: float = 4096.0
    histogram_growth: float = 2.0 ** 0.5

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"invalid SLO name {self.name!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {self.objective!r}")
        if self.kind not in ("ratio", "latency"):
            raise ValueError(f"kind must be 'ratio' or 'latency', got {self.kind!r}")
        if self.kind == "latency" and self.threshold is None:
            raise ValueError(f"latency SLO {self.name!r} needs a threshold")
        if not self.windows:
            raise ValueError(f"SLO {self.name!r} needs at least one burn window")

    @property
    def budget(self) -> float:
        """The error budget: tolerable bad fraction, ``1 - objective``."""
        return 1.0 - self.objective

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "objective": self.objective,
            "kind": self.kind,
            "threshold": self.threshold,
            "description": self.description,
            "windows": [
                {"ticks": w.ticks, "factor": w.factor, "severity": w.severity}
                for w in self.windows
            ],
        }


def default_serve_slos(
    *,
    admission_latency_ticks: float = 10.0,
    recovery_ticks: float = 2.0,
) -> "tuple[SLOSpec, ...]":
    """The stock objectives for the serve/cluster layers.

    * ``admission_latency`` — 95% of admissions within
      ``admission_latency_ticks`` of arrival.
    * ``availability`` — 99.9% of per-tick session observations not in
      the down state.
    * ``recovery`` — 90% of fault recoveries within ``recovery_ticks``
      (protected links heal in ~0 via the backup-plan fast path).
    * ``shed_rate`` — at most 1% of offered requests shed or rejected
      by backpressure.
    """
    return (
        SLOSpec(
            "admission_latency",
            objective=0.95,
            kind="latency",
            threshold=admission_latency_ticks,
            description="admission latency from arrival to admitted (ticks)",
        ),
        SLOSpec(
            "availability",
            objective=0.999,
            description="fraction of session-ticks not spent down",
        ),
        SLOSpec(
            "recovery",
            objective=0.90,
            kind="latency",
            threshold=recovery_ticks,
            description="fault recovery time (ticks) per degraded conference",
            histogram_low=0.25,
            histogram_high=256.0,
        ),
        SLOSpec(
            "shed_rate",
            objective=0.99,
            description="fraction of offered requests not shed by backpressure",
        ),
    )


@dataclass
class _SpecState:
    """Mutable per-spec bookkeeping inside the evaluator."""

    spec: SLOSpec
    counts: "dict[int, list[int]]" = field(default_factory=dict)  # wid -> [good, bad]
    hist: "WindowedHistogram | None" = None
    state: str = "ok"
    breaches: int = 0


class SLOEvaluator:
    """Evaluates a set of :class:`SLOSpec` objects against live traffic.

    Good/bad counts land in fixed-width frames (``frame`` ticks wide);
    burn rates sum the frames covering each :class:`BurnWindow`.  Call
    :meth:`record` / :meth:`observe` from instrumentation sites (all
    gated on ``slo is not None``), then :meth:`evaluate` once per tick.
    The evaluator is snapshot/merge-compatible with the parallel
    workers: :meth:`snapshot` is plain picklable data and :meth:`merge`
    is commutative.
    """

    def __init__(
        self,
        specs: "Iterable[SLOSpec] | None" = None,
        *,
        frame: float = 15.0,
    ):
        if frame <= 0.0:
            raise ValueError(f"frame must be positive, got {frame!r}")
        self._frame = float(frame)
        self._specs: dict[str, _SpecState] = {}
        self._hooks: "list[Callable[[str, dict, float], None]]" = []
        self._last: "dict | None" = None
        for spec in specs if specs is not None else default_serve_slos():
            self.add_spec(spec)

    # -- configuration -----------------------------------------------------

    def add_spec(self, spec: SLOSpec) -> None:
        """Register an objective; names must be unique."""
        if spec.name in self._specs:
            raise ValueError(f"duplicate SLO spec {spec.name!r}")
        hist = None
        if spec.kind == "latency":
            hist = WindowedHistogram(
                low=spec.histogram_low,
                high=spec.histogram_high,
                growth=spec.histogram_growth,
                window=self._frame,
                windows=self._hist_windows(spec),
            )
        self._specs[spec.name] = _SpecState(spec=spec, hist=hist)

    def _hist_windows(self, spec: SLOSpec) -> int:
        longest = max(w.ticks for w in spec.windows)
        return max(1, math.ceil(longest / self._frame))

    @property
    def specs(self) -> "tuple[SLOSpec, ...]":
        """The registered objectives, sorted by name."""
        return tuple(self._specs[name].spec for name in sorted(self._specs))

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def add_breach_hook(self, hook: "Callable[[str, dict, float], None]") -> None:
        """Register ``hook(name, status, now)`` fired on entry to ``page``.

        The flight recorder registers one to dump an incident bundle;
        hooks run inside :meth:`evaluate` and must not raise.
        """
        self._hooks.append(hook)

    # -- recording ---------------------------------------------------------

    def _counts(self, name: str, now: float) -> list[int]:
        state = self._specs[name]
        wid = int(now // self._frame)
        frame = state.counts.get(wid)
        if frame is None:
            frame = state.counts[wid] = [0, 0]
            self._trim(state, wid)
        return frame

    def _retained(self, spec: SLOSpec) -> int:
        return self._hist_windows(spec)

    def _trim(self, state: _SpecState, newest: int) -> None:
        floor = newest - self._retained(state.spec) + 1
        for wid in [w for w in state.counts if w < floor]:
            del state.counts[wid]

    def record(self, name: str, *, good: int = 0, bad: int = 0, now: float = 0.0) -> None:
        """Add good/bad event counts for a ratio objective."""
        frame = self._counts(name, now)
        frame[0] += int(good)
        frame[1] += int(bad)

    def observe(self, name: str, value: float, now: float = 0.0) -> None:
        """Record one latency-style observation for a latency objective."""
        state = self._specs[name]
        if state.hist is None:
            raise ValueError(f"SLO {name!r} is not a latency objective")
        state.hist.observe(value, now)
        good = value <= state.spec.threshold
        self.record(name, good=1 if good else 0, bad=0 if good else 1, now=now)

    # -- evaluation --------------------------------------------------------

    def _burn(self, state: _SpecState, window: BurnWindow, now: float) -> "dict[str, Any]":
        floor = int((now - window.ticks) // self._frame) + 1
        good = bad = 0
        for wid, (g, b) in state.counts.items():
            if wid >= floor:
                good += g
                bad += b
        total = good + bad
        bad_rate = (bad / total) if total else 0.0
        burn = bad_rate / state.spec.budget
        return {
            "ticks": window.ticks,
            "factor": window.factor,
            "severity": window.severity,
            "good": good,
            "bad": bad,
            "bad_rate": bad_rate,
            "burn_rate": burn,
            "firing": total > 0 and burn >= window.factor,
        }

    def evaluate(self, now: float) -> dict:
        """Evaluate every objective as of virtual time ``now``.

        Returns (and caches as :attr:`last`) the full status document —
        the same shape the ``/slo`` endpoint serves.  Specs whose state
        transitions into ``page`` fire the registered breach hooks.
        """
        statuses = {}
        overall = "ok"
        for name in sorted(self._specs):
            state = self._specs[name]
            if state.hist is not None:
                state.hist.advance(now)
            self._trim(state, int(now // self._frame))
            windows = [self._burn(state, w, now) for w in state.spec.windows]
            severity = "ok"
            for w in windows:
                if w["firing"]:
                    if w["severity"] == "page":
                        severity = "page"
                    elif severity == "ok":
                        severity = "warn"
            previous, state.state = state.state, severity
            breached = severity == "page" and previous != "page"
            if breached:
                state.breaches += 1
            status = {
                "name": name,
                "state": severity,
                "objective": state.spec.objective,
                "budget": state.spec.budget,
                "kind": state.spec.kind,
                "threshold": state.spec.threshold,
                "breaches": state.breaches,
                "windows": windows,
            }
            if state.hist is not None:
                status["percentiles"] = state.hist.percentiles()
                status["observations"] = state.hist.count()
            statuses[name] = status
            if ALERT_STATES.index(severity) > ALERT_STATES.index(overall):
                overall = severity
            if breached:
                for hook in self._hooks:
                    hook(name, status, now)
        self._last = {"t": now, "state": overall, "slos": statuses}
        return self._last

    @property
    def last(self) -> "dict | None":
        """The most recent :meth:`evaluate` result (``None`` before any)."""
        return self._last

    @property
    def state(self) -> str:
        """Overall alert state from the last evaluation (``ok`` before any)."""
        return self._last["state"] if self._last is not None else "ok"

    def percentiles(self, name: str) -> "dict[str, float | None]":
        """Shortcut: live percentiles of a latency objective."""
        state = self._specs[name]
        if state.hist is None:
            raise ValueError(f"SLO {name!r} is not a latency objective")
        return state.hist.percentiles()

    # -- snapshot / merge / export -----------------------------------------

    def snapshot(self) -> dict:
        """Picklable counts + histograms, keyed by sorted spec name."""
        return {
            "frame": self._frame,
            "specs": [self._specs[n].spec.as_dict() for n in sorted(self._specs)],
            "counts": {
                name: {wid: list(c) for wid, c in sorted(self._specs[name].counts.items())}
                for name in sorted(self._specs)
            },
            "hists": {
                name: self._specs[name].hist.snapshot()
                for name in sorted(self._specs)
                if self._specs[name].hist is not None
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a worker evaluator's :meth:`snapshot` into this one.

        Commutative: frames are keyed by absolute window index and
        counts add, so shuffled merge orders produce byte-identical
        :meth:`to_json` output (the determinism regression test).
        """
        if snapshot["frame"] != self._frame:
            raise ValueError("cannot merge evaluators with different frame widths")
        names = [spec["name"] for spec in snapshot["specs"]]
        if names != sorted(self._specs):
            raise ValueError("cannot merge evaluators with different spec sets")
        for name, frames in snapshot["counts"].items():
            state = self._specs[name]
            for wid, (good, bad) in frames.items():
                frame = state.counts.setdefault(int(wid), [0, 0])
                frame[0] += good
                frame[1] += bad
            if state.counts:
                self._trim(state, max(state.counts))
        for name, hist in snapshot["hists"].items():
            self._specs[name].hist.merge(hist)

    def to_json(self, indent: "int | None" = None) -> str:
        """The last evaluation (or an empty shell) as deterministic JSON."""
        doc = self._last if self._last is not None else {
            "t": None,
            "state": "ok",
            "slos": {name: {"name": name, "state": "ok"} for name in sorted(self._specs)},
        }
        return json.dumps(doc, indent=indent, sort_keys=True)

    def write(self, path: str, indent: int = 2) -> None:
        """Write :meth:`to_json` to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json(indent=indent))
            fh.write("\n")


def merge_snapshots(base: SLOEvaluator, snapshots: "Sequence[dict]") -> SLOEvaluator:
    """Fold worker snapshots into ``base`` (order-independent) and return it."""
    for snap in snapshots:
        base.merge(snap)
    return base
