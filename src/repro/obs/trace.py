"""Structured event tracing for the conference switching stack.

A :class:`Tracer` collects a flat stream of **events** (instantaneous
observations) and **spans** (operations with a begin and an end) from
whatever components it is attached to — the event loop, the self-healing
controller, the fault injector, the route cache.  Records carry both the
*simulation* clock (``t``, when the emitting component knows it) and the
*wall* clock (``wall``, monotonic seconds), so a trace can answer "what
happened to conference 12 between the fault at t=381 and its restore"
as well as "where did the real time go".

Design constraints, in order:

* **Bit-transparency.**  Tracing is pure observation: a tracer never
  draws randomness, never mutates the objects it watches, and every
  instrumentation site is gated on ``tracer is not None`` — an
  uninstrumented run executes the identical decision sequence.  The
  transparency suite (``tests/obs``) asserts this end to end.
* **Bounded memory.**  Records live in a ring buffer (``capacity``
  newest records are kept); ``emitted`` counts everything ever recorded
  so truncation is detectable.
* **Zero dependencies.**  Standard library only; records are plain
  dicts, exported as JSON Lines (one record per line) that any tooling
  can consume.

Record schema::

    {"type": "event", "seq": 7, "name": "fault.fail", "t": 12.5,
     "wall": 0.0031, ...attributes}
    {"type": "span", "seq": 9, "name": "conference.submit", "sid": 3,
     "t0": 12.5, "t1": 14.0, "wall0": ..., "wall1": ..., "status": "admitted",
     ...attributes}

Spans are recorded once, at close time; a span left open when the trace
is exported is flushed with ``status="open"`` and ``t1=None``.

Two optional facilities ride on the same emission path:

* **Taps** (:meth:`Tracer.add_tap`) receive every record at the moment
  it is appended — the flight recorder uses one to ring recent records
  without a second instrumentation pass.
* **Parent context** (:meth:`Tracer.context`) pushes a span id onto a
  stack; records emitted while it is held carry a ``parent`` attribute,
  which is how one logical operation (a cluster open, a shard failover)
  links the shard-level spans it causes into a single causal trace.
"""

from __future__ import annotations

import json
import time
from collections import Counter, deque
from collections.abc import Callable
from contextlib import contextmanager
from typing import Any, TextIO

__all__ = ["Tracer", "NULL_TRACER"]

#: Record keys the tracer owns; attribute names may not collide with them.
_RESERVED = frozenset(
    {"type", "seq", "name", "sid", "t", "t0", "t1", "wall", "wall0", "wall1", "status"}
)


class Tracer:
    """A ring-buffered collector of structured trace records.

    Parameters
    ----------
    capacity:
        Maximum records kept (oldest are dropped first).
    clock:
        Wall-clock source; monotonic seconds.  Injectable for tests.
    """

    def __init__(self, capacity: int = 65536, clock: "Callable[[], float]" = time.perf_counter):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._records: "deque[dict]" = deque(maxlen=capacity)
        self._clock = clock
        self._epoch = clock()
        self._seq = 0
        self._next_sid = 1
        self._open_spans: dict[int, dict] = {}
        self._taps: "list[Callable[[dict], None]]" = []
        self._ctx: list[int] = []  # parent-span stack (see context())
        self.emitted = 0  # every record ever emitted, truncated or not

    # -- introspection -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Ring-buffer size (records beyond it are dropped oldest-first)."""
        return self._records.maxlen or 0

    @property
    def truncated(self) -> bool:
        """True when the ring buffer has dropped at least one record."""
        return self.emitted > len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[dict]:
        """A snapshot of the retained records, oldest first."""
        return list(self._records)

    def counts(self) -> "Counter[str]":
        """Retained record count per record name (events and spans)."""
        return Counter(rec["name"] for rec in self._records)

    # -- emission ----------------------------------------------------------

    def _wall(self) -> float:
        return self._clock() - self._epoch

    def _append(self, record: dict) -> None:
        record["seq"] = self._seq
        self._seq += 1
        self.emitted += 1
        self._records.append(record)
        for tap in self._taps:
            tap(record)

    def add_tap(self, tap: "Callable[[dict], None]") -> None:
        """Register a callable invoked with every record as it is emitted.

        Taps see the final record dict (spans at close time) and must
        not mutate it.  The flight recorder registers itself this way.
        """
        self._taps.append(tap)

    @contextmanager
    def context(self, sid: "int | None"):
        """Mark ``sid`` as the causal parent of records emitted inside.

        Every event or span opened while the context is held gains a
        ``parent`` attribute (unless one was passed explicitly), so a
        cross-component chain — a cluster open driving shard-level
        submits, a shard failover driving heals — reads as one trace.
        ``sid=None`` is a transparent no-op, letting call sites skip
        ``if parent is not None`` guards.
        """
        if sid is None:
            yield
            return
        self._ctx.append(sid)
        try:
            yield
        finally:
            self._ctx.pop()

    def current_parent(self) -> "int | None":
        """The innermost :meth:`context` span id, or ``None``.

        Lets a component *capture* the causal parent at submission time
        and re-establish it later, when the deferred work actually runs
        (the serve layer does this for queued requests, so spans opened
        ticks later still parent to the cluster-level span that caused
        them).
        """
        return self._ctx[-1] if self._ctx else None

    def _parented(self, attrs: dict) -> dict:
        attrs = self._clean(attrs)
        if self._ctx and "parent" not in attrs:
            attrs["parent"] = self._ctx[-1]
        return attrs

    def event(self, name: str, t: "float | None" = None, **attrs: Any) -> None:
        """Record one instantaneous observation.

        ``t`` is the simulation time if the caller knows it; ``attrs``
        are free-form JSON-serializable attributes.
        """
        record = {"type": "event", "name": name, "t": t, "wall": self._wall()}
        record.update(self._parented(attrs))
        self._append(record)

    def span_open(self, name: str, t: "float | None" = None, **attrs: Any) -> int:
        """Begin a span; returns its id for :meth:`span_close`."""
        sid = self._next_sid
        self._next_sid += 1
        self._open_spans[sid] = {
            "type": "span",
            "name": name,
            "sid": sid,
            "t0": t,
            "t1": None,
            "wall0": self._wall(),
            "wall1": None,
            "status": "open",
            **self._parented(attrs),
        }
        return sid

    def span_close(
        self,
        sid: int,
        t: "float | None" = None,
        status: str = "ok",
        **attrs: Any,
    ) -> None:
        """End span ``sid``; unknown ids are ignored (already flushed)."""
        record = self._open_spans.pop(sid, None)
        if record is None:
            return
        record["t1"] = t
        record["wall1"] = self._wall()
        record["status"] = status
        record.update(self._clean(attrs))
        self._append(record)

    @contextmanager
    def span(self, name: str, t: "float | None" = None, **attrs: Any):
        """Lexical span: opens on entry, closes on exit (``error`` on raise)."""
        sid = self.span_open(name, t=t, **attrs)
        try:
            yield sid
        except BaseException:
            self.span_close(sid, t=t, status="error")
            raise
        self.span_close(sid, t=t, status="ok")

    @staticmethod
    def _clean(attrs: dict) -> dict:
        clash = _RESERVED.intersection(attrs)
        if clash:
            raise ValueError(f"attribute names collide with record schema: {sorted(clash)}")
        return attrs

    # -- export ------------------------------------------------------------

    def flush_open_spans(self, t: "float | None" = None) -> int:
        """Emit every still-open span with ``status="open"``.

        Called automatically by :meth:`write_jsonl`; returns how many
        spans were flushed.
        """
        flushed = 0
        for sid in sorted(self._open_spans):
            record = self._open_spans.pop(sid)
            record["t1"] = t
            record["wall1"] = self._wall()
            self._append(record)
            flushed += 1
        return flushed

    def write_jsonl(self, target: "str | TextIO") -> int:
        """Write the retained records as JSON Lines; returns the count.

        ``target`` is a path or an open text file.  Open spans are
        flushed first so the export is self-contained.
        """
        self.flush_open_spans()
        if hasattr(target, "write"):
            return self._dump(target)
        with open(target, "w") as fh:
            return self._dump(fh)

    def _dump(self, fh: TextIO) -> int:
        n = 0
        for record in self._records:
            fh.write(json.dumps(record, sort_keys=True, default=_jsonify))
            fh.write("\n")
            n += 1
        return n


def _jsonify(value: Any):
    """Fallback serializer: sets/tuples/frozensets become sorted lists."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"not JSON serializable: {value!r}")


class _NullTracer(Tracer):
    """A tracer that records nothing (for call sites that want to skip
    ``if tracer is not None`` guards).  Shared singleton: ``NULL_TRACER``."""

    def __init__(self):
        super().__init__(capacity=1)

    def _append(self, record: dict) -> None:  # pragma: no cover - trivial
        pass


NULL_TRACER = _NullTracer()
