"""Live exposition: a stdlib-only HTTP endpoint for metrics and SLOs.

:class:`ExpositionServer` runs a :class:`http.server.ThreadingHTTPServer`
on a daemon thread and serves three read-only views of a running
fabric:

* ``GET /metrics`` — the registry's Prometheus text exposition
  (``text/plain; version=0.0.4``), identical bytes to
  :meth:`MetricsRegistry.render_prometheus`.
* ``GET /healthz`` — a small JSON liveness document.  HTTP 200 while
  the SLO state is ``ok``/``warn``; 503 when an objective is paging,
  so load balancers can rotate a paging instance out.
* ``GET /slo`` — the evaluator's last evaluation as JSON (the same
  document :meth:`SLOEvaluator.to_json` writes).

The server is pure observer: it renders on demand in its own thread
and never writes into the fabric.  Renders race benignly with the
simulation thread mutating the registry — a concurrent-mutation
``RuntimeError`` is retried a few times, which is safe because both
sides only ever *add* series.  Bind ``port=0`` to let the OS pick a
free port (``server.port`` reports the real one) — the default in
tests and benches so parallel runs never collide.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.slo import SLOEvaluator

__all__ = ["ExpositionServer"]

#: Prometheus text exposition format version we emit.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ExpositionServer:
    """Serves ``/metrics``, ``/healthz`` and ``/slo`` for a live fabric."""

    def __init__(
        self,
        *,
        metrics: "MetricsRegistry | None" = None,
        slo: "SLOEvaluator | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._metrics = metrics
        self._slo = slo
        self._host = host
        self._port = int(port)
        self._httpd: "ThreadingHTTPServer | None" = None
        self._thread: "threading.Thread | None" = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ExpositionServer":
        """Bind and start serving on a daemon thread; returns ``self``."""
        if self._httpd is not None:
            raise RuntimeError("exposition server already started")
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-exposition",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ExpositionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the OS-assigned one)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    # -- rendering (called from handler threads) ---------------------------

    @staticmethod
    def _retry(render):
        # The simulation thread may be inserting a new series while we
        # iterate; both sides only add, so retrying is sound.
        for _ in range(8):
            try:
                return render()
            except RuntimeError:  # pragma: no cover - timing dependent
                continue
        return render()  # pragma: no cover - last try, raise for real

    def render_metrics(self) -> "tuple[int, str, str]":
        if self._metrics is None:
            return 404, "text/plain; charset=utf-8", "no metrics registry attached\n"
        body = self._retry(self._metrics.render_prometheus)
        return 200, PROMETHEUS_CONTENT_TYPE, body

    def render_slo(self) -> "tuple[int, str, str]":
        if self._slo is None:
            return 404, "application/json", json.dumps({"error": "no slo evaluator"})
        body = self._retry(self._slo.to_json)
        return 200, "application/json", body

    def render_healthz(self) -> "tuple[int, str, str]":
        state = self._slo.state if self._slo is not None else "ok"
        code = 503 if state == "page" else 200
        body = json.dumps(
            {"status": "failing" if state == "page" else "ok", "slo_state": state},
            sort_keys=True,
        )
        return code, "application/json", body


def _make_handler(server: ExpositionServer) -> type:
    class Handler(BaseHTTPRequestHandler):
        routes = {
            "/metrics": server.render_metrics,
            "/healthz": server.render_healthz,
            "/slo": server.render_slo,
        }

        def do_GET(self):  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0]
            render = self.routes.get(path)
            if render is None:
                code, ctype, body = 404, "text/plain; charset=utf-8", "not found\n"
            else:
                code, ctype, body = render()
            payload = body.encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def log_message(self, *args):  # pragma: no cover - silence stderr
            pass

    return Handler
