"""A labelled metrics registry with Prometheus-style exposition.

Zero-dependency counters, gauges, and histograms for the conference
switching stack.  The design goals mirror the tracer's:

* **Off by default, bit-transparent.**  Nothing records unless a
  registry is attached (or process-wide collection is enabled); metric
  emission never touches RNG streams or decisions, so instrumented and
  uninstrumented runs are byte-identical in their outputs.
* **Deterministic export.**  :meth:`MetricsRegistry.render_prometheus`
  and :meth:`MetricsRegistry.to_json` sort metric families and label
  sets, so equal registries render to equal bytes.
* **Deterministic merge.**  :meth:`MetricsRegistry.merge` folds a
  picklable :meth:`~MetricsRegistry.snapshot` from another process into
  this registry: counters and histograms add, gauges keep the maximum
  (peak semantics — the observed conflict multiplicity of a sharded
  sweep is the max over its workers).  The parallel runner merges
  worker snapshots in chunk-submission order, so the combined registry
  is identical for every worker count.

The module also keeps one **per-process default registry** behind an
enable flag, which is what the :func:`timed` profiling hook and the
experiment kernels write to when collection is on — worker processes
of the parallel engine flip the flag per chunk (see
``repro.parallel.runner``) and ship the delta back as a snapshot.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from functools import wraps
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "maybe_registry",
    "collection_enabled",
    "collecting",
    "timed",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_OCCUPANCY_BUCKETS",
]

LabelKey = tuple[tuple[str, str], ...]

#: Seconds buckets for the ``timed()`` histograms (route computations
#: run tens of microseconds to tens of milliseconds on laptop hardware).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Channel-count buckets for per-stage link-occupancy histograms
#: (loads are bounded by the dilation, at most ``n_ports``).
DEFAULT_OCCUPANCY_BUCKETS: tuple[float, ...] = (
    1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128, 256,
)


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Prometheus-friendly number formatting (ints stay ints)."""
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(key: LabelKey, extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


class _Metric:
    """Shared storage/plumbing of one metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        _check_name(name)
        self.name = name
        self.help = help
        self._series: dict[LabelKey, Any] = {}

    def labelsets(self) -> list[LabelKey]:
        """All label sets with recorded data, sorted."""
        return sorted(self._series)


def _check_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name cannot start with a digit: {name!r}")


class Counter(_Metric):
    """A monotonically increasing count, partitioned by labels."""

    kind = "counter"

    def inc(self, amount: "int | float" = 1, **labels: Any) -> None:
        """Add ``amount`` (>= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counters only go up (amount={amount})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> "int | float":
        """Current count of one labelled series (0 when never touched)."""
        return self._series.get(_label_key(labels), 0)


class Gauge(_Metric):
    """A point-in-time value; merges across processes by maximum."""

    kind = "gauge"

    def set(self, value: "int | float", **labels: Any) -> None:
        """Set the labelled series to ``value``."""
        self._series[_label_key(labels)] = value

    def set_max(self, value: "int | float", **labels: Any) -> None:
        """Raise the labelled series to ``value`` if it is higher."""
        key = _label_key(labels)
        current = self._series.get(key)
        if current is None or value > current:
            self._series[key] = value

    def inc(self, amount: "int | float" = 1, **labels: Any) -> None:
        """Shift the labelled series by ``amount`` (may be negative)."""
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> "int | float":
        """Current value of one labelled series (0 when never set)."""
        return self._series.get(_label_key(labels), 0)


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    Each labelled series keeps per-bucket counts plus ``sum`` and
    ``count``; bucket bounds are fixed at construction and must match
    for merges.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: "Sequence[float] | None" = None):
        super().__init__(name, help)
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_TIME_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets: tuple[float, ...] = bounds

    def observe(self, value: "int | float", **labels: Any) -> None:
        """Record one observation into the labelled series."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = {
                "counts": [0] * (len(self.buckets) + 1),  # +1 for +Inf
                "sum": 0.0,
                "count": 0,
            }
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        series["counts"][idx] += 1
        series["sum"] += value
        series["count"] += 1

    def count(self, **labels: Any) -> int:
        """Total observations of one labelled series."""
        series = self._series.get(_label_key(labels))
        return series["count"] if series else 0

    def sum(self, **labels: Any) -> float:
        """Sum of observations of one labelled series."""
        series = self._series.get(_label_key(labels))
        return series["sum"] if series else 0.0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metric families with deterministic export."""

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}

    # -- family accessors (get-or-create) ----------------------------------

    def _family(self, cls: type, name: str, help: str, **kwargs) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help, **kwargs)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter family ``name``."""
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge family ``name``."""
        return self._family(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: "Sequence[float] | None" = None
    ) -> Histogram:
        """Get or create the histogram family ``name``."""
        return self._family(Histogram, name, help, buckets=buckets)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[_Metric]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def get(self, name: str) -> "_Metric | None":
        """The metric family ``name``, or ``None``."""
        return self._metrics.get(name)

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict, picklable copy of every family and series.

        This is the wire format worker processes ship back to the
        reducer; :meth:`merge` consumes it.
        """
        out: dict = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            family: dict = {"kind": metric.kind, "help": metric.help, "series": {}}
            if isinstance(metric, Histogram):
                family["buckets"] = list(metric.buckets)
                for key, series in metric._series.items():
                    family["series"][key] = {
                        "counts": list(series["counts"]),
                        "sum": series["sum"],
                        "count": series["count"],
                    }
            else:
                family["series"] = dict(metric._series)
            out[name] = family
        return out

    def merge(self, other: "MetricsRegistry | dict") -> None:
        """Fold another registry (or a snapshot) into this one.

        Counters and histogram series add; gauges keep the maximum.
        Histogram merges require identical bucket bounds.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name in sorted(snap):
            family = snap[name]
            kind = family["kind"]
            if kind == "histogram":
                metric = self.histogram(name, family["help"], buckets=family["buckets"])
                if list(metric.buckets) != list(family["buckets"]):
                    raise ValueError(f"histogram {name!r} bucket mismatch in merge")
                for key, series in family["series"].items():
                    key = tuple(tuple(pair) for pair in key)
                    mine = metric._series.get(key)
                    if mine is None:
                        mine = metric._series[key] = {
                            "counts": [0] * (len(metric.buckets) + 1),
                            "sum": 0.0,
                            "count": 0,
                        }
                    mine["counts"] = [
                        a + b for a, b in zip(mine["counts"], series["counts"])
                    ]
                    mine["sum"] += series["sum"]
                    mine["count"] += series["count"]
            elif kind == "counter":
                metric = self.counter(name, family["help"])
                for key, value in family["series"].items():
                    key = tuple(tuple(pair) for pair in key)
                    metric._series[key] = metric._series.get(key, 0) + value
            elif kind == "gauge":
                metric = self.gauge(name, family["help"])
                for key, value in family["series"].items():
                    key = tuple(tuple(pair) for pair in key)
                    current = metric._series.get(key)
                    if current is None or value > current:
                        metric._series[key] = value
            else:  # pragma: no cover - snapshot() only emits known kinds
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")

    # -- exposition --------------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: list[str] = []
        for metric in self:
            if metric.help:
                lines.append(f"# HELP {metric.name} {_escape(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key in metric.labelsets():
                    series = metric._series[key]
                    cumulative = 0
                    for bound, count in zip(metric.buckets, series["counts"]):
                        cumulative += count
                        labels = _render_labels(key, (("le", _format_value(float(bound))),))
                        lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                    cumulative += series["counts"][-1]
                    labels = _render_labels(key, (("le", "+Inf"),))
                    lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                    base = _render_labels(key)
                    lines.append(f"{metric.name}_sum{base} {_format_value(float(series['sum']))}")
                    lines.append(f"{metric.name}_count{base} {series['count']}")
            else:
                for key in metric.labelsets():
                    value = metric._series[key]
                    lines.append(
                        f"{metric.name}{_render_labels(key)} {_format_value(float(value))}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, indent: "int | None" = None) -> str:
        """The snapshot as canonical JSON (label tuples become objects)."""
        snap = self.snapshot()
        for family in snap.values():
            family["series"] = [
                {"labels": dict(key), **(value if isinstance(value, dict) else {"value": value})}
                for key, value in sorted(family["series"].items())
            ]
        return json.dumps(snap, indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the registry to ``path``: JSON when it ends in
        ``.json``, Prometheus text exposition otherwise."""
        text = self.to_json(indent=2) if str(path).endswith(".json") else self.render_prometheus()
        with open(path, "w") as fh:
            fh.write(text)


# -- the per-process default registry ---------------------------------------

_process_registry = MetricsRegistry()
_collection_on = False


def default_registry() -> MetricsRegistry:
    """The process-wide registry behind :func:`timed` and the kernels."""
    return _process_registry


def collection_enabled() -> bool:
    """Whether the default registry currently accepts recordings."""
    return _collection_on


def maybe_registry() -> "MetricsRegistry | None":
    """The default registry iff collection is enabled, else ``None``.

    The one-line gate every opt-in instrumentation site uses::

        reg = maybe_registry()
        if reg is not None:
            reg.counter("repro_search_trials_total").inc()
    """
    return _process_registry if _collection_on else None


@contextmanager
def collecting(registry: "MetricsRegistry | None" = None):
    """Enable collection into ``registry`` (fresh by default) for a block.

    Swaps the process default registry, so recordings inside the block
    are isolated — the parallel runner uses exactly this to capture a
    per-chunk delta in each worker.  Restores the previous default (and
    enable flag) on exit.
    """
    global _process_registry, _collection_on
    saved_registry, saved_flag = _process_registry, _collection_on
    reg = registry if registry is not None else MetricsRegistry()
    _process_registry, _collection_on = reg, True
    try:
        yield reg
    finally:
        _process_registry, _collection_on = saved_registry, saved_flag


# -- the profiling hook ------------------------------------------------------


class timed:
    """Time a block or function into a ``<name>_seconds`` histogram.

    Usable both ways::

        with timed("repro_route_conference"):
            ...

        @timed("repro_randomized_search")
        def randomized_search(...): ...

    The registry is resolved *at entry time*: an explicit ``registry``
    wins, otherwise the process default is used when collection is
    enabled, otherwise the block runs untimed with near-zero overhead
    (one flag check).
    """

    __slots__ = ("name", "registry", "labels", "_hist", "_start")

    def __init__(self, name: str, registry: "MetricsRegistry | None" = None, **labels: Any):
        self.name = name
        self.registry = registry
        self.labels = labels
        self._hist: "Histogram | None" = None
        self._start = 0.0

    def __enter__(self) -> "timed":
        reg = self.registry if self.registry is not None else maybe_registry()
        if reg is not None:
            self._hist = reg.histogram(
                f"{self.name}_seconds",
                f"wall-clock seconds spent in {self.name}",
                buckets=DEFAULT_TIME_BUCKETS,
            )
            self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._hist is not None:
            self._hist.observe(time.perf_counter() - self._start, **self.labels)
            self._hist = None
        return False

    def __call__(self, fn):
        name, registry, labels = self.name, self.registry, self.labels

        @wraps(fn)
        def wrapper(*args, **kwargs):
            if registry is None and not _collection_on:
                return fn(*args, **kwargs)  # fast path: collection off
            with timed(name, registry, **labels):
                return fn(*args, **kwargs)

        return wrapper
