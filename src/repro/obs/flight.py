"""Flight recorder: a bounded ring of recent telemetry, dumped on incident.

A :class:`FlightRecorder` continuously retains the last ``capacity``
telemetry records — trace spans/events (via a :meth:`Tracer.add_tap`
tap), per-tick counter deltas (via :meth:`sample_metrics`), and SLO
state transitions — and, when something goes wrong, freezes that recent
history into a JSONL *incident bundle*: what the fabric was doing in
the moments before the breach, without having kept a full trace.

Dump triggers:

* a ``fault.fail`` event flowing through the trace tap (link failure);
* an SLO breach — the evaluator's breach hook calls :meth:`on_breach`
  on entry to the ``page`` state;
* an explicit :meth:`dump` call.

Dumps are debounced on the *virtual* clock (``min_gap`` ticks) so a
burst of correlated failures produces one bundle, not hundreds.  With
``out_dir`` set, bundles are written as ``incident-NNN.jsonl`` (oldest
rotated out beyond ``keep``); without it they are retained in memory on
:attr:`bundles` — which is also what the tests inspect.

Like every observability component here, the recorder draws no
randomness and never feeds back into routing decisions: attaching one
to a seeded run leaves every decision byte-identical (the transparency
suite enforces this).
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.obs.trace import _jsonify

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.slo import SLOEvaluator
    from repro.obs.trace import Tracer

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Rings recent telemetry; dumps a JSONL incident bundle on trouble.

    Parameters
    ----------
    capacity:
        Maximum records retained in the ring (oldest dropped first).
    out_dir:
        Directory for incident bundles; created on first dump.  ``None``
        keeps bundles in memory only.
    keep:
        Maximum bundle files kept in ``out_dir`` (oldest deleted).
    min_gap:
        Minimum virtual-time gap between dumps (debounce).
    auto_fault_dump:
        Dump automatically when a ``fault.fail`` event crosses the tap.
    """

    def __init__(
        self,
        *,
        capacity: int = 4096,
        out_dir: "str | None" = None,
        keep: int = 16,
        min_gap: float = 25.0,
        auto_fault_dump: bool = True,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self._ring: "deque[dict]" = deque(maxlen=capacity)
        self._out_dir = out_dir
        self._keep = int(keep)
        self._min_gap = float(min_gap)
        self._auto_fault_dump = bool(auto_fault_dump)
        self._metric_prev: "dict[tuple, float]" = {}
        self._last_dump_t: "float | None" = None
        self._slo: "SLOEvaluator | None" = None
        self.seen = 0  # every record ever offered, retained or not
        self.dumped = 0  # bundles produced (including debounced-to-disk ones)
        self.suppressed = 0  # dump triggers swallowed by the debounce
        self.bundles: list[dict] = []  # bundle metadata (plus records if in-memory)

    # -- wiring ------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Ring size; ``seen - len(ring)`` records have been truncated."""
        return self._ring.maxlen or 0

    @property
    def truncated(self) -> int:
        """How many records the ring has dropped oldest-first."""
        return max(0, self.seen - len(self._ring))

    def records(self) -> list[dict]:
        """A snapshot of the retained ring, oldest first."""
        return list(self._ring)

    def watch(self, tracer: "Tracer") -> "Tracer":
        """Tap ``tracer`` so every emitted record lands in the ring.

        Returns the tracer for chaining (``service = FabricService(
        tracer=flight.watch(Tracer()), ...)``).
        """
        tracer.add_tap(self.tap)
        return tracer

    def attach_slo(self, slo: "SLOEvaluator") -> None:
        """Register the breach hook and include SLO state in bundles."""
        self._slo = slo
        slo.add_breach_hook(self.on_breach)

    # -- ingestion ---------------------------------------------------------

    def _push(self, record: dict) -> None:
        self._ring.append(record)
        self.seen += 1

    def tap(self, record: dict) -> None:
        """Trace-tap entry point: ring the record, dump on ``fault.fail``."""
        self._push(record)
        if (
            self._auto_fault_dump
            and record.get("type") == "event"
            and record.get("name") == "fault.fail"
        ):
            self.dump(reason="fault.fail", now=record.get("t") or 0.0)

    def sample_metrics(self, registry: "MetricsRegistry", now: float) -> None:
        """Ring the counter deltas since the previous sample.

        Only counters are diffed (gauges/histograms are reconstructable
        from the registry itself); a tick with no movement rings
        nothing, so quiet fabrics don't churn the ring.  This runs every
        tick, so it walks the counter series in place rather than taking
        a full registry snapshot, and renders label strings only for the
        (few) series that actually moved.
        """
        from repro.obs.metrics import Counter

        deltas: "dict[str, float]" = {}
        current: "dict[tuple, float]" = {}
        for metric in registry:  # registry iteration is name-sorted
            if not isinstance(metric, Counter):
                continue
            for key, value in metric._series.items():
                ref = (metric.name, key)
                current[ref] = value
                delta = value - self._metric_prev.get(ref, 0.0)
                if delta:
                    label = (
                        metric.name
                        + "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"
                    )
                    deltas[label] = delta
        self._metric_prev = current
        if deltas:
            self._push({"type": "metrics", "t": now, "deltas": deltas})

    def note_slo(self, now: float, status: dict) -> None:
        """Ring an SLO state document (the evaluator's per-tick output)."""
        self._push({"type": "slo", "t": now, "state": status["state"],
                    "slos": {n: s["state"] for n, s in status["slos"].items()}})

    def on_breach(self, name: str, status: dict, now: float) -> None:
        """Breach hook for :meth:`SLOEvaluator.add_breach_hook`."""
        self._push({"type": "breach", "t": now, "slo": name, "status": status})
        self.dump(reason=f"slo:{name}", now=now)

    # -- dumping -----------------------------------------------------------

    def dump(
        self,
        *,
        reason: str,
        now: float,
        force: bool = False,
        extra: "dict[str, Any] | None" = None,
    ) -> "str | None":
        """Freeze the ring into an incident bundle.

        Returns the bundle path (or ``None`` when in-memory or
        debounced).  The bundle is JSONL: a header line identifying the
        incident, then every ringed record oldest-first, then the last
        SLO evaluation when an evaluator is attached.
        """
        if (
            not force
            and self._last_dump_t is not None
            and now - self._last_dump_t < self._min_gap
        ):
            self.suppressed += 1
            return None
        self._last_dump_t = now
        self.dumped += 1
        header = {
            "type": "incident",
            "id": self.dumped,
            "reason": reason,
            "t": now,
            "records": len(self._ring),
            "truncated": self.truncated,
        }
        if extra:
            header.update(extra)
        lines = [header, *self._ring]
        if self._slo is not None and self._slo.last is not None:
            lines.append({"type": "slo", "t": now, **self._slo.last})
        meta = {"id": self.dumped, "reason": reason, "t": now, "path": None}
        if self._out_dir is None:
            meta["lines"] = [dict(line) for line in lines]
        else:
            os.makedirs(self._out_dir, exist_ok=True)
            path = os.path.join(self._out_dir, f"incident-{self.dumped:03d}.jsonl")
            with open(path, "w") as fh:
                for line in lines:
                    fh.write(json.dumps(line, sort_keys=True, default=_jsonify))
                    fh.write("\n")
            meta["path"] = path
            self._rotate()
        self.bundles.append(meta)
        return meta["path"]

    def _rotate(self) -> None:
        if self._out_dir is None:
            return
        names = sorted(
            n for n in os.listdir(self._out_dir)
            if n.startswith("incident-") and n.endswith(".jsonl")
        )
        for stale in names[: max(0, len(names) - self._keep)]:
            os.remove(os.path.join(self._out_dir, stale))
