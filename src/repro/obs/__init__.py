"""Observability: tracing, metrics, SLOs, flight recording, exposition.

Everything in this package is zero-dependency, off by default, and
**bit-transparent**: attaching a :class:`~repro.obs.trace.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry`, an
:class:`~repro.obs.slo.SLOEvaluator` or a
:class:`~repro.obs.flight.FlightRecorder` to any component changes no
routing or admission decision and touches no RNG stream — the
transparency suite under ``tests/obs`` holds instrumented and plain
runs byte-equal.

Entry points:

* :class:`Tracer` — ring-buffered span/event records with simulation
  and wall clocks, exported as JSON Lines (``conference-net trace``,
  ``--trace-out``); supports taps and causal parent contexts.
* :class:`MetricsRegistry` — labelled counters/gauges/histograms with
  Prometheus text and JSON exposition plus a deterministic cross-process
  merge (``--metrics-out``; merged by the parallel runner).
* :class:`SLOEvaluator` / :class:`SLOSpec` — declarative objectives
  with error budgets, streaming windowed percentiles and multi-window
  burn-rate alert states (``--slo-out``, ``conference-net slo``).
* :class:`FlightRecorder` — a bounded ring of recent spans, events and
  metric deltas, frozen into a JSONL incident bundle on SLO breach or
  ``fault.fail`` (``--flight-out``).
* :class:`ExpositionServer` — a stdlib HTTP thread serving
  ``/metrics``, ``/healthz`` and ``/slo`` for a live fabric
  (``--listen``).
* :func:`timed` — context manager / decorator feeding ``*_seconds``
  histograms; installed on the hot routing paths and enabled per
  process via :func:`collecting`.
"""

from repro.obs.export import ExpositionServer
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    DEFAULT_OCCUPANCY_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting,
    collection_enabled,
    default_registry,
    maybe_registry,
    timed,
)
from repro.obs.slo import (
    BurnWindow,
    SLOEvaluator,
    SLOSpec,
    WindowedHistogram,
    default_serve_slos,
    log_bucket_edges,
)
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = [
    "BurnWindow",
    "Counter",
    "DEFAULT_OCCUPANCY_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "ExpositionServer",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "SLOEvaluator",
    "SLOSpec",
    "Tracer",
    "WindowedHistogram",
    "collecting",
    "collection_enabled",
    "default_registry",
    "default_serve_slos",
    "log_bucket_edges",
    "maybe_registry",
    "timed",
]
