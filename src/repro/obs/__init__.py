"""Observability: structured tracing, metrics, and profiling hooks.

Everything in this package is zero-dependency, off by default, and
**bit-transparent**: attaching a :class:`~repro.obs.trace.Tracer` or a
:class:`~repro.obs.metrics.MetricsRegistry` to any component changes no
routing or admission decision and touches no RNG stream — the
transparency suite under ``tests/obs`` holds instrumented and plain
runs byte-equal.

Entry points:

* :class:`Tracer` — ring-buffered span/event records with simulation
  and wall clocks, exported as JSON Lines (``conference-net trace``,
  ``--trace-out``).
* :class:`MetricsRegistry` — labelled counters/gauges/histograms with
  Prometheus text and JSON exposition plus a deterministic cross-process
  merge (``--metrics-out``; merged by the parallel runner).
* :func:`timed` — context manager / decorator feeding ``*_seconds``
  histograms; installed on the hot routing paths and enabled per
  process via :func:`collecting`.
"""

from repro.obs.metrics import (
    DEFAULT_OCCUPANCY_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting,
    collection_enabled,
    default_registry,
    maybe_registry,
    timed,
)
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = [
    "Counter",
    "DEFAULT_OCCUPANCY_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "Tracer",
    "collecting",
    "collection_enabled",
    "default_registry",
    "maybe_registry",
    "timed",
]
