"""Command-line interface: ``conference-net`` / ``python -m repro``.

Subcommands regenerate the experiments from DESIGN.md's index and offer
quick interactive inspection of networks and conference routings::

    conference-net show --topology omega --ports 16
    conference-net route --topology indirect-binary-cube --ports 16 \
        --conference 0,5,9 --conference 12,13
    conference-net worstcase --ports 16
    conference-net cost --ports 16,64,256
    conference-net blocking --topology omega --ports 64 --dilations 1,2,4,8
    conference-net schedule --ports 32 --load 0.8
    conference-net faults --ports 32 --count 4 --no-relay
    conference-net availability --topology extra-stage-cube --ports 32
    conference-net sweep --ports 64 --trials 200 --workers 4
    conference-net trace --ports 16 --out trace.jsonl
    conference-net serve --ports 32 --load 0.5
    conference-net bench-serve --ports 64 --conferences 500 --faults
    conference-net cluster --ports 16 --shards 4 --kill-at 10 --add-at 30
    conference-net bench-cluster --ports 16 --shards 4 --invariant-json inv.json
    conference-net slo --ports 32 --faults --json slo.json

Observability: ``availability``, ``faults``, and ``sweep`` accept
``--trace-out``/``--metrics-out`` to export a JSONL event trace and a
Prometheus (or JSON) metrics dump alongside their normal output; the
``trace`` subcommand runs a live fault-injection scenario purely to
produce those artifacts.  The long-running commands (``serve``,
``bench-serve``, ``cluster``, ``bench-cluster``, ``slo``) additionally
take ``--slo-out`` (per-tick SLO evaluation with burn-rate alerts),
``--flight-out`` (flight-recorder incident bundles), and ``--listen``
(a live ``/metrics`` / ``/healthz`` / ``/slo`` HTTP endpoint).
Telemetry is pure observation — results are byte-identical with and
without the flags.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.cost import cost_table
from repro.analysis.resilience import (
    availability_over_time,
    random_link_faults,
    retry_ablation,
    survivability,
)
from repro.core.churn import ChurnPolicy
from repro.core.healing import RetryPolicy
from repro.analysis.scheduling import schedule_slots
from repro.analysis.theory import stage_profile_law
from repro.analysis.worstcase import (
    cube_adversarial_set,
    matching_stage_profile,
)
from repro.core.network import ConferenceNetwork
from repro.obs import MetricsRegistry, Tracer, collecting
from repro.perfmodel import PerfModelConfig
from repro.report.ascii import render_network, render_routes, render_stage_profile
from repro.report.serialize import result_to_dict, save_json
from repro.report.tables import render_table
from repro.core.routing import route_conference
from repro.serve.backpressure import ShedPolicy
from repro.sim.scenarios import blocking_vs_dilation
from repro.topology.builders import PAPER_TOPOLOGIES, TOPOLOGY_BUILDERS, build
from repro.workloads.generators import uniform_partition

__all__ = ["main", "build_parser"]


def _ports_list(text: str) -> list[int]:
    return [int(x) for x in text.split(",") if x]


def _floats_list(text: str) -> list[float]:
    return [float(x) for x in text.split(",") if x]


def _version() -> str:
    """Package version: installed metadata first, source tree fallback."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        import repro

        return getattr(repro, "__version__", "unknown")


def _add_telemetry_flags(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a JSONL event/span trace of the run (pure observation)",
    )
    cmd.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write collected metrics (Prometheus text; JSON when PATH ends in .json)",
    )


def _add_churn_flags(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--churn",
        default="incremental",
        choices=("incremental", "full"),
        help="membership-change engine: grow/shrink routes in place "
        "(incremental) or recompute from scratch on every change (full)",
    )
    cmd.add_argument(
        "--drift-limit",
        type=int,
        default=None,
        metavar="LINKS",
        help="conflict-multiplicity drift (extra links vs a from-scratch "
        "route) above which an incremental change falls back to a full "
        "reroute (default: never)",
    )


def _churn_policy(args: argparse.Namespace) -> ChurnPolicy:
    return ChurnPolicy(
        incremental=args.churn == "incremental",
        drift_limit=args.drift_limit,
    )


def _add_perf_flags(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--capacity-model",
        default="abstract",
        choices=("abstract", "buffered"),
        help="link-capacity model: the admission ledger's dilation bound "
        "(abstract) or a per-tick cycle-level wormhole simulation of the "
        "live routes (buffered; pure observation, decisions unchanged)",
    )
    cmd.add_argument(
        "--lanes",
        type=int,
        default=1,
        metavar="L",
        help="buffered model: lanes per inter-stage link (default 1)",
    )
    cmd.add_argument(
        "--buffer-depth",
        type=int,
        default=4,
        metavar="FLITS",
        help="buffered model: per-lane FIFO depth in flits (default 4)",
    )
    cmd.add_argument(
        "--flits",
        type=int,
        default=4,
        metavar="F",
        help="buffered model: flits per packet (default 4)",
    )
    cmd.add_argument(
        "--tdm",
        action="store_true",
        help="buffered model: drive lane/slot assignment from the "
        "conflict colouring's TDM frame instead of space-division lanes",
    )
    cmd.add_argument(
        "--cycles-per-tick",
        type=int,
        default=64,
        metavar="N",
        help="buffered model: fabric cycles simulated per service tick "
        "(default 64)",
    )


def _perf_config(args: argparse.Namespace) -> "PerfModelConfig | None":
    if args.capacity_model != "buffered":
        return None
    return PerfModelConfig(
        lanes=args.lanes,
        buffer_depth=args.buffer_depth,
        flits_per_packet=args.flits,
        tdm=args.tdm,
        cycles_per_tick=args.cycles_per_tick,
    )


def _telemetry(args: argparse.Namespace) -> "tuple[Tracer | None, MetricsRegistry | None]":
    # The flight recorder rides the tracer's tap, and the exposition
    # endpoint needs a registry to scrape — both imply the collector
    # even when no --trace-out/--metrics-out file was asked for.
    wants_trace = getattr(args, "trace_out", None) or getattr(args, "flight_out", None)
    wants_metrics = getattr(args, "metrics_out", None) or getattr(args, "listen", None)
    tracer = Tracer() if wants_trace else None
    registry = MetricsRegistry() if wants_metrics else None
    return tracer, registry


def _write_telemetry(
    args: argparse.Namespace,
    tracer: "Tracer | None",
    registry: "MetricsRegistry | None",
) -> None:
    if tracer is not None and getattr(args, "trace_out", None):
        n = tracer.write_jsonl(args.trace_out)
        suffix = " (ring buffer truncated)" if tracer.truncated else ""
        print(f"trace: {n} records -> {args.trace_out}{suffix}")
    if registry is not None and getattr(args, "metrics_out", None):
        registry.write(args.metrics_out)
        print(f"metrics: {len(registry)} families -> {args.metrics_out}")


def _add_live_obs_flags(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--slo-out",
        metavar="PATH",
        help="evaluate the default SLO set every tick and write the final "
        "/slo status document (JSON) here",
    )
    cmd.add_argument(
        "--flight-out",
        metavar="DIR",
        help="arm the flight recorder: recent spans/events/metric deltas "
        "ring in memory and dump as a JSONL incident bundle into DIR on an "
        "SLO page or a link fault",
    )
    cmd.add_argument(
        "--listen",
        metavar="[HOST]:PORT",
        help="serve /metrics, /healthz and /slo over HTTP for the duration "
        "of the run (':0' picks a free port)",
    )
    cmd.add_argument(
        "--listen-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the exposition endpoint up this long after the run "
        "settles (for scrapes of the final state)",
    )


def _live_obs(args: argparse.Namespace, tracer: "Tracer | None"):
    """Build the (slo, flight) pair the live-health flags ask for.

    Observation only: both stay ``None`` unless requested, and the
    service layers gate every touch point on that — results are
    byte-identical with and without the flags.
    """
    slo = flight = None
    if (
        getattr(args, "slo_out", None)
        or getattr(args, "listen", None)
        or getattr(args, "flight_out", None)
    ):
        from repro.obs import SLOEvaluator

        slo = SLOEvaluator()
    if getattr(args, "flight_out", None):
        from repro.obs import FlightRecorder

        flight = FlightRecorder(out_dir=args.flight_out)
        if tracer is not None:
            flight.watch(tracer)
        if slo is not None:
            flight.attach_slo(slo)
    return slo, flight


def _exposition(args: argparse.Namespace, registry, slo):
    """Start the scrape endpoint when ``--listen`` asks for one."""
    spec = getattr(args, "listen", None)
    if not spec:
        return None
    from repro.obs import ExpositionServer

    host, _, port = str(spec).rpartition(":")
    server = ExpositionServer(
        metrics=registry, slo=slo, host=host or "127.0.0.1", port=int(port or 0)
    ).start()
    print(f"exposition: {server.url} (/metrics /healthz /slo)")
    return server


def _finish_live_obs(args: argparse.Namespace, slo, flight, server) -> None:
    import time as _time

    if slo is not None and getattr(args, "slo_out", None):
        slo.write(args.slo_out)
        print(f"slo: state {slo.state} -> {args.slo_out}")
    if flight is not None:
        print(
            f"flight: {flight.dumped} incident bundle(s) -> {args.flight_out} "
            f"({flight.seen} records seen, {flight.suppressed} dumps debounced)"
        )
    if server is not None:
        linger = getattr(args, "listen_linger", 0.0) or 0.0
        if linger > 0:
            print(f"exposition: lingering {linger:g}s at {server.url}")
            _time.sleep(linger)
        server.stop()


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="conference-net",
        description="Multistage conference switching networks (ICPP 2002 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="render a topology's wiring")
    show.add_argument("--topology", default="indirect-binary-cube", choices=sorted(TOPOLOGY_BUILDERS))
    show.add_argument("--ports", type=int, default=16)

    route = sub.add_parser("route", help="route conferences and show link occupancy")
    route.add_argument("--topology", default="indirect-binary-cube", choices=sorted(TOPOLOGY_BUILDERS))
    route.add_argument("--ports", type=int, default=16)
    route.add_argument(
        "--conference",
        action="append",
        required=True,
        metavar="P0,P1,...",
        help="comma-separated member ports; repeat per conference",
    )
    route.add_argument("--no-relay", action="store_true", help="disable the output-mux relay")

    worst = sub.add_parser("worstcase", help="per-stage worst-case multiplicity per topology")
    worst.add_argument("--ports", type=int, default=16)

    cost = sub.add_parser("cost", help="hardware cost comparison table")
    cost.add_argument("--ports", type=_ports_list, default=[16, 64, 256], metavar="N1,N2,...")

    blocking = sub.add_parser("blocking", help="blocking probability vs link dilation")
    blocking.add_argument("--topology", default="omega", choices=sorted(TOPOLOGY_BUILDERS))
    blocking.add_argument("--ports", type=int, default=64)
    blocking.add_argument("--dilations", type=_ports_list, default=[1, 2, 4, 8], metavar="D1,D2,...")
    blocking.add_argument("--duration", type=float, default=1000.0)
    blocking.add_argument("--seed", type=int, default=0)

    schedule = sub.add_parser(
        "schedule", help="TDM slot assignment for a random conference set"
    )
    schedule.add_argument("--topology", default="indirect-binary-cube", choices=sorted(TOPOLOGY_BUILDERS))
    schedule.add_argument("--ports", type=int, default=32)
    schedule.add_argument("--load", type=float, default=0.8)
    schedule.add_argument("--seed", type=int, default=0)

    faults = sub.add_parser(
        "faults", help="conference survivability under random link faults"
    )
    faults.add_argument("--topology", default="indirect-binary-cube", choices=sorted(TOPOLOGY_BUILDERS))
    faults.add_argument("--ports", type=int, default=32)
    faults.add_argument("--count", type=int, default=4, help="number of dead links")
    faults.add_argument("--load", type=float, default=0.6)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument(
        "--relay",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="evaluate only with (--relay) or without (--no-relay) the mux relay; default: both",
    )
    faults.add_argument(
        "--include-injections",
        action="store_true",
        help="let level-0 input wires fail too (members cut off entirely)",
    )
    _add_telemetry_flags(faults)

    avail = sub.add_parser(
        "availability",
        help="live fault injection: availability over time with self-healing",
    )
    avail.add_argument("--topology", default="extra-stage-cube", choices=sorted(TOPOLOGY_BUILDERS))
    avail.add_argument("--ports", type=int, default=32)
    avail.add_argument("--duration", type=float, default=1500.0)
    avail.add_argument("--mttf", type=float, default=1500.0, help="mean time to failure per link")
    avail.add_argument("--mttr", type=float, default=30.0, help="mean time to repair per link")
    avail.add_argument("--load", type=float, default=0.6, help="steady population port load")
    avail.add_argument("--retries", type=int, default=10, help="retry budget (0 disables retries)")
    avail.add_argument(
        "--protection", type=int, default=0, metavar="F",
        help="backup plans per conference (0 = reactive reroute only)",
    )
    avail.add_argument("--seed", type=int, default=0)
    avail.add_argument(
        "--traffic",
        action="store_true",
        help="also run the stochastic-traffic retry ablation (slower)",
    )
    _add_telemetry_flags(avail)

    sweep = sub.add_parser(
        "sweep",
        help="sharded Monte Carlo sweep on the parallel experiment engine",
    )
    sweep.add_argument(
        "--experiment",
        default="random-load",
        choices=("random-load", "worstcase"),
        help="random-load: F1-style dilation sweep; worstcase: randomized search",
    )
    sweep.add_argument("--topology", default="indirect-binary-cube", choices=sorted(TOPOLOGY_BUILDERS))
    sweep.add_argument("--ports", type=int, default=64)
    sweep.add_argument("--trials", type=int, default=100)
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool width; omit for the in-process serial engine "
        "(results are identical either way)",
    )
    sweep.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="trials per submitted batch (result-invariant; default ~4 chunks/worker)",
    )
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--loads",
        type=_floats_list,
        default=[0.25, 0.5, 0.75, 1.0],
        metavar="L1,L2,...",
        help="offered loads for the random-load sweep",
    )
    sweep.add_argument(
        "--workload",
        default="uniform",
        choices=("uniform", "clustered", "interleaved"),
    )
    sweep.add_argument("--pool-size", type=int, default=64, help="worstcase: pairs seeded per trial")
    sweep.add_argument("--json", metavar="PATH", help="also write the full records as JSON")
    _add_telemetry_flags(sweep)

    trace = sub.add_parser(
        "trace",
        help="run a live fault-injection scenario and export its trace/metrics",
    )
    trace.add_argument("--topology", default="extra-stage-cube", choices=sorted(TOPOLOGY_BUILDERS))
    trace.add_argument("--ports", type=int, default=16)
    trace.add_argument("--dilation", type=int, default=4)
    trace.add_argument("--duration", type=float, default=300.0)
    trace.add_argument("--mttf", type=float, default=200.0, help="mean time to failure per link")
    trace.add_argument("--mttr", type=float, default=10.0, help="mean time to repair per link")
    trace.add_argument("--retries", type=int, default=5, help="retry budget (0 disables retries)")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--capacity", type=int, default=65536, help="trace ring-buffer capacity (records)"
    )
    trace.add_argument("--out", metavar="PATH", help="write the trace as JSON Lines")
    trace.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write collected metrics (Prometheus text; JSON when PATH ends in .json)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the online conference service (asyncio facade) over a demo workload",
    )
    serve.add_argument("--topology", default="indirect-binary-cube", choices=sorted(TOPOLOGY_BUILDERS))
    serve.add_argument("--ports", type=int, default=32)
    serve.add_argument("--dilation", type=int, default=4)
    serve.add_argument("--load", type=float, default=0.5, help="port load of the demo workload")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--retries", type=int, default=5, help="retry budget (0 disables retries)")
    serve.add_argument(
        "--protection", type=int, default=0, metavar="F",
        help="backup plans per conference (0 = reactive reroute only)",
    )
    serve.add_argument("--queue-capacity", type=int, default=256)
    serve.add_argument(
        "--shed-policy",
        default="reject-newest",
        choices=sorted(p.value for p in ShedPolicy),
    )
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument("--json", metavar="PATH", help="write every response as JSON (shared result schema)")
    _add_churn_flags(serve)
    _add_perf_flags(serve)
    _add_telemetry_flags(serve)
    _add_live_obs_flags(serve)

    bench_serve = sub.add_parser(
        "bench-serve",
        help="seeded churn benchmark of the conference service",
    )
    bench_serve.add_argument("--topology", default="indirect-binary-cube", choices=sorted(TOPOLOGY_BUILDERS))
    bench_serve.add_argument("--ports", type=int, default=64)
    bench_serve.add_argument("--dilation", type=int, default=4)
    bench_serve.add_argument("--conferences", type=int, default=500)
    bench_serve.add_argument("--seed", type=int, default=0)
    bench_serve.add_argument("--arrival-rate", type=float, default=4.0, help="mean conference opens per tick")
    bench_serve.add_argument("--mean-size", type=float, default=4.0, help="mean conference size (ports)")
    bench_serve.add_argument("--mean-hold", type=float, default=20.0, help="mean session lifetime (ticks)")
    bench_serve.add_argument("--resize-prob", type=float, default=0.2, help="per-tick chance of one join/leave")
    bench_serve.add_argument("--queue-capacity", type=int, default=256)
    bench_serve.add_argument(
        "--shed-policy",
        default="reject-newest",
        choices=sorted(p.value for p in ShedPolicy),
    )
    bench_serve.add_argument("--max-batch", type=int, default=64)
    bench_serve.add_argument("--retries", type=int, default=5, help="retry budget (0 disables retries)")
    bench_serve.add_argument(
        "--protection", type=int, default=0, metavar="F",
        help="backup plans per conference (0 = reactive reroute only)",
    )
    bench_serve.add_argument(
        "--faults",
        action="store_true",
        help="fire a seeded fault timeline underneath the workload",
    )
    bench_serve.add_argument("--mttf", type=float, default=400.0, help="mean time to failure per link")
    bench_serve.add_argument("--mttr", type=float, default=5.0, help="mean time to repair per link")
    bench_serve.add_argument(
        "--route-cache", action="store_true", help="memoize routing through a RouteCache"
    )
    bench_serve.add_argument("--json", metavar="PATH", help="write the report as JSON (shared result schema)")
    _add_churn_flags(bench_serve)
    _add_perf_flags(bench_serve)
    _add_telemetry_flags(bench_serve)
    _add_live_obs_flags(bench_serve)

    cluster = sub.add_parser(
        "cluster",
        help="sharded multi-fabric drill: failover and elastic scale-up",
    )
    cluster.add_argument("--topology", default="indirect-binary-cube", choices=sorted(TOPOLOGY_BUILDERS))
    cluster.add_argument("--ports", type=int, default=16, help="ports per shard fabric")
    cluster.add_argument("--shards", type=int, default=4)
    cluster.add_argument("--conferences", type=int, default=120)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--arrival-rate", type=float, default=4.0, help="mean conference opens per tick")
    cluster.add_argument("--mean-hold", type=float, default=20.0, help="mean session lifetime (ticks)")
    cluster.add_argument("--resize-prob", type=float, default=0.2, help="per-tick chance of one join/leave")
    cluster.add_argument(
        "--kill-at", type=int, default=10, metavar="TICK",
        help="fail the busiest shard at this tick (negative disables)",
    )
    cluster.add_argument(
        "--add-at", type=int, default=30, metavar="TICK",
        help="scale a fresh shard in at this tick (negative disables)",
    )
    cluster.add_argument(
        "--faults",
        action="store_true",
        help="also fire seeded per-shard link-fault timelines underneath",
    )
    cluster.add_argument("--mttf", type=float, default=400.0, help="mean time to failure per link")
    cluster.add_argument("--mttr", type=float, default=5.0, help="mean time to repair per link")
    cluster.add_argument("--retries", type=int, default=5, help="retry budget (0 disables retries)")
    cluster.add_argument(
        "--protection", type=int, default=0, metavar="F",
        help="backup plans per conference on every shard (0 = reactive)",
    )
    cluster.add_argument("--migration-budget", type=int, default=8, help="moves started per tick")
    cluster.add_argument("--json", metavar="PATH", help="write the report as JSON (shared result schema)")
    _add_churn_flags(cluster)
    _add_perf_flags(cluster)
    _add_telemetry_flags(cluster)
    _add_live_obs_flags(cluster)

    bench_cluster = sub.add_parser(
        "bench-cluster",
        help="seeded churn benchmark of the cluster (shard-count-invariant metrics)",
    )
    bench_cluster.add_argument("--topology", default="indirect-binary-cube", choices=sorted(TOPOLOGY_BUILDERS))
    bench_cluster.add_argument("--ports", type=int, default=16, help="ports per shard fabric")
    bench_cluster.add_argument("--shards", type=int, default=2)
    bench_cluster.add_argument(
        "--dilation", type=int, default=None,
        help="links per stage hop (default: one per port, so capacity never denies)",
    )
    bench_cluster.add_argument("--conferences", type=int, default=200)
    bench_cluster.add_argument("--seed", type=int, default=0)
    bench_cluster.add_argument("--arrival-rate", type=float, default=4.0, help="mean conference opens per tick")
    bench_cluster.add_argument("--mean-size", type=float, default=4.0, help="mean conference size (ports)")
    bench_cluster.add_argument("--mean-hold", type=float, default=20.0, help="mean session lifetime (ticks)")
    bench_cluster.add_argument("--resize-prob", type=float, default=0.2, help="per-tick chance of one join/leave")
    bench_cluster.add_argument("--queue-capacity", type=int, default=256)
    bench_cluster.add_argument(
        "--shed-policy",
        default="reject-newest",
        choices=sorted(p.value for p in ShedPolicy),
    )
    bench_cluster.add_argument("--max-batch", type=int, default=256)
    bench_cluster.add_argument("--retries", type=int, default=0, help="retry budget (0 disables retries)")
    bench_cluster.add_argument(
        "--protection", type=int, default=0, metavar="F",
        help="backup plans per conference on every shard (0 = reactive)",
    )
    bench_cluster.add_argument("--migration-budget", type=int, default=8, help="moves started per tick")
    bench_cluster.add_argument("--json", metavar="PATH", help="write the full report as JSON (shared result schema)")
    bench_cluster.add_argument(
        "--invariant-json",
        metavar="PATH",
        help="write the shard-count-invariant metrics as JSON (byte-identical "
        "for a fixed seed across shard counts; the determinism CI job cmp's these)",
    )
    _add_churn_flags(bench_cluster)
    _add_perf_flags(bench_cluster)
    _add_telemetry_flags(bench_cluster)
    _add_live_obs_flags(bench_cluster)

    slo_cmd = sub.add_parser(
        "slo",
        help="run a seeded churn drill and report live SLO health "
        "(burn rates, percentiles, incident bundles)",
    )
    slo_cmd.add_argument("--topology", default="indirect-binary-cube", choices=sorted(TOPOLOGY_BUILDERS))
    slo_cmd.add_argument("--ports", type=int, default=32)
    slo_cmd.add_argument("--dilation", type=int, default=4)
    slo_cmd.add_argument("--conferences", type=int, default=200)
    slo_cmd.add_argument("--seed", type=int, default=0)
    slo_cmd.add_argument("--arrival-rate", type=float, default=4.0, help="mean conference opens per tick")
    slo_cmd.add_argument("--mean-size", type=float, default=4.0, help="mean conference size (ports)")
    slo_cmd.add_argument("--mean-hold", type=float, default=20.0, help="mean session lifetime (ticks)")
    slo_cmd.add_argument("--resize-prob", type=float, default=0.2, help="per-tick chance of one join/leave")
    slo_cmd.add_argument("--queue-capacity", type=int, default=256)
    slo_cmd.add_argument("--retries", type=int, default=5, help="retry budget (0 disables retries)")
    slo_cmd.add_argument(
        "--protection", type=int, default=0, metavar="F",
        help="backup plans per conference (0 = reactive reroute only)",
    )
    slo_cmd.add_argument(
        "--faults",
        action="store_true",
        help="fire a seeded fault timeline underneath the workload",
    )
    slo_cmd.add_argument("--mttf", type=float, default=400.0, help="mean time to failure per link")
    slo_cmd.add_argument("--mttr", type=float, default=5.0, help="mean time to repair per link")
    slo_cmd.add_argument("--json", metavar="PATH", help="write the SLO report as JSON (shared result schema)")
    _add_telemetry_flags(slo_cmd)
    _add_live_obs_flags(slo_cmd)
    return parser


def _cmd_show(args: argparse.Namespace) -> int:
    print(render_network(build(args.topology, args.ports)))
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    groups = [_ports_list(spec) for spec in args.conference]
    network = ConferenceNetwork.build(
        args.topology,
        args.ports,
        dilation=args.ports,  # generous so inspection never trips capacity
        relay_enabled=not args.no_relay,
    )
    result = network.realize(groups)
    print(render_routes(network.topology, result.routes))
    print()
    print(result.conflicts.describe())
    print("delivery:", "correct" if result.ok else f"BROKEN: {result.delivery.errors}")
    return 0 if result.ok else 1


def _cmd_worstcase(args: argparse.Namespace) -> int:
    n = args.ports.bit_length() - 1
    profiles: dict[str, Sequence[int]] = {}
    for name in PAPER_TOPOLOGIES:
        profiles[f"{name} (measured)"] = matching_stage_profile(build(name, args.ports))
    profiles["cube/baseline law"] = stage_profile_law(n)
    profiles["omega upper bound"] = stage_profile_law(n, topology="omega")
    print(render_stage_profile(profiles, title=f"worst-case multiplicity per link level, N={args.ports}"))
    adv = cube_adversarial_set(args.ports)
    print(f"\ncube adversarial witness (level {n // 2}): "
          f"{[list(c.members) for c in adv]}")
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    rows = [c.row() for c in cost_table(args.ports)]
    print(render_table(rows, title="hardware cost comparison (gate-equivalents)"))
    return 0


def _cmd_blocking(args: argparse.Namespace) -> int:
    rows = blocking_vs_dilation(
        args.topology, args.ports, args.dilations, duration=args.duration, seed=args.seed
    )
    print(render_table(rows, title=f"blocking vs dilation ({args.topology}, N={args.ports})"))
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    net = build(args.topology, args.ports)
    workload = uniform_partition(args.ports, load=args.load, seed=args.seed)
    routes = [route_conference(net, conf) for conf in workload]
    result = schedule_slots(routes)
    rows = [
        {
            "slot": slot,
            "conferences": " ".join(
                str(list(conf.members))
                for conf in workload
                if result.slots[conf.conference_id] == slot
            ),
        }
        for slot in range(result.n_slots)
    ]
    print(render_table(rows, title=f"TDM schedule ({args.topology}, N={args.ports})"))
    print(
        f"\n{len(workload)} conferences -> {result.n_slots} slots "
        f"(required dilation {result.clique_bound}; "
        f"{'optimal' if result.optimal else 'gap ' + str(result.n_slots - result.clique_bound)})"
    )
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    net = build(args.topology, args.ports)
    workload = uniform_partition(args.ports, load=args.load, seed=args.seed)
    dead = random_link_faults(
        net, args.count, seed=args.seed, include_injections=args.include_injections
    )
    variants = (True, False) if args.relay is None else (args.relay,)
    tracer, registry = _telemetry(args)
    rows = []
    # Collection on means the timed() hook on route_conference records
    # per-route latency histograms while the survivability scan runs.
    with collecting(registry) if registry is not None else nullcontext():
        for relay in variants:
            rep = survivability(net, list(workload), dead, relay_enabled=relay)
            if tracer is not None:
                tracer.event(
                    "experiment.survivability",
                    topology=args.topology,
                    relay="on" if relay else "off",
                    conferences=rep.n_conferences,
                    survived=rep.routed,
                    dead_links=len(dead),
                )
            rows.append(
                {
                    "relay": "on" if relay else "off",
                    "conferences": rep.n_conferences,
                    "survive": rep.routed,
                    "survival_rate": rep.survival_rate,
                }
            )
    print(f"dead links: {sorted(dead)}")
    print(render_table(rows, title=f"survivability ({args.topology}, N={args.ports})"))
    _write_telemetry(args, tracer, registry)
    return 0


def _cmd_availability(args: argparse.Namespace) -> int:
    from repro.sim.faults import FaultProcessConfig

    process = FaultProcessConfig(
        mean_time_to_failure=args.mttf, mean_time_to_repair=args.mttr
    )
    retry = (
        RetryPolicy(max_retries=args.retries, base_delay=1.0, max_delay=2 * args.mttr)
        if args.retries > 0
        else None
    )
    tracer, registry = _telemetry(args)
    rows = availability_over_time(
        args.topology,
        args.ports,
        process=process,
        duration=args.duration,
        retry=retry,
        seed=args.seed,
        load=args.load,
        protection=args.protection,
        tracer=tracer,
        metrics=registry,
    )
    columns = [
        "relay", "protection", "conferences", "availability", "degraded_fraction",
        "dropped", "restored", "lost_calls", "tap_move_events", "reroutes",
        "link_failures", "link_mttr", "conference_mttr",
        "plan_hits", "recovery_ticks_p50", "recovery_ticks_p95",
    ]
    print(render_table(
        rows,
        columns=columns,
        title=f"availability over time ({args.topology}, N={args.ports}, "
              f"MTTF={args.mttf}, MTTR={args.mttr})",
    ))
    if args.traffic:
        rows = retry_ablation(
            args.topology,
            args.ports,
            process=process,
            retry=retry,
            duration=args.duration,
            seed=args.seed,
        )
        columns = [
            "retry", "offered", "admitted", "availability", "lost_calls",
            "blocked_capacity", "blocked_fault", "blocked_ports",
            "blocked_retry-exhausted", "retries_succeeded",
        ]
        for row in rows:
            # A reason one arm never hit still deserves a 0, not a blank.
            for col in columns[1:]:
                row.setdefault(col, 0)
        print()
        print(render_table(
            rows,
            columns=columns,
            title="stochastic traffic: bounded backoff vs immediate loss",
        ))
    _write_telemetry(args, tracer, registry)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json as _json

    from repro.parallel.experiments import random_load_arm, search_trials, reduce_search_records

    engine = f"workers={args.workers}" if args.workers else "serial engine"
    tracer, registry = _telemetry(args)
    payload: dict = {
        "experiment": args.experiment,
        "topology": args.topology,
        "n_ports": args.ports,
        "trials": args.trials,
        "seed": args.seed,
        "workers": args.workers,
        "chunk_size": args.chunk_size,
    }
    if args.experiment == "random-load":
        rows = []
        arms = {}
        loads = args.loads if args.workload != "interleaved" else [None]
        for load in loads:
            kwargs = {} if load is None else {"load": load}
            arm = random_load_arm(
                args.topology,
                args.ports,
                workload=args.workload,
                trials=args.trials,
                seed=args.seed,
                workers=args.workers,
                chunk_size=args.chunk_size,
                metrics=registry,
                **kwargs,
            )
            arms[str(load)] = arm
            if tracer is not None:
                tracer.event(
                    "sweep.arm",
                    experiment="random-load",
                    workload=args.workload,
                    load=load,
                    trials=args.trials,
                    **arm["summary"],
                )
            rows.append({"workload": args.workload, "load": load, **arm["summary"]})
        print(render_table(
            rows,
            title=f"sweep: required dilation ({args.topology}, N={args.ports}, "
            f"{args.trials} trials/arm, {engine})",
        ))
        payload["arms"] = arms
    else:
        records = search_trials(
            args.topology,
            args.ports,
            trials=args.trials,
            pool_size=args.pool_size,
            seed=args.seed,
            workers=args.workers,
            chunk_size=args.chunk_size,
            metrics=registry,
        )
        result = reduce_search_records(records, args.ports)
        if tracer is not None:
            tracer.event(
                "sweep.arm",
                experiment="worstcase",
                trials=args.trials,
                multiplicity=result.multiplicity,
                link=result.link,
            )
        witness = [list(c.members) for c in result.witness] if result.witness else []
        print(
            f"worst multiplicity found: {result.multiplicity} on link {result.link} "
            f"({args.trials} trials, {engine})"
        )
        print(f"witness: {witness}")
        payload["records"] = records
        payload["best"] = {
            "multiplicity": result.multiplicity,
            "link": list(result.link) if result.link else None,
            "witness": witness,
        }
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"records written to {args.json}")
    _write_telemetry(args, tracer, registry)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.faults import FaultProcessConfig
    from repro.sim.scenarios import run_availability

    process = FaultProcessConfig(
        mean_time_to_failure=args.mttf, mean_time_to_repair=args.mttr
    )
    retry = RetryPolicy(max_retries=args.retries) if args.retries > 0 else None
    tracer = Tracer(capacity=args.capacity)
    registry = MetricsRegistry() if args.metrics_out else None
    run = run_availability(
        args.topology,
        args.ports,
        dilation=args.dilation,
        process=process,
        retry=retry,
        duration=args.duration,
        seed=args.seed,
        tracer=tracer,
        metrics=registry,
    )
    tracer.flush_open_spans(t=args.duration)
    counts = tracer.counts()
    rows = [{"record": name, "count": counts[name]} for name in sorted(counts)]
    print(render_table(
        rows,
        title=f"trace of one availability run ({args.topology}, N={args.ports}, "
        f"T={args.duration})",
    ))
    summary = run.summary()
    print(
        f"\n{tracer.emitted} records emitted"
        + (f" ({len(tracer)} retained, ring truncated)" if tracer.truncated else "")
        + f"; availability={summary.get('availability', 1.0):.4f}"
    )
    if args.out:
        n = tracer.write_jsonl(args.out)
        print(f"trace: {n} records -> {args.out}")
    if args.metrics_out:
        registry.write(args.metrics_out)
        print(f"metrics: {len(registry)} families -> {args.metrics_out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.service import FabricService

    net = ConferenceNetwork.build(args.topology, args.ports, dilation=args.dilation)
    tracer, registry = _telemetry(args)
    slo, flight = _live_obs(args, tracer)
    server = _exposition(args, registry, slo)
    retry = RetryPolicy(max_retries=args.retries) if args.retries > 0 else None
    service = FabricService(
        net,
        retry=retry,
        rng=args.seed,
        protection=args.protection,
        tracer=tracer,
        metrics=registry,
        slo=slo,
        flight=flight,
        queue_capacity=args.queue_capacity,
        shed_policy=args.shed_policy,
        max_batch=args.max_batch,
        churn=_churn_policy(args),
        capacity_model=args.capacity_model,
        perf=_perf_config(args),
    )
    workload = uniform_partition(args.ports, load=args.load, seed=args.seed)

    async def demo() -> list:
        runner = asyncio.create_task(service.run())
        opened = await asyncio.gather(
            *(service.open_conference(c.members) for c in workload)
        )
        closed = await asyncio.gather(
            *(service.close(r.session_id) for r in opened if r.ok)
        )
        runner.cancel()
        try:
            await runner
        except asyncio.CancelledError:
            pass
        return [*opened, *closed]

    responses = asyncio.run(demo())
    counts = service.shutdown()
    rows = [
        {
            "op": r.kind,
            "session": r.session_id,
            "status": r.status,
            "latency": r.latency,
            "reason": r.reason or "",
        }
        for r in responses
    ]
    print(render_table(
        rows,
        columns=["op", "session", "status", "latency", "reason"],
        title=f"conference service demo ({args.topology}, N={args.ports}, "
        f"{len(workload)} conferences)",
    ))
    settled = service.stats.as_dict()
    print(
        f"\n{settled['admitted']} admitted, {settled['closed']} closed, "
        f"{settled['rejected']} rejected over {settled['ticks']} ticks; "
        f"final sessions: {counts}"
    )
    if args.json:
        healing_stats = service.healing.stats
        save_json(args.json, {
            "protection": service.protection,
            "recovery": {
                **healing_stats.summarize_recovery(healing_stats.recovery_samples),
                "plan_hits": healing_stats.plan_hits,
                "plan_misses": healing_stats.plan_misses,
                "plan_stale": healing_stats.plan_stale,
            },
            "responses": [result_to_dict(r) for r in responses],
        })
        print(f"responses written to {args.json}")
    _write_telemetry(args, tracer, registry)
    _finish_live_obs(args, slo, flight, server)
    return 0 if all(counts[s] == 0 for s in ("queued", "active", "degraded", "down")) else 1


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.serve.bench import run_serve_bench
    from repro.sim.faults import FaultProcessConfig

    net = ConferenceNetwork.build(args.topology, args.ports, dilation=args.dilation)
    tracer, registry = _telemetry(args)
    slo, flight = _live_obs(args, tracer)
    server = _exposition(args, registry, slo)
    retry = RetryPolicy(max_retries=args.retries) if args.retries > 0 else None
    cache = None
    if args.route_cache:
        from repro.parallel.cache import RouteCache

        cache = RouteCache(net.topology, policy=net.policy)
    process = (
        FaultProcessConfig(mean_time_to_failure=args.mttf, mean_time_to_repair=args.mttr)
        if args.faults
        else None
    )
    report = run_serve_bench(
        net,
        conferences=args.conferences,
        seed=args.seed,
        arrival_rate=args.arrival_rate,
        mean_size=args.mean_size,
        mean_hold_ticks=args.mean_hold,
        resize_prob=args.resize_prob,
        queue_capacity=args.queue_capacity,
        shed_policy=args.shed_policy,
        max_batch=args.max_batch,
        churn=_churn_policy(args),
        retry=retry,
        fault_process=process,
        route_cache=cache,
        protection=args.protection,
        tracer=tracer,
        metrics=registry,
        slo=slo,
        flight=flight,
        capacity_model=args.capacity_model,
        perf=_perf_config(args),
    )
    svc = report.service
    rows = [
        {"metric": "conferences offered", "value": report.conferences},
        {"metric": "ticks (incl. drain)", "value": report.ticks},
        {"metric": "throughput (admits/tick)", "value": round(report.throughput, 3)},
        {"metric": "admitted", "value": svc["admitted"]},
        {"metric": "membership changes applied", "value": svc["applied"]},
        {"metric": "rejected", "value": svc["rejected"]},
        {"metric": "shed", "value": svc["shed"]},
        {"metric": "fault requeues survived", "value": svc["requeues"]},
        {"metric": "sessions lost", "value": report.lost_sessions},
        {"metric": "peak queue depth", "value": report.peak_queue_depth},
        {"metric": "mean admission latency (ticks)", "value": round(svc["mean_admission_latency"], 3)},
        {"metric": "fault transitions", "value": report.fault_transitions},
        {"metric": "protection (plans/conference)", "value": report.protection},
        {"metric": "plan hits / misses / stale", "value": (
            f"{report.recovery.get('plan_hits', 0)} / "
            f"{report.recovery.get('plan_misses', 0)} / "
            f"{report.recovery.get('plan_stale', 0)}"
        )},
        {"metric": "recovery ticks p50 / p95 / max", "value": (
            f"{report.recovery.get('recovery_ticks_p50', 0.0)} / "
            f"{report.recovery.get('recovery_ticks_p95', 0.0)} / "
            f"{report.recovery.get('recovery_ticks_max', 0.0)}"
        )},
    ]
    if report.delivery is not None:
        d = report.delivery
        lat = d["latency"]
        def _c(v):
            return round(v, 1) if v is not None else "-"
        rows.append({"metric": "delivery model", "value": (
            f"buffered L={d['config']['lanes']} D={d['config']['buffer_depth']} "
            f"F={d['config']['flits_per_packet']}"
            + (" tdm" if d["config"]["tdm"] else "")
        )})
        rows.append({"metric": "delivered / offered packets", "value": (
            f"{d['delivered_packets']} / {d['offered_packets']} "
            f"({round(d['delivery_ratio'], 4)})"
        )})
        rows.append({"metric": "delivery latency p50 / p95 / p99 (cycles)", "value": (
            f"{_c(lat['p50'])} / {_c(lat['p95'])} / {_c(lat['p99'])}"
        )})
    print(render_table(
        rows,
        title=f"serve bench ({args.topology}, N={args.ports}, seed={args.seed}, "
        f"policy={report.shed_policy})",
    ))
    print(f"\nresult: {'ok' if report.ok else 'FAILED: ' + str(report.reason)}")
    if args.json:
        save_json(args.json, result_to_dict(report))
        print(f"report written to {args.json}")
    _write_telemetry(args, tracer, registry)
    _finish_live_obs(args, slo, flight, server)
    return 0 if report.ok else 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster.bench import run_cluster_bench
    from repro.sim.faults import FaultProcessConfig

    tracer, registry = _telemetry(args)
    slo, flight = _live_obs(args, tracer)
    server = _exposition(args, registry, slo)
    retry = RetryPolicy(max_retries=args.retries) if args.retries > 0 else None
    process = (
        FaultProcessConfig(mean_time_to_failure=args.mttf, mean_time_to_repair=args.mttr)
        if args.faults
        else None
    )
    report = run_cluster_bench(
        topology=args.topology,
        ports=args.ports,
        shards=args.shards,
        conferences=args.conferences,
        seed=args.seed,
        arrival_rate=args.arrival_rate,
        mean_hold_ticks=args.mean_hold,
        resize_prob=args.resize_prob,
        churn=_churn_policy(args),
        retry=retry,
        migration_budget=args.migration_budget,
        fault_process=process,
        kill_shard_at=args.kill_at if args.kill_at >= 0 else None,
        add_shard_at=args.add_at if args.add_at >= 0 else None,
        protection=args.protection,
        tracer=tracer,
        metrics=registry,
        slo=slo,
        flight=flight,
        capacity_model=args.capacity_model,
        perf=_perf_config(args),
    )
    shard_rows = [
        {
            "shard": sid,
            "state": info["state"],
            "admitted": info["service"]["admitted"],
            "closed": info["service"]["closed"],
            "requeues": info["service"]["requeues"],
        }
        for sid, info in sorted(report.per_shard.items())
    ]
    print(render_table(
        shard_rows,
        columns=["shard", "state", "admitted", "closed", "requeues"],
        title=f"cluster drill ({args.topology}, N={args.ports} per shard, "
        f"{args.shards} shards, seed={args.seed})",
    ))
    cl = report.cluster
    drill = []
    if report.killed_shard is not None:
        drill.append(f"killed {report.killed_shard} at tick {report.kill_tick}")
    if report.added_shard is not None:
        drill.append(
            f"added {report.added_shard} "
            f"(rebalanced {report.rebalance_fraction:.0%} of live sessions)"
        )
    print(
        f"\n{cl['admitted']} admitted, {cl['closed']} closed over {report.ticks} ticks; "
        f"{cl['failovers']} failover moves, {cl['migrations']} rebalance moves, "
        f"{report.lost_sessions} sessions lost"
        + (f"; drill: {', '.join(drill)}" if drill else "")
    )
    print(
        f"protection F={report.protection}: "
        f"{report.recovery.get('plan_hits', 0)} plan hits, "
        f"{report.recovery.get('plan_misses', 0)} misses, "
        f"{report.recovery.get('plan_stale', 0)} stale; recovery ticks "
        f"p50={report.recovery.get('recovery_ticks_p50', 0.0)} "
        f"p95={report.recovery.get('recovery_ticks_p95', 0.0)} "
        f"max={report.recovery.get('recovery_ticks_max', 0.0)}"
    )
    if report.consistency:
        for problem in report.consistency:
            print(f"INCONSISTENT: {problem}")
    print(f"\nresult: {'ok' if report.ok else 'FAILED: ' + str(report.reason)}")
    if args.json:
        save_json(args.json, result_to_dict(report))
        print(f"report written to {args.json}")
    _write_telemetry(args, tracer, registry)
    _finish_live_obs(args, slo, flight, server)
    return 0 if report.ok else 1


def _cmd_bench_cluster(args: argparse.Namespace) -> int:
    from repro.cluster.bench import run_cluster_bench

    tracer, registry = _telemetry(args)
    slo, flight = _live_obs(args, tracer)
    server = _exposition(args, registry, slo)
    retry = RetryPolicy(max_retries=args.retries) if args.retries > 0 else None
    report = run_cluster_bench(
        topology=args.topology,
        ports=args.ports,
        shards=args.shards,
        dilation=args.dilation,
        conferences=args.conferences,
        seed=args.seed,
        arrival_rate=args.arrival_rate,
        mean_size=args.mean_size,
        mean_hold_ticks=args.mean_hold,
        resize_prob=args.resize_prob,
        queue_capacity=args.queue_capacity,
        shed_policy=args.shed_policy,
        max_batch=args.max_batch,
        churn=_churn_policy(args),
        retry=retry,
        migration_budget=args.migration_budget,
        protection=args.protection,
        tracer=tracer,
        metrics=registry,
        slo=slo,
        flight=flight,
        capacity_model=args.capacity_model,
        perf=_perf_config(args),
    )
    cl = report.cluster
    rows = [
        {"metric": "conferences offered", "value": report.conferences},
        {"metric": "shards", "value": report.shards},
        {"metric": "ticks (incl. drain)", "value": report.ticks},
        {"metric": "throughput (admits/tick)", "value": round(report.throughput, 3)},
        {"metric": "admitted", "value": cl["admitted"]},
        {"metric": "membership changes applied", "value": cl["applied"]},
        {"metric": "closed", "value": cl["closed"]},
        {"metric": "rejected", "value": cl["rejected"]},
        {"metric": "sessions lost", "value": report.lost_sessions},
        {"metric": "peak queue depth", "value": report.peak_queue_depth},
        {"metric": "mean admission latency (ticks)", "value": round(cl["mean_admission_latency"], 3)},
        {"metric": "protection (plans/conference)", "value": report.protection},
        {"metric": "recovery ticks p50 / p95 / max", "value": (
            f"{report.recovery.get('recovery_ticks_p50', 0.0)} / "
            f"{report.recovery.get('recovery_ticks_p95', 0.0)} / "
            f"{report.recovery.get('recovery_ticks_max', 0.0)}"
        )},
    ]
    if report.delivery is not None:
        d = report.delivery
        lat = d["latency"]
        def _c(v):
            return round(v, 1) if v is not None else "-"
        rows.append({"metric": "delivery model", "value": (
            f"buffered L={d['config']['lanes']} D={d['config']['buffer_depth']} "
            f"F={d['config']['flits_per_packet']}"
            + (" tdm" if d["config"]["tdm"] else "")
        )})
        rows.append({"metric": "delivered / offered packets", "value": (
            f"{d['delivered_packets']} / {d['offered_packets']} "
            f"({round(d['delivery_ratio'], 4)})"
        )})
        rows.append({"metric": "delivery latency p50 / p95 / p99 (cycles)", "value": (
            f"{_c(lat['p50'])} / {_c(lat['p95'])} / {_c(lat['p99'])}"
        )})
    print(render_table(
        rows,
        title=f"cluster bench ({args.topology}, N={args.ports} per shard, "
        f"{args.shards} shards, seed={args.seed})",
    ))
    print(f"\nresult: {'ok' if report.ok else 'FAILED: ' + str(report.reason)}")
    if args.json:
        save_json(args.json, result_to_dict(report))
        print(f"report written to {args.json}")
    if args.invariant_json:
        save_json(args.invariant_json, report.invariant())
        print(f"invariant metrics written to {args.invariant_json}")
    _write_telemetry(args, tracer, registry)
    _finish_live_obs(args, slo, flight, server)
    return 0 if report.ok else 1


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.obs import SLOEvaluator
    from repro.report.slo_report import build_slo_report, slo_rows
    from repro.serve.bench import run_serve_bench
    from repro.sim.faults import FaultProcessConfig

    net = ConferenceNetwork.build(args.topology, args.ports, dilation=args.dilation)
    tracer, registry = _telemetry(args)
    # This command *is* the SLO engine, so the evaluator always exists;
    # the shared flags can still add a flight recorder and an endpoint.
    slo, flight = _live_obs(args, tracer)
    if slo is None:
        slo = SLOEvaluator()
        if flight is not None:
            flight.attach_slo(slo)
    server = _exposition(args, registry, slo)
    retry = RetryPolicy(max_retries=args.retries) if args.retries > 0 else None
    process = (
        FaultProcessConfig(mean_time_to_failure=args.mttf, mean_time_to_repair=args.mttr)
        if args.faults
        else None
    )
    report = run_serve_bench(
        net,
        conferences=args.conferences,
        seed=args.seed,
        arrival_rate=args.arrival_rate,
        mean_size=args.mean_size,
        mean_hold_ticks=args.mean_hold,
        resize_prob=args.resize_prob,
        queue_capacity=args.queue_capacity,
        retry=retry,
        fault_process=process,
        protection=args.protection,
        tracer=tracer,
        metrics=registry,
        slo=slo,
        flight=flight,
    )
    print(render_table(
        slo_rows(slo),
        columns=["slo", "state", "objective", "burn", "breaches", "p50", "p95", "p99"],
        title=f"SLO health ({args.topology}, N={args.ports}, seed={args.seed}, "
        f"{report.ticks} ticks)",
    ))
    print(
        f"\noverall state: {slo.state}; throughput "
        f"{report.throughput:.3f} admits/tick, "
        f"{report.fault_transitions} fault transitions, "
        f"{report.lost_sessions} sessions lost"
    )
    if args.json:
        save_json(args.json, build_slo_report(slo, context={
            "topology": args.topology,
            "ports": args.ports,
            "seed": args.seed,
            "conferences": report.conferences,
            "ticks": report.ticks,
            "throughput": report.throughput,
            "fault_transitions": report.fault_transitions,
        }))
        print(f"slo report written to {args.json}")
    _write_telemetry(args, tracer, registry)
    _finish_live_obs(args, slo, flight, server)
    return 0 if slo.state != "page" else 1


_COMMANDS = {
    "show": _cmd_show,
    "route": _cmd_route,
    "worstcase": _cmd_worstcase,
    "cost": _cmd_cost,
    "blocking": _cmd_blocking,
    "schedule": _cmd_schedule,
    "faults": _cmd_faults,
    "availability": _cmd_availability,
    "sweep": _cmd_sweep,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "bench-serve": _cmd_bench_serve,
    "cluster": _cmd_cluster,
    "bench-cluster": _cmd_bench_cluster,
    "slo": _cmd_slo,
}


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
