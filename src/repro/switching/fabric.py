"""Hardware-level fabric simulation.

The routing code computes which points a conference *should* occupy;
this module checks what the hardware would actually deliver.  It derives
per-switch settings from routes, then pushes :class:`Signal` values
through the switch columns, the dilated links and the output
multiplexers — a propagation that knows nothing about forward masks or
backward cones, making it an independent end-to-end oracle for the
routing algorithm (and the basis of the library's delivery guarantees).

Links are modelled with a configurable *dilation* (capacity): a physical
link can carry up to ``dilation`` conference channels at once, which is
exactly how a network with conflict multiplicity ``f`` is provisioned.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.routing import Route
from repro.switching.mux import MuxBank
from repro.switching.switch import Signal, SwitchSetting
from repro.topology.network import MultistageNetwork, Point

__all__ = ["CapacityExceeded", "DeliveryReport", "Fabric"]


class CapacityExceeded(RuntimeError):
    """Raised when routes demand more channels on a link than it has.

    Carries the offending link and the demanded load so admission
    control and experiments can report precisely what failed.
    """

    def __init__(self, link: Point, demanded: int, capacity: int):
        super().__init__(
            f"link {link} needs {demanded} channels but has capacity {capacity}"
        )
        self.link = link
        self.demanded = demanded
        self.capacity = capacity


@dataclass(frozen=True)
class DeliveryReport:
    """Outcome of simulating a set of conference routes on hardware.

    ``delivered[conference_id][port]`` is the member set that arrived at
    member ``port``'s output.  ``correct`` is True when every member of
    every conference received exactly the full combination.
    """

    delivered: dict[int, dict[int, frozenset[int]]]
    peak_link_load: int
    switch_settings_used: int
    errors: tuple[str, ...] = field(default_factory=tuple)

    @property
    def correct(self) -> bool:
        """True when every member heard exactly its full conference."""
        return not self.errors


class Fabric:
    """A configured switching fabric: network + dilation + mux bank.

    Instantiate once per topology, then call :meth:`simulate` with any
    collection of routes — conference :class:`Route` objects,
    ``GroupRoute`` objects from ``repro.core.groupcast``, or a mix; the
    fabric only relies on the shared adapter interface (``channel_id``,
    ``injections``, ``expected_delivery``, ``exclusive_ports``,
    ``levels``, ``taps``).  The simulation is stateless across calls.
    """

    def __init__(
        self,
        net: MultistageNetwork,
        dilation: int = 1,
        relay_enabled: bool = True,
    ):
        if dilation < 1:
            raise ValueError(f"link dilation must be >= 1, got {dilation}")
        if net.radix != 2:
            raise NotImplementedError(
                "the hardware fabric models 2x2 switch modules; radix-r "
                "networks are supported by the routing and conflict layers "
                "(see repro.topology.builders.radix_cube)"
            )
        self._net = net
        self._dilation = dilation
        self._mux_bank = MuxBank(net.n_ports, net.n_stages, relay_enabled=relay_enabled)

    @property
    def net(self) -> MultistageNetwork:
        """The underlying topology."""
        return self._net

    @property
    def dilation(self) -> int:
        """Channels per physical inter-stage link."""
        return self._dilation

    @property
    def mux_bank(self) -> MuxBank:
        """The output multiplexer column."""
        return self._mux_bank

    # -- switch-setting derivation --------------------------------------

    def derive_settings(
        self, routes: Sequence[Route]
    ) -> dict[tuple[int, int, int], SwitchSetting]:
        """Per-(stage, switch, conference) switch settings implied by routes.

        For each stage switch a conference route touches, the setting
        combines every used input rail onto every used output rail —
        the combine-and-broadcast discipline of conference switching.
        """
        settings: dict[tuple[int, int, int], SwitchSetting] = {}
        for route in routes:
            cid = route.channel_id
            for s, stage in enumerate(self._net.stages):
                used_in = route.levels[s]
                used_out = route.levels[s + 1]
                by_switch_in: dict[int, set[int]] = {}
                for row in used_in:
                    rail = stage.pre(row)
                    by_switch_in.setdefault(rail >> 1, set()).add(rail & 1)
                by_switch_out: dict[int, set[int]] = {}
                for row in used_out:
                    rail = stage.post.inverse(row)
                    by_switch_out.setdefault(rail >> 1, set()).add(rail & 1)
                for sw, ins in by_switch_in.items():
                    outs = by_switch_out.get(sw, set())
                    if not outs:
                        continue
                    settings[(s, sw, cid)] = SwitchSetting.for_io(
                        frozenset(ins), frozenset(outs)
                    )
        return settings

    # -- signal propagation ---------------------------------------------

    def simulate(
        self, routes: Sequence[Route], check_capacity: bool = True
    ) -> DeliveryReport:
        """Push every conference's signals through the configured fabric.

        Raises :class:`CapacityExceeded` when ``check_capacity`` is on
        and some link needs more channels than the dilation provides;
        returns a :class:`DeliveryReport` otherwise.
        """
        routes = list(routes)
        self._check_disjoint(routes)
        if check_capacity:
            self._enforce_capacity(routes)

        settings = self.derive_settings(routes)
        # Wire state: per level, per row, per conference -> Signal.
        state: dict[int, dict[tuple[int, int], Signal]] = {0: {}}
        for route in routes:
            cid = route.channel_id
            for port in route.injections:
                state[0][(port, cid)] = Signal(cid, frozenset({port}))

        peak = 0
        for s, stage in enumerate(self._net.stages):
            cur = state[s]
            nxt: dict[tuple[int, int], Signal] = {}
            # Group current wires by (switch, conference).
            by_switch: dict[tuple[int, int], dict[int, Signal]] = {}
            for (row, cid), sig in cur.items():
                rail = stage.pre(row)
                by_switch.setdefault((rail >> 1, cid), {})[rail & 1] = sig
            for (sw, cid), rails in by_switch.items():
                setting = settings.get((s, sw, cid))
                if setting is None:
                    continue  # conference terminates here (tapped earlier)
                out0, out1 = setting.apply(rails.get(0), rails.get(1))
                for rail_idx, sig in ((0, out0), (1, out1)):
                    if sig is None:
                        continue
                    row = stage.post(2 * sw + rail_idx)
                    nxt[(row, cid)] = sig
            state[s + 1] = nxt
            if nxt:
                load = Counter(row for (row, _cid) in nxt)
                peak = max(peak, max(load.values()))

        # Output multiplexers deliver tapped signals.
        self._mux_bank.clear()
        delivered: dict[int, dict[int, frozenset[int]]] = {}
        errors: list[str] = []
        for route in routes:
            cid = route.channel_id
            got: dict[int, frozenset[int]] = {}
            expected = route.expected_delivery
            for port, level in route.taps.items():
                if self._mux_bank.relay_enabled or level == self._net.n_stages:
                    self._mux_bank.set_selection(port, level)
                else:
                    errors.append(
                        f"conference {cid}: member {port} taps level {level} "
                        "but the mux relay is disabled"
                    )
                    continue
                sig = state[level].get((port, cid))
                members = sig.members if sig is not None else frozenset()
                got[port] = members
                if members != expected:
                    errors.append(
                        f"conference {cid}: member {port} received "
                        f"{sorted(members)} instead of {sorted(expected)}"
                    )
            delivered[cid] = got

        return DeliveryReport(
            delivered=delivered,
            peak_link_load=peak,
            switch_settings_used=len(settings),
            errors=tuple(errors),
        )

    # -- internals -------------------------------------------------------

    @staticmethod
    def _check_disjoint(routes: Sequence[Route]) -> None:
        seen: dict[int, int] = {}
        for route in routes:
            cid = route.channel_id
            for port in route.exclusive_ports:
                other = seen.get(port)
                if other is not None and other != cid:
                    raise ValueError(
                        f"connections {other} and {cid} share port {port}"
                    )
                seen[port] = cid

    def _enforce_capacity(self, routes: Sequence[Route]) -> None:
        loads: Counter = Counter()
        for route in routes:
            loads.update(route.links)
        for link, load in loads.items():
            if load > self._dilation:
                raise CapacityExceeded(link, load, self._dilation)
