"""A functional N x N conference crossbar — the brute-force baseline.

One contact per (input, output) pair plus an N-way mixer per output:
every output can listen to any subset of inputs, so any family of
disjoint conferences is realized with no routing at all.  The paper's
multistage designs compete against this on hardware cost (Θ(N²) here,
see ``repro.analysis.cost``); this module provides the *behavioural*
reference the tests compare the multistage fabric against: both must
deliver exactly the same mixes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.conference import ConferenceSet
from repro.util.validation import check_network_size

__all__ = ["CrossbarDelivery", "ConferenceCrossbar"]


@dataclass(frozen=True)
class CrossbarDelivery:
    """What each output hears: ``delivered[conference_id][port]``."""

    delivered: dict[int, dict[int, frozenset[int]]]
    contacts_closed: int

    @property
    def correct(self) -> bool:
        """Always true by construction; present for interface parity
        with :class:`~repro.switching.fabric.DeliveryReport`."""
        return True


class ConferenceCrossbar:
    """An ``N x N`` crossbar with per-output mixing.

    Stateless: :meth:`realize` validates the conference set and returns
    the delivery.  ``contacts_closed`` counts the crosspoints in use —
    ``sum(|S|^2)`` over conferences — which the cost comparison tests
    check against the switching-theory formula.
    """

    def __init__(self, n_ports: int):
        check_network_size(n_ports)
        self._n_ports = n_ports

    @property
    def n_ports(self) -> int:
        """Number of input (and output) ports."""
        return self._n_ports

    @property
    def total_crosspoints(self) -> int:
        """Physical contact count, ``N**2``."""
        return self._n_ports * self._n_ports

    def realize(self, conferences: ConferenceSet) -> CrossbarDelivery:
        """Close, for each conference, the |S| x |S| block of contacts.

        Disjointness (validated by the ``ConferenceSet``) guarantees no
        output mixer is claimed twice.
        """
        if conferences.n_ports != self._n_ports:
            raise ValueError(
                f"conference set sized for {conferences.n_ports} ports, "
                f"crossbar has {self._n_ports}"
            )
        delivered: dict[int, dict[int, frozenset[int]]] = {}
        contacts = 0
        for conf in conferences:
            members = conf.member_set
            delivered[conf.conference_id] = {port: members for port in conf.members}
            contacts += conf.size * conf.size
        return CrossbarDelivery(delivered=delivered, contacts_closed=contacts)
