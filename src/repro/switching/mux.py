"""Per-output multiplexer relay — the Yang-2001 enhancement.

Each network output ``j`` is fed by an ``(n+1)``-to-1 multiplexer whose
data inputs are the inter-stage links on physical row ``j`` after stages
``1..n`` plus a stage-0 loopback of input ``j`` itself (which lets a
singleton conference hear itself without traversing any stage).  A
conference fully combined on row ``j`` after ``t`` stages exits through
the mux without occupying stages ``t+1..n``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_network_size, check_port, check_stage

__all__ = ["OutputMux", "MuxBank"]


@dataclass(frozen=True)
class OutputMux:
    """The relay multiplexer in front of one network output."""

    row: int
    n_stages: int

    @property
    def n_inputs(self) -> int:
        """Number of selectable taps: one per level ``0..n_stages``."""
        return self.n_stages + 1

    def select(self, level: int) -> tuple[int, int]:
        """The point ``(level, row)`` this selection taps."""
        check_stage(level, self.n_stages, inclusive=True)
        return (level, self.row)


class MuxBank:
    """The full column of output multiplexers of a conference network.

    ``relay_enabled=False`` models a plain multistage network with no
    enhancement: every output is hard-wired to the final stage, which is
    the no-mux ablation in the benchmarks.
    """

    def __init__(self, n_ports: int, n_stages: int, relay_enabled: bool = True):
        check_network_size(n_ports)
        if n_stages < 1:
            raise ValueError(f"need at least one stage, got {n_stages}")
        self._n_ports = n_ports
        self._n_stages = n_stages
        self._relay_enabled = relay_enabled
        self._selection: dict[int, int] = {}

    @property
    def n_ports(self) -> int:
        """Number of outputs (one mux each)."""
        return self._n_ports

    @property
    def relay_enabled(self) -> bool:
        """Whether early taps are allowed."""
        return self._relay_enabled

    def mux(self, row: int) -> OutputMux:
        """The multiplexer in front of output ``row``."""
        check_port(row, self._n_ports, "row")
        return OutputMux(row=row, n_stages=self._n_stages)

    def set_selection(self, row: int, level: int) -> None:
        """Point output ``row`` at the level-``level`` link on its row.

        With the relay disabled only ``level == n_stages`` is legal.
        """
        check_port(row, self._n_ports, "row")
        check_stage(level, self._n_stages, inclusive=True)
        if not self._relay_enabled and level != self._n_stages:
            raise ValueError(
                f"mux relay disabled: output {row} can only tap the final stage "
                f"({self._n_stages}), not level {level}"
            )
        self._selection[row] = level

    def clear(self) -> None:
        """Drop all selections (outputs go silent)."""
        self._selection.clear()

    def selection(self, row: int) -> "int | None":
        """The level output ``row`` currently taps, or None when silent."""
        check_port(row, self._n_ports, "row")
        return self._selection.get(row)

    def selected_points(self) -> dict[int, tuple[int, int]]:
        """Map of output row -> tapped point for all configured outputs."""
        return {row: (level, row) for row, level in self._selection.items()}

    def gate_cost(self) -> int:
        """Total mux data inputs across the bank, a standard hardware
        cost proxy (each output needs an ``(n+1)``-to-1 mux when the
        relay is on, or a plain wire when off)."""
        if not self._relay_enabled:
            return 0
        return self._n_ports * (self._n_stages + 1)
