"""Switch modules, output multiplexers, and the hardware fabric simulator."""

from repro.switching.crossbar import ConferenceCrossbar, CrossbarDelivery
from repro.switching.fabric import CapacityExceeded, DeliveryReport, Fabric
from repro.switching.mux import MuxBank, OutputMux
from repro.switching.switch import (
    COMBINE_BROADCAST,
    CROSS,
    IDLE,
    STRAIGHT,
    Signal,
    SwitchSetting,
)

__all__ = [
    "COMBINE_BROADCAST",
    "CROSS",
    "CapacityExceeded",
    "ConferenceCrossbar",
    "CrossbarDelivery",
    "DeliveryReport",
    "Fabric",
    "IDLE",
    "MuxBank",
    "OutputMux",
    "STRAIGHT",
    "Signal",
    "SwitchSetting",
]
