"""Two-by-two switch modules with fan-in and fan-out capability.

The paper's networks are built from 2x2 switch modules that can do more
than permute: they *combine* (fan-in) two signals of the same conference
into one mixed signal, and *broadcast* (fan-out) a signal to both
outputs.  A switch configuration is therefore, per output rail, the set
of input rails whose signals are combined onto it.

Signals are modelled as :class:`Signal` values carrying the set of
member ports already mixed in.  Combining is set union, which makes
delivery exactly checkable: a conference member must receive precisely
the union of all members.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Signal", "SwitchSetting", "STRAIGHT", "CROSS", "COMBINE_BROADCAST", "IDLE"]


@dataclass(frozen=True)
class Signal:
    """A (possibly partially combined) conference signal on one wire.

    ``conference_id`` scopes combining: a hardware fabric must never mix
    signals of different conferences, and :meth:`combine` enforces it.
    """

    conference_id: int
    members: frozenset[int]

    def combine(self, other: "Signal") -> "Signal":
        """Mix two signals of the same conference (fan-in)."""
        if self.conference_id != other.conference_id:
            raise ValueError(
                f"cannot combine signals of conferences "
                f"{self.conference_id} and {other.conference_id}"
            )
        return Signal(self.conference_id, self.members | other.members)

    def __repr__(self) -> str:
        mem = ",".join(map(str, sorted(self.members)))
        return f"Signal(conf={self.conference_id}, members={{{mem}}})"


@dataclass(frozen=True)
class SwitchSetting:
    """Configuration of one 2x2 switch for one conference channel.

    ``out0``/``out1`` give the input rails (subsets of ``{0, 1}``)
    combined onto the upper/lower output rail.  The classic unicast
    states are special cases; conference switching mostly uses
    combine-and-broadcast settings.
    """

    out0: frozenset[int] = field(default=frozenset())
    out1: frozenset[int] = field(default=frozenset())

    def __post_init__(self) -> None:
        for rails in (self.out0, self.out1):
            if not rails <= {0, 1}:
                raise ValueError(f"input rails must be a subset of {{0, 1}}, got {set(rails)}")

    @property
    def inputs_used(self) -> frozenset[int]:
        """Input rails that feed at least one output."""
        return self.out0 | self.out1

    @property
    def outputs_used(self) -> frozenset[int]:
        """Output rails that carry a signal."""
        used = set()
        if self.out0:
            used.add(0)
        if self.out1:
            used.add(1)
        return frozenset(used)

    @property
    def is_idle(self) -> bool:
        """True when the switch passes nothing for this channel."""
        return not (self.out0 or self.out1)

    def apply(self, in0: "Signal | None", in1: "Signal | None") -> tuple["Signal | None", "Signal | None"]:
        """Drive the outputs from the inputs under this setting.

        Raises ``ValueError`` when the setting selects an input rail that
        carries no signal — that would be a routing bug, and the fabric
        simulator wants it loud.
        """
        rails = (in0, in1)

        def mix(selected: frozenset[int]) -> "Signal | None":
            out: "Signal | None" = None
            for rail in sorted(selected):
                sig = rails[rail]
                if sig is None:
                    raise ValueError(f"switch setting selects silent input rail {rail}")
                out = sig if out is None else out.combine(sig)
            return out

        return mix(self.out0), mix(self.out1)

    @staticmethod
    def for_io(inputs: frozenset[int], outputs: frozenset[int]) -> "SwitchSetting":
        """The conference setting combining ``inputs`` onto every rail in
        ``outputs`` (combine-and-broadcast semantics)."""
        return SwitchSetting(
            out0=inputs if 0 in outputs else frozenset(),
            out1=inputs if 1 in outputs else frozenset(),
        )


#: Classic unicast pass-through: upper in -> upper out, lower -> lower.
STRAIGHT = SwitchSetting(out0=frozenset({0}), out1=frozenset({1}))
#: Classic unicast exchange: upper in -> lower out and vice versa.
CROSS = SwitchSetting(out0=frozenset({1}), out1=frozenset({0}))
#: Full conference mode: both inputs mixed onto both outputs.
COMBINE_BROADCAST = SwitchSetting(out0=frozenset({0, 1}), out1=frozenset({0, 1}))
#: Nothing connected.
IDLE = SwitchSetting()
