"""Port permutations used as inter-stage wiring patterns.

A multistage network alternates *wiring permutations* (fixed metal) with
columns of 2x2 switches (configurable).  All the classic banyan-class
topologies — omega, baseline, indirect binary cube and their reverses —
use wiring drawn from a small family of *bit permutations*: permutations
of ``{0..N-1}`` that act by permuting the binary address bits.  This
module provides those permutations as small immutable objects with exact
inverses, plus the blockwise restriction needed by baseline networks.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from functools import cached_property

import numpy as np

from repro.util.bits import bit, ilog2, mask_of, rotate_left, rotate_right

__all__ = [
    "Permutation",
    "identity",
    "perfect_shuffle",
    "inverse_shuffle",
    "bit_reversal",
    "butterfly",
    "bit_to_front",
    "blockwise",
    "compose",
    "digit_count",
    "digit_shuffle",
    "digit_to_front",
    "from_mapping",
]


class Permutation:
    """An immutable permutation of ``{0 .. size-1}``.

    Wraps a callable form (fast for single lookups, used heavily by the
    routing code) and lazily materializes array forms for vectorized use.
    Instances compare equal when they map every point identically, which
    the topology-equivalence tests rely on.
    """

    __slots__ = ("_fn", "_size", "_name", "__dict__")

    def __init__(self, size: int, fn: Callable[[int], int], name: str = "perm"):
        if size <= 0:
            raise ValueError(f"permutation size must be positive, got {size}")
        self._size = size
        self._fn = fn
        self._name = name

    @property
    def size(self) -> int:
        """Number of points the permutation acts on."""
        return self._size

    @property
    def name(self) -> str:
        """Human-readable label used in network descriptions."""
        return self._name

    def __call__(self, x: int) -> int:
        if not 0 <= x < self._size:
            raise ValueError(f"point {x} out of range [0, {self._size})")
        return self._fn(x)

    @cached_property
    def table(self) -> np.ndarray:
        """The permutation as an int64 lookup table (``table[x] == p(x)``)."""
        tab = np.fromiter((self._fn(x) for x in range(self._size)), dtype=np.int64, count=self._size)
        if sorted(tab.tolist()) != list(range(self._size)):
            raise ValueError(f"{self._name} is not a bijection on [0, {self._size})")
        tab.setflags(write=False)
        return tab

    @cached_property
    def inverse(self) -> "Permutation":
        """The inverse permutation (materialized once, then cached)."""
        inv = np.empty(self._size, dtype=np.int64)
        inv[self.table] = np.arange(self._size, dtype=np.int64)
        inv.setflags(write=False)
        return Permutation(self._size, lambda x, _t=inv: int(_t[x]), name=f"{self._name}^-1")

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Vectorized application to an array of point indices."""
        return self.table[points]

    def then(self, other: "Permutation") -> "Permutation":
        """Composition ``other(self(x))`` (self applied first)."""
        return compose(self, other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return self._size == other._size and bool(np.array_equal(self.table, other.table))

    def __hash__(self) -> int:
        return hash((self._size, self.table.tobytes()))

    def __repr__(self) -> str:
        return f"Permutation({self._name}, size={self._size})"


def identity(size: int) -> Permutation:
    """The identity wiring (straight wires)."""
    return Permutation(size, lambda x: x, name="identity")


def perfect_shuffle(size: int) -> Permutation:
    """The perfect shuffle: rotate the address bits left by one.

    Sends port ``x`` to ``(2x mod N) + msb(x)``, interleaving the two
    halves of the ports like a riffle shuffle of a card deck.  This is
    the wiring in front of every omega-network stage.
    """
    n = ilog2(size)
    return Permutation(size, lambda x: rotate_left(x, n), name="shuffle")


def inverse_shuffle(size: int) -> Permutation:
    """The inverse perfect shuffle: rotate the address bits right by one."""
    n = ilog2(size)
    return Permutation(size, lambda x: rotate_right(x, n), name="unshuffle")


def bit_reversal(size: int) -> Permutation:
    """Reverse the address bits; self-inverse."""
    n = ilog2(size)

    def rev(x: int) -> int:
        r = 0
        for _ in range(n):
            r = (r << 1) | (x & 1)
            x >>= 1
        return r

    return Permutation(size, rev, name="bit-reversal")


def butterfly(size: int, k: int) -> Permutation:
    """The k-th butterfly permutation: swap address bits 0 and ``k``.

    Self-inverse.  ``butterfly(size, 0)`` is the identity.
    """
    n = ilog2(size)
    if not 0 <= k < n:
        raise ValueError(f"butterfly bit {k} out of range [0, {n})")

    def fly(x: int) -> int:
        b0, bk = bit(x, 0), bit(x, k)
        if b0 != bk:
            x ^= (1 << k) | 1
        return x

    return Permutation(size, fly, name=f"butterfly[{k}]")


def bit_to_front(size: int, k: int) -> Permutation:
    """Rotate address bits ``0..k`` right by one, moving bit ``k`` to bit 0.

    Used to express "pair rows differing in bit k" networks (the indirect
    binary cube) in the canonical adjacent-pair switch layout: after this
    wiring, rows that differed only in bit ``k`` sit on adjacent rails.
    """
    n = ilog2(size)
    if not 0 <= k < n:
        raise ValueError(f"bit index {k} out of range [0, {n})")
    low_mask = mask_of(k + 1)

    def fwd(x: int) -> int:
        lo = x & low_mask
        return (x & ~low_mask) | ((lo >> k) | ((lo << 1) & low_mask))

    return Permutation(size, fwd, name=f"bit{k}-to-front")


def blockwise(size: int, block_size: int, factory: Callable[[int], Permutation]) -> Permutation:
    """Apply ``factory(block_size)`` independently inside each aligned block.

    Baseline networks wire each stage as an inverse shuffle restricted to
    progressively smaller subnetworks; this combinator builds exactly that
    from the whole-network permutation constructors above.
    """
    ilog2(size)
    if block_size < 1 or size % block_size:
        raise ValueError(f"block size {block_size} must divide network size {size}")
    inner = factory(block_size)
    if inner.size != block_size:
        raise ValueError("factory produced a permutation of the wrong size")
    mask = block_size - 1

    def fwd(x: int) -> int:
        return (x & ~mask) | inner(x & mask)

    return Permutation(size, fwd, name=f"blockwise[{block_size}]({inner.name})")


def compose(first: Permutation, second: Permutation) -> Permutation:
    """The permutation ``x -> second(first(x))``."""
    if first.size != second.size:
        raise ValueError(f"size mismatch: {first.size} vs {second.size}")
    return Permutation(
        first.size,
        lambda x: second(first(x)),
        name=f"{second.name}∘{first.name}",
    )


def from_mapping(mapping: Sequence[int], name: str = "explicit") -> Permutation:
    """Build a permutation from an explicit table, validating bijectivity."""
    size = len(mapping)
    if sorted(mapping) != list(range(size)):
        raise ValueError("mapping is not a permutation of its index range")
    table = tuple(mapping)
    return Permutation(size, lambda x: table[x], name=name)


def _digits(x: int, radix: int, n: int) -> list[int]:
    """Base-``radix`` digits of ``x``, least significant first."""
    out = []
    for _ in range(n):
        out.append(x % radix)
        x //= radix
    return out


def _undigits(digits: "list[int]", radix: int) -> int:
    """Inverse of :func:`_digits`."""
    x = 0
    for d in reversed(digits):
        x = x * radix + d
    return x


def digit_count(size: int, radix: int) -> int:
    """Exact base-``radix`` logarithm of ``size``.

    Raises ``ValueError`` unless ``size`` is a positive power of the
    radix — radix-``r`` delta networks need ``N = r**n``.
    """
    if radix < 2:
        raise ValueError(f"radix must be >= 2, got {radix}")
    n, x = 0, size
    while x > 1:
        if x % radix:
            raise ValueError(f"size {size} is not a power of radix {radix}")
        x //= radix
        n += 1
    if n == 0:
        raise ValueError(f"size must be at least {radix}, got {size}")
    return n


def digit_shuffle(size: int, radix: int) -> Permutation:
    """The radix-``r`` perfect shuffle: rotate base-``r`` digits left.

    Generalizes :func:`perfect_shuffle` (``radix=2``); the wiring in
    front of every stage of a radix-``r`` delta (omega-like) network.
    """
    n = digit_count(size, radix)

    def fwd(x: int) -> int:
        d = _digits(x, radix, n)
        return _undigits(d[-1:] + d[:-1], radix)

    return Permutation(size, fwd, name=f"shuffle[r{radix}]")


def digit_to_front(size: int, radix: int, k: int) -> Permutation:
    """Rotate base-``r`` digits ``0..k`` right by one (digit ``k`` to front).

    Generalizes :func:`bit_to_front`: after this wiring, rows differing
    only in digit ``k`` sit on consecutive rails, grouped per switch.
    """
    n = digit_count(size, radix)
    if not 0 <= k < n:
        raise ValueError(f"digit index {k} out of range [0, {n})")

    def fwd(x: int) -> int:
        d = _digits(x, radix, n)
        d[: k + 1] = [d[k]] + d[:k]
        return _undigits(d, radix)

    return Permutation(size, fwd, name=f"digit{k}-to-front[r{radix}]")
