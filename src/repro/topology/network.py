"""Generic multistage interconnection network (MIN) model.

A network is a column of ``N`` input ports, then ``n_stages`` stages, then
``N`` output ports.  Each stage consists of a fixed *pre-wiring*
permutation, a column of ``N/2`` two-by-two switch modules on adjacent
rail pairs, and a fixed *post-wiring* permutation.  This canonical form
expresses every banyan-class topology in the paper (omega, baseline,
indirect binary cube and their reverses) with the right notion of a
persistent *physical row*: the inter-stage link on row ``r`` after stage
``t`` is the wire the paper's per-stage output multiplexers tap.

The network is purely structural — it knows which points connect to
which, but carries no signals.  Signal semantics live in
``repro.switching`` and routing in ``repro.core.routing``.

Coordinates
-----------
* A **point** ``(level, row)`` with ``0 <= level <= n_stages`` is a
  position on the wire entering stage ``level`` (or the network output
  column when ``level == n_stages``).  Level 0 points are the inputs.
* Stage ``s`` reads points at level ``s`` and drives points at level
  ``s + 1``.
* An **inter-stage link** is any point with ``level >= 1``: each such
  point is fed by exactly one switch output, so identifying links with
  their downstream points is lossless.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.topology.permutations import Permutation, identity
from repro.util.validation import check_network_size, check_port, check_stage

__all__ = ["Stage", "MultistageNetwork", "Point"]

#: A point in the layered graph: ``(level, row)``.
Point = tuple[int, int]


@dataclass(frozen=True)
class Stage:
    """One switching stage: pre-wiring, switch column, post-wiring.

    ``pre`` maps a physical row at this level to the rail feeding the
    switch column (rails ``radix*t .. radix*t + radix - 1`` share switch
    ``t``); ``post`` maps a switch output rail to the physical row at
    the next level.  ``radix`` is the switch-module size — 2 for the
    paper's networks, larger for radix-``r`` delta networks.
    """

    pre: Permutation
    post: Permutation
    label: str = "stage"
    radix: int = 2

    def __post_init__(self) -> None:
        if self.pre.size != self.post.size:
            raise ValueError(
                f"stage wiring sizes differ: pre={self.pre.size}, post={self.post.size}"
            )
        if self.radix < 2:
            raise ValueError(f"switch radix must be >= 2, got {self.radix}")
        if self.pre.size % self.radix:
            raise ValueError(
                f"stage spans {self.pre.size} rows, not divisible by radix {self.radix}"
            )

    @property
    def size(self) -> int:
        """Number of rows the stage spans."""
        return self.pre.size

    @property
    def n_switches(self) -> int:
        """Switch modules in this stage."""
        return self.size // self.radix

    def switch_of_row(self, row: int) -> int:
        """Index of the switch module that reads physical row ``row``."""
        return self.pre(row) // self.radix

    def partner_row(self, row: int) -> int:
        """The other physical row sharing a switch with ``row`` (radix 2)."""
        if self.radix != 2:
            raise ValueError("partner_row is only defined for radix-2 stages")
        return self.pre.inverse(self.pre(row) ^ 1)

    def partner_rows(self, row: int) -> tuple[int, ...]:
        """All other physical rows sharing a switch with ``row``."""
        rail = self.pre(row)
        base = (rail // self.radix) * self.radix
        inv = self.pre.inverse
        return tuple(inv(base + i) for i in range(self.radix) if base + i != rail)

    def successors(self, row: int) -> tuple[int, ...]:
        """Physical rows at the next level reachable from ``row``.

        A switch module can forward (and broadcast) any input to every
        output, so each input row reaches all output rows of its switch;
        returned in rail order.
        """
        base = (self.pre(row) // self.radix) * self.radix
        return tuple(self.post(base + i) for i in range(self.radix))

    def predecessors(self, row: int) -> tuple[int, ...]:
        """Physical rows at this stage's input level that can drive ``row``."""
        base = (self.post.inverse(row) // self.radix) * self.radix
        inv = self.pre.inverse
        return tuple(inv(base + i) for i in range(self.radix))

    def switch_io(self, switch: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The (input rows, output rows) of switch ``switch``.

        Inputs/outputs are given in rail order, which is the order
        switch-state semantics in ``repro.switching`` use.
        """
        if not 0 <= switch < self.n_switches:
            raise ValueError(f"switch {switch} out of range [0, {self.n_switches})")
        rails = range(self.radix * switch, self.radix * (switch + 1))
        inv = self.pre.inverse
        return tuple(inv(r) for r in rails), tuple(self.post(r) for r in rails)


class MultistageNetwork:
    """A concrete multistage network topology.

    Instances are immutable descriptions of wiring; all heavy
    computations (successor tables, reachability) are cached on first
    use.  Build instances through ``repro.topology.builders`` rather than
    directly unless you are defining a new topology.
    """

    def __init__(self, n_ports: int, stages: "list[Stage] | tuple[Stage, ...]", name: str = "min"):
        stages = tuple(stages)
        if not stages:
            raise ValueError("a network needs at least one stage")
        radixes = {s.radix for s in stages}
        if len(radixes) != 1:
            raise ValueError(f"stages mix switch radixes {sorted(radixes)}")
        self._radix = next(iter(radixes))
        if self._radix == 2:
            check_network_size(n_ports)
        elif n_ports < 2 or n_ports % self._radix:
            raise ValueError(
                f"network size {n_ports} is not divisible by radix {self._radix}"
            )
        for s in stages:
            if s.size != n_ports:
                raise ValueError(
                    f"stage {s.label} spans {s.size} rows but network has {n_ports} ports"
                )
        self._n_ports = n_ports
        self._stages = stages
        self._name = name

    # -- basic shape ---------------------------------------------------

    @property
    def n_ports(self) -> int:
        """Number of input (and output) ports, ``N``."""
        return self._n_ports

    @property
    def n_stages(self) -> int:
        """Number of switching stages."""
        return len(self._stages)

    @property
    def n_levels(self) -> int:
        """Number of point levels (stages + 1)."""
        return len(self._stages) + 1

    @property
    def stages(self) -> tuple[Stage, ...]:
        """The stage descriptions, input side first."""
        return self._stages

    @property
    def name(self) -> str:
        """Topology name, e.g. ``"omega"``."""
        return self._name

    @property
    def radix(self) -> int:
        """Switch-module size (2 for all the paper's networks)."""
        return self._radix

    @property
    def n_switches(self) -> int:
        """Total number of switch modules in the network."""
        return self.n_stages * (self._n_ports // self._radix)

    @property
    def n_links(self) -> int:
        """Total number of inter-stage links (including output-column wires)."""
        return self.n_stages * self._n_ports

    def __repr__(self) -> str:
        return f"MultistageNetwork({self._name}, N={self._n_ports}, stages={self.n_stages})"

    # -- layered-graph navigation --------------------------------------

    def successors(self, level: int, row: int) -> tuple[Point, ...]:
        """The points a signal at ``(level, row)`` can drive."""
        check_stage(level, self.n_stages)
        check_port(row, self._n_ports, "row")
        return tuple((level + 1, r) for r in self._stages[level].successors(row))

    def predecessors(self, level: int, row: int) -> tuple[Point, ...]:
        """The points that can drive ``(level, row)`` (``level >= 1``)."""
        if level < 1:
            raise ValueError("level-0 points are network inputs and have no predecessors")
        check_stage(level, self.n_stages, inclusive=True)
        check_port(row, self._n_ports, "row")
        return tuple((level - 1, r) for r in self._stages[level - 1].predecessors(row))

    @cached_property
    def successor_table(self) -> np.ndarray:
        """Array ``[stage, row, side] -> next-level row`` for fast routing.

        The last axis has ``radix`` entries (2 for the paper's networks).
        """
        n, m, r = self.n_stages, self._n_ports, self._radix
        tab = np.empty((n, m, r), dtype=np.int64)
        for s, stage in enumerate(self._stages):
            rails = stage.pre.table
            post = stage.post.table
            base = (rails // r) * r
            for i in range(r):
                tab[s, :, i] = post[base + i]
        tab.setflags(write=False)
        return tab

    @cached_property
    def predecessor_table(self) -> np.ndarray:
        """Array ``[stage, row, side] -> previous-level row``."""
        n, m, r = self.n_stages, self._n_ports, self._radix
        tab = np.empty((n, m, r), dtype=np.int64)
        for s, stage in enumerate(self._stages):
            pre_inv = stage.pre.inverse.table
            rails = stage.post.inverse.table
            base = (rails // r) * r
            for i in range(r):
                tab[s, :, i] = pre_inv[base + i]
        tab.setflags(write=False)
        return tab

    # -- whole-network derived structure --------------------------------

    def straight_permutation(self) -> Permutation:
        """Input->output mapping when every switch is set straight.

        Omega and the indirect binary cube realize the identity; baseline
        realizes bit reversal.  Used as a regression oracle in tests.
        """
        perm = identity(self._n_ports)
        for stage in self._stages:
            # Straight switch: rail r out = rail r in, so the stage acts
            # as post∘pre on physical rows.
            perm = perm.then(stage.pre).then(stage.post)
        return perm

    def reachable_rows(self, level_from: int, row: int, level_to: int) -> frozenset[int]:
        """All rows at ``level_to`` reachable from ``(level_from, row)``."""
        check_stage(level_from, self.n_stages, inclusive=True)
        check_stage(level_to, self.n_stages, inclusive=True)
        if level_to < level_from:
            raise ValueError(f"cannot reach backward: {level_from} -> {level_to}")
        frontier = {row}
        tab = self.successor_table
        sides = range(tab.shape[2])
        for s in range(level_from, level_to):
            nxt: set[int] = set()
            for r in frontier:
                for i in sides:
                    nxt.add(int(tab[s, r, i]))
            frontier = nxt
        return frozenset(frontier)

    def co_reachable_rows(self, level_to: int, row: int, level_from: int) -> frozenset[int]:
        """All rows at ``level_from`` that can reach ``(level_to, row)``."""
        check_stage(level_from, self.n_stages, inclusive=True)
        check_stage(level_to, self.n_stages, inclusive=True)
        if level_to < level_from:
            raise ValueError(f"cannot reach backward: {level_from} -> {level_to}")
        frontier = {row}
        tab = self.predecessor_table
        sides = range(tab.shape[2])
        for s in range(level_to, level_from, -1):
            prev: set[int] = set()
            for r in frontier:
                for i in sides:
                    prev.add(int(tab[s - 1, r, i]))
            frontier = prev
        return frozenset(frontier)

    def reversed_network(self, name: "str | None" = None) -> "MultistageNetwork":
        """The mirror-image network (outputs become inputs).

        Reversing omega yields the flip network; reversing baseline
        yields the reverse baseline.  The reverse of a banyan network is
        banyan, which the property tests exploit.
        """
        rev = [
            Stage(pre=s.post.inverse, post=s.pre.inverse, label=f"rev-{s.label}", radix=s.radix)
            for s in reversed(self._stages)
        ]
        return MultistageNetwork(self._n_ports, rev, name=name or f"reverse-{self._name}")
