"""Structural property checkers for multistage networks.

These are the classical sanity properties of banyan-class networks.  The
library uses them two ways: the test suite asserts them for every
builder in the registry, and ``repro.analysis.equivalence`` uses the
digest machinery to demonstrate that baseline, omega and the indirect
binary cube are topologically equivalent (isomorphic as graphs) even
though their conference conflict behaviour differs.
"""

from __future__ import annotations

from collections import Counter

from repro.topology.graph import count_paths, forward_cone
from repro.topology.network import MultistageNetwork

__all__ = [
    "has_full_access",
    "is_banyan",
    "is_buddy",
    "stage_pairing_bits",
    "structure_digest",
]


def has_full_access(net: MultistageNetwork) -> bool:
    """True when every input can reach every output."""
    n = net.n_ports
    for src in range(n):
        if len(forward_cone(net, (0, src))[-1]) != n:
            return False
    return True


def is_banyan(net: MultistageNetwork) -> bool:
    """True when there is exactly one path between every input/output pair.

    The banyan property is what makes conference conflict multiplicity a
    *routing-independent* quantity for two-member conferences: the link
    set joining two ports is forced.
    """
    n = net.n_ports
    return all(count_paths(net, s, d) == 1 for s in range(n) for d in range(n))


def is_buddy(net: MultistageNetwork) -> bool:
    """True when the network has the buddy property.

    Buddy property: the two outputs of any switch at stage ``s`` feed the
    *same pair* of switches at stage ``s+1``.  All delta/banyan networks
    built from 2x2 switches with bijective wiring have it; it guarantees
    that forward cones double in size each stage until saturation.
    """
    for s in range(net.n_stages - 1):
        stage, nxt = net.stages[s], net.stages[s + 1]
        for sw in range(net.n_ports >> 1):
            _, (out_a, out_b) = stage.switch_io(sw)
            if nxt.switch_of_row(out_a) == nxt.switch_of_row(out_b):
                return False
    return True


def stage_pairing_bits(net: MultistageNetwork) -> "list[int | None]":
    """For each stage, the address bit its switches toggle, if any.

    A stage "toggles bit b" when every switch pairs physical rows
    differing exactly in bit ``b`` *and* its outputs return to the same
    two rows.  The indirect binary cube yields ``[0, 1, ..., n-1]``;
    omega and baseline yield ``None`` entries because their stages move
    signals across rows.  Used descriptively in reports.
    """
    bits: "list[int | None]" = []
    for stage in net.stages:
        stage_bit: "int | None" = None
        ok = True
        for sw in range(net.n_ports >> 1):
            (in_a, in_b), (out_a, out_b) = stage.switch_io(sw)
            if {in_a, in_b} != {out_a, out_b}:
                ok = False
                break
            diff = in_a ^ in_b
            if diff & (diff - 1):  # not a single bit
                ok = False
                break
            b = diff.bit_length() - 1
            if stage_bit is None:
                stage_bit = b
            elif stage_bit != b:
                ok = False
                break
        bits.append(stage_bit if ok else None)
    return bits


def structure_digest(net: MultistageNetwork) -> tuple:
    """A label-independent digest of the layered graph.

    Two networks with different digests are certainly not isomorphic;
    equal digests are strong (though not logically conclusive) evidence
    of equivalence.  Plain colour refinement is blind on these uniform
    2-in/2-out layered DAGs (every node at a level looks alike), so the
    digest instead records *path-convergence structure*: for every
    point, the profile of its forward-cone sizes per depth and its
    backward-cone sizes per height, histogrammed per level.  The
    degenerate always-same-pairs network (cones stuck at size 2) and any
    properly mixing banyan network (cones doubling) separate
    immediately, while relabelled-equivalent networks coincide.
    """
    from repro.topology.graph import backward_cone, forward_cone

    per_level: list[tuple] = []
    for lvl in range(net.n_levels):
        sigs = []
        for row in range(net.n_ports):
            fwd = tuple(len(c) for c in forward_cone(net, (lvl, row)))
            bwd = tuple(len(c) for c in backward_cone(net, (lvl, row)))
            sigs.append((fwd, bwd))
        per_level.append(tuple(sorted(Counter(sigs).items())))
    return tuple(per_level)
