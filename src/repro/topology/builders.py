"""Constructors for the classic banyan-class topologies.

The three networks named by the paper — baseline, omega, and indirect
binary cube — plus their reverses and a registry used by the benchmark
harness to sweep over topologies by name.

All builders produce :class:`~repro.topology.network.MultistageNetwork`
instances with ``n = log2(N)`` stages of 2x2 switches.  Known structural
facts are encoded as tests (see ``tests/topology``): all three are
banyan (unique input->output path), have full access, and are
topologically equivalent, yet their *conference* conflict behaviour
differs because equivalence relabels ports while conference membership
does not.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.topology.network import MultistageNetwork, Stage
from repro.topology.permutations import (
    bit_to_front,
    blockwise,
    identity,
    inverse_shuffle,
    perfect_shuffle,
)
from repro.util.validation import check_network_size

__all__ = [
    "omega",
    "baseline",
    "indirect_binary_cube",
    "flip",
    "reverse_baseline",
    "benes_cube",
    "extra_stage_cube",
    "radix_cube",
    "radix_delta",
    "TOPOLOGY_BUILDERS",
    "PAPER_TOPOLOGIES",
    "BANYAN_TOPOLOGIES",
    "build",
]


def omega(n_ports: int) -> MultistageNetwork:
    """The omega network: a perfect shuffle before every stage.

    Stage ``s`` pairs rows differing in the *most significant* address
    bit of their current position; the shuffle rotates a new bit into
    that position each stage.  With all switches straight the network
    realizes the identity permutation.
    """
    n = check_network_size(n_ports)
    shuffle = perfect_shuffle(n_ports)
    ident = identity(n_ports)
    stages = [Stage(pre=shuffle, post=ident, label=f"omega[{s}]") for s in range(n)]
    return MultistageNetwork(n_ports, stages, name="omega")


def baseline(n_ports: int) -> MultistageNetwork:
    """The baseline network of Wu and Feng.

    Recursive structure: the first stage's switch outputs are split by an
    inverse shuffle into two half-size baseline subnetworks, and so on.
    Stage ``s`` therefore pairs adjacent rows and spreads them with an
    inverse shuffle confined to blocks of size ``N / 2**s``.  With all
    switches straight the network realizes bit reversal.
    """
    n = check_network_size(n_ports)
    ident = identity(n_ports)
    stages = []
    for s in range(n):
        block = n_ports >> s
        post = blockwise(n_ports, block, inverse_shuffle) if block > 2 else ident
        stages.append(Stage(pre=ident, post=post, label=f"baseline[{s}]"))
    return MultistageNetwork(n_ports, stages, name="baseline")


def indirect_binary_cube(n_ports: int) -> MultistageNetwork:
    """The indirect binary n-cube network.

    Stage ``s`` pairs rows differing in address bit ``s`` (least
    significant dimension first), realized here by a bit-to-front
    pre-wiring and its inverse as post-wiring so physical rows persist
    across levels.  This is the substrate of the Yang-2001 conference
    network: a conference whose members share their top ``n - k``
    address bits is fully combined on every member row after ``k``
    stages.  With all switches straight the network realizes the
    identity permutation.
    """
    n = check_network_size(n_ports)
    stages = []
    for s in range(n):
        wiring = bit_to_front(n_ports, s)
        stages.append(Stage(pre=wiring, post=wiring.inverse, label=f"cube[{s}]"))
    return MultistageNetwork(n_ports, stages, name="indirect-binary-cube")


def flip(n_ports: int) -> MultistageNetwork:
    """The flip network: the mirror image of omega (unshuffle after each
    stage), included as an extension topology."""
    return omega(n_ports).reversed_network(name="flip")


def reverse_baseline(n_ports: int) -> MultistageNetwork:
    """The reverse baseline network, mirror image of baseline."""
    return baseline(n_ports).reversed_network(name="reverse-baseline")


def _cube_stages(n_ports: int, bit_order: "list[int]") -> MultistageNetwork:
    """Cube-style stages toggling the given address bits in order."""
    stages = []
    for i, b in enumerate(bit_order):
        wiring = bit_to_front(n_ports, b)
        stages.append(Stage(pre=wiring, post=wiring.inverse, label=f"cube-bit{b}[{i}]"))
    return MultistageNetwork(n_ports, stages, name="cube-sequence")


def benes_cube(n_ports: int) -> MultistageNetwork:
    """A Benes-style 2n-1 stage network (cube form): bits 0..n-1..0.

    Extension topology: non-banyan (multiple paths between most port
    pairs), which buys fault tolerance and routing freedom at the price
    of nearly doubling the stage count.  With earliest taps, conferences
    never enter the mirror half; the extra stages matter under faults
    and final-tap routing (experiment E1/E2).
    """
    n = check_network_size(n_ports)
    order = list(range(n)) + list(range(n - 2, -1, -1))
    if n == 1:
        order = [0]
    net = _cube_stages(n_ports, order)
    return MultistageNetwork(n_ports, net.stages, name="benes-cube")


def extra_stage_cube(n_ports: int) -> MultistageNetwork:
    """The classic single-extra-stage augmentation: bits 0..n-1, 0.

    One redundant dimension-0 stage, the textbook minimal fault-tolerant
    multistage network.
    """
    n = check_network_size(n_ports)
    net = _cube_stages(n_ports, list(range(n)) + [0])
    return MultistageNetwork(n_ports, net.stages, name="extra-stage-cube")


#: All topology constructors by canonical name.
TOPOLOGY_BUILDERS: dict[str, Callable[[int], MultistageNetwork]] = {
    "omega": omega,
    "baseline": baseline,
    "indirect-binary-cube": indirect_binary_cube,
    "flip": flip,
    "reverse-baseline": reverse_baseline,
    "benes-cube": benes_cube,
    "extra-stage-cube": extra_stage_cube,
}

#: The three topologies the paper asks its question about.
PAPER_TOPOLOGIES: tuple[str, ...] = ("baseline", "omega", "indirect-binary-cube")

#: The banyan-class members of the registry (log2(N) stages, unique paths).
BANYAN_TOPOLOGIES: tuple[str, ...] = (
    "baseline",
    "omega",
    "indirect-binary-cube",
    "flip",
    "reverse-baseline",
)


def build(name: str, n_ports: int) -> MultistageNetwork:
    """Build a topology by registry name.

    Raises ``KeyError`` with the list of known names on a miss so CLI
    users see their options.
    """
    try:
        builder = TOPOLOGY_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGY_BUILDERS))
        raise KeyError(f"unknown topology {name!r}; known: {known}") from None
    return builder(n_ports)


def radix_delta(n_ports: int, radix: int) -> MultistageNetwork:
    """A radix-``r`` delta (omega-like) network: ``N = r**n``, ``n``
    stages of ``r x r`` switches behind digit shuffles.

    The radix generalization of :func:`omega`; ``radix_delta(N, 2)`` is
    wired identically to ``omega(N)``.
    """
    from repro.topology.permutations import digit_count, digit_shuffle

    n = digit_count(n_ports, radix)
    shuffle = digit_shuffle(n_ports, radix)
    ident = identity(n_ports)
    stages = [
        Stage(pre=shuffle, post=ident, label=f"delta[{s}]", radix=radix)
        for s in range(n)
    ]
    return MultistageNetwork(n_ports, stages, name=f"delta-r{radix}")


def radix_cube(n_ports: int, radix: int) -> MultistageNetwork:
    """The radix-``r`` generalization of the indirect binary cube.

    Stage ``s`` groups rows differing only in base-``r`` digit ``s``
    onto one ``r x r`` switch, least significant digit first; physical
    rows persist across levels exactly as in the binary cube, so the
    same aligned-block (now radix-``r`` block) locality holds.
    ``radix_cube(N, 2)`` is wired identically to
    :func:`indirect_binary_cube`.
    """
    from repro.topology.permutations import digit_count, digit_to_front

    n = digit_count(n_ports, radix)
    stages = []
    for s in range(n):
        wiring = digit_to_front(n_ports, radix, s)
        stages.append(
            Stage(pre=wiring, post=wiring.inverse, label=f"cube-r{radix}[{s}]", radix=radix)
        )
    return MultistageNetwork(n_ports, stages, name=f"cube-r{radix}")
