"""Multistage interconnection network substrate.

Defines the generic layered network model, the paper's three topologies
(baseline, omega, indirect binary cube) plus reverses, graph algorithms
over the layered DAG, and structural property checkers.
"""

from repro.topology.builders import (
    BANYAN_TOPOLOGIES,
    PAPER_TOPOLOGIES,
    benes_cube,
    extra_stage_cube,
    TOPOLOGY_BUILDERS,
    baseline,
    build,
    flip,
    indirect_binary_cube,
    omega,
    reverse_baseline,
)
from repro.topology.graph import (
    all_paths,
    backward_cone,
    count_paths,
    forward_cone,
    to_networkx,
    unique_path,
)
from repro.topology.network import MultistageNetwork, Point, Stage
from repro.topology.permutations import (
    Permutation,
    bit_reversal,
    bit_to_front,
    blockwise,
    butterfly,
    compose,
    from_mapping,
    identity,
    inverse_shuffle,
    perfect_shuffle,
)
from repro.topology.unicast import (
    count_passable_permutations,
    destination_tag_path,
    is_permutation_passable,
    route_permutation,
)
from repro.topology.properties import (
    has_full_access,
    is_banyan,
    is_buddy,
    stage_pairing_bits,
    structure_digest,
)

__all__ = [
    "BANYAN_TOPOLOGIES",
    "PAPER_TOPOLOGIES",
    "benes_cube",
    "count_passable_permutations",
    "destination_tag_path",
    "extra_stage_cube",
    "is_permutation_passable",
    "route_permutation",
    "TOPOLOGY_BUILDERS",
    "MultistageNetwork",
    "Permutation",
    "Point",
    "Stage",
    "all_paths",
    "backward_cone",
    "baseline",
    "bit_reversal",
    "bit_to_front",
    "blockwise",
    "build",
    "butterfly",
    "compose",
    "count_paths",
    "flip",
    "forward_cone",
    "from_mapping",
    "has_full_access",
    "identity",
    "indirect_binary_cube",
    "inverse_shuffle",
    "is_banyan",
    "is_buddy",
    "omega",
    "perfect_shuffle",
    "reverse_baseline",
    "stage_pairing_bits",
    "structure_digest",
    "to_networkx",
    "unique_path",
]
