"""Classic unicast and permutation routing on the MIN substrate.

The paper's networks are, underneath the conference machinery, ordinary
multistage interconnection networks.  This module implements the
textbook capabilities — destination-tag self-routing of single
connections and permutation admissibility — both because a conference
library built on a MIN should expose them and because they provide
independent oracles for the test suite (e.g. the omega-passable
permutation criterion cross-checks the wiring).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.topology.graph import unique_path
from repro.topology.network import MultistageNetwork, Point
from repro.topology.properties import is_banyan
from repro.util.bits import ilog2
from repro.util.validation import check_port

__all__ = [
    "destination_tag_path",
    "route_permutation",
    "is_permutation_passable",
    "count_passable_permutations",
]


def destination_tag_path(net: MultistageNetwork, source: int, dest: int) -> tuple[Point, ...]:
    """The self-routed unicast path from ``source`` to ``dest``.

    On a banyan network this is exactly the unique path; the function
    exists (rather than aliasing :func:`unique_path`) to document the
    self-routing claim: at stage ``s`` the switch decision is the single
    output rail from which ``dest`` remains reachable, computable
    locally.  Verified to match the global unique path by construction.
    """
    check_port(source, net.n_ports, "source")
    check_port(dest, net.n_ports, "dest")
    path: list[Point] = [(0, source)]
    level, row = 0, source
    for s in range(net.n_stages):
        chosen = None
        for candidate in net.successors(level, row):
            if dest in net.reachable_rows(level + 1, candidate[1], net.n_stages):
                chosen = candidate
                break
        if chosen is None:
            raise ValueError(f"dest {dest} unreachable from ({level}, {row}) in {net.name}")
        path.append(chosen)
        level, row = chosen
    if row != dest:
        raise AssertionError("destination-tag routing ended on the wrong row")
    return tuple(path)


def route_permutation(
    net: MultistageNetwork, permutation: Sequence[int]
) -> "dict[Point, int] | None":
    """Try to route the full permutation ``i -> permutation[i]`` at once.

    Returns ``link -> source`` when every unicast path is link-disjoint
    (the permutation is *passable* in one pass), or ``None`` when two
    connections collide — the classic blocking behaviour of banyan
    networks, and the reason the paper's conference problem needs the
    multiplicity analysis in the first place.
    """
    n = net.n_ports
    if sorted(permutation) != list(range(n)):
        raise ValueError("not a permutation of the port range")
    if not is_banyan(net):
        raise ValueError("permutation passability is defined here for banyan networks")
    owner: dict[Point, int] = {}
    for src in range(n):
        for point in unique_path(net, src, permutation[src])[1:]:
            if point in owner:
                return None
            owner[point] = src
    return owner


def is_permutation_passable(net: MultistageNetwork, permutation: Sequence[int]) -> bool:
    """True when the permutation routes without link conflicts."""
    return route_permutation(net, permutation) is not None


def count_passable_permutations(net: MultistageNetwork) -> int:
    """Count the permutations an N-port banyan network passes (small N!).

    A banyan network has ``N/2 * log2 N`` switches and hence at most
    ``2**(N/2 * log2 N)`` states, far fewer than ``N!`` for large N —
    the counting argument for why banyans block.  Exhaustive, so only
    sensible for ``N <= 8``.
    """
    from itertools import permutations as iter_perms

    n = net.n_ports
    ilog2(n)
    if n > 8:
        raise ValueError("exhaustive permutation count limited to N <= 8")
    return sum(1 for p in iter_perms(range(n)) if is_permutation_passable(net, p))
