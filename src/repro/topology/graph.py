"""Layered-graph algorithms over a multistage network.

The routing and analysis code views a network as a DAG of points
``(level, row)``.  This module holds the generic graph machinery: path
finding/counting, forward and backward cones, and a networkx export used
by visual inspection tools and a few property tests.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.topology.network import MultistageNetwork, Point
from repro.util.validation import check_port, check_stage

__all__ = [
    "forward_cone",
    "backward_cone",
    "count_paths",
    "unique_path",
    "all_paths",
    "to_networkx",
]


def forward_cone(net: MultistageNetwork, source: Point) -> list[frozenset[int]]:
    """Rows reachable from ``source`` at each level ``source.level..n``.

    Returns a list indexed from 0 where entry ``d`` is the reachable row
    set at level ``source_level + d``; entry 0 is ``{source_row}``.
    """
    level, row = source
    check_stage(level, net.n_stages, inclusive=True)
    check_port(row, net.n_ports, "row")
    tab = net.successor_table
    sides = range(tab.shape[2])
    cones = [frozenset({row})]
    frontier = {row}
    for s in range(level, net.n_stages):
        nxt: set[int] = set()
        for r in frontier:
            for i in sides:
                nxt.add(int(tab[s, r, i]))
        frontier = nxt
        cones.append(frozenset(frontier))
    return cones


def backward_cone(net: MultistageNetwork, sink: Point) -> list[frozenset[int]]:
    """Rows that can reach ``sink``, per level ``0..sink.level``.

    Entry ``t`` of the returned list is the set of rows at level ``t``
    from which ``sink`` is reachable; the last entry is ``{sink_row}``.
    """
    level, row = sink
    check_stage(level, net.n_stages, inclusive=True)
    check_port(row, net.n_ports, "row")
    tab = net.predecessor_table
    sides = range(tab.shape[2])
    cones = [frozenset({row})]
    frontier = {row}
    for s in range(level, 0, -1):
        prev: set[int] = set()
        for r in frontier:
            for i in sides:
                prev.add(int(tab[s - 1, r, i]))
        frontier = prev
        cones.append(frozenset(frontier))
    cones.reverse()
    return cones


def count_paths(net: MultistageNetwork, source: int, dest: int) -> int:
    """Number of distinct input->output paths from port ``source`` to ``dest``.

    Banyan networks have exactly one for every (source, dest) pair; the
    property checker uses this directly.
    """
    check_port(source, net.n_ports, "source")
    check_port(dest, net.n_ports, "dest")
    tab = net.successor_table
    counts = np.zeros(net.n_ports, dtype=np.int64)
    counts[source] = 1
    for s in range(net.n_stages):
        nxt = np.zeros(net.n_ports, dtype=np.int64)
        active = np.nonzero(counts)[0]
        for i in range(tab.shape[2]):
            np.add.at(nxt, tab[s, active, i], counts[active])
        counts = nxt
    return int(counts[dest])


def unique_path(net: MultistageNetwork, source: int, dest: int) -> tuple[Point, ...]:
    """The unique path from input ``source`` to output ``dest``.

    Only valid on banyan networks; raises ``ValueError`` when zero or
    multiple paths exist.  The returned tuple runs from ``(0, source)``
    to ``(n_stages, dest)`` inclusive.
    """
    paths = all_paths(net, source, dest)
    if len(paths) != 1:
        raise ValueError(
            f"expected a unique path {source}->{dest} in {net.name}, found {len(paths)}"
        )
    return paths[0]


def all_paths(net: MultistageNetwork, source: int, dest: int) -> list[tuple[Point, ...]]:
    """All input->output paths from ``source`` to ``dest``."""
    check_port(source, net.n_ports, "source")
    check_port(dest, net.n_ports, "dest")
    # Intersect forward cone of the source with backward cone of the dest,
    # then enumerate by DFS restricted to surviving points.
    fwd = forward_cone(net, (0, source))
    bwd = backward_cone(net, (net.n_stages, dest))
    alive = [fwd[t] & bwd[t] for t in range(net.n_levels)]
    if not alive[0] or not alive[-1]:
        return []
    tab = net.successor_table
    results: list[tuple[Point, ...]] = []

    def extend(prefix: list[Point]) -> None:
        level, row = prefix[-1]
        if level == net.n_stages:
            results.append(tuple(prefix))
            return
        for side in range(tab.shape[2]):
            nxt = int(tab[level, row, side])
            if nxt in alive[level + 1]:
                prefix.append((level + 1, nxt))
                extend(prefix)
                prefix.pop()

    extend([(0, source)])
    # Broadcast switches can reach the same next row via both outputs of
    # a switch only if post-wiring merged rails, which Stage forbids
    # (post is a bijection), so DFS cannot emit duplicates.
    return results


def to_networkx(net: MultistageNetwork) -> nx.DiGraph:
    """Export the layered point graph as a ``networkx.DiGraph``.

    Nodes are ``(level, row)`` tuples; edges carry the stage index as the
    attribute ``stage`` and the driving switch as ``switch``.
    """
    g = nx.DiGraph(name=net.name, n_ports=net.n_ports, n_stages=net.n_stages)
    tab = net.successor_table
    for s, stage in enumerate(net.stages):
        for row in range(net.n_ports):
            for side in range(tab.shape[2]):
                g.add_edge(
                    (s, row),
                    (s + 1, int(tab[s, row, side])),
                    stage=s,
                    switch=stage.switch_of_row(row),
                )
    return g
