"""Routing-conflict accounting — the paper's key quantity.

When multiple disjoint conferences are present, their routes may need
the same inter-stage link.  The *multiplicity of routing conflicts* is
the maximum number of conferences competing for one link; it dictates
how much link dilation (or time multiplexing) the fabric needs.  This
module turns a collection of routes into link-load maps, per-stage
profiles and summary reports.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.routing import Route
from repro.topology.network import Point

__all__ = ["link_loads", "ConflictReport", "analyze_conflicts"]


def link_loads(routes: Iterable[Route]) -> Counter:
    """Count, per inter-stage link, the conferences using it.

    Keys are points ``(level, row)`` with ``level >= 1``; a value of 1
    means exclusive use (no conflict).
    """
    loads: Counter = Counter()
    for route in routes:
        loads.update(route.links)
    return loads


@dataclass(frozen=True)
class ConflictReport:
    """Summary of link contention among a set of routes.

    ``stage_profile[t]`` is the worst load on any link entering stage
    ``t + 1`` — index 0 describes the links after the first stage, which
    matches the theory module's ``f(t)`` with ``t = index + 1``.
    """

    n_conferences: int
    n_stages: int
    max_multiplicity: int
    worst_link: "Point | None"
    stage_profile: tuple[int, ...]
    load_histogram: tuple[tuple[int, int], ...]
    total_links_used: int

    @property
    def conflict_free(self) -> bool:
        """True when no link is shared (multiplicity <= 1)."""
        return self.max_multiplicity <= 1

    @property
    def required_dilation(self) -> int:
        """Link dilation needed to carry all conferences at once."""
        return max(self.max_multiplicity, 1)

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        hist = ", ".join(f"{load}x:{count}" for load, count in self.load_histogram)
        return (
            f"{self.n_conferences} conferences, max multiplicity "
            f"{self.max_multiplicity} (worst link {self.worst_link}), "
            f"per-stage profile {list(self.stage_profile)}, "
            f"link-load histogram [{hist}]"
        )


def analyze_conflicts(routes: Sequence[Route], n_stages: "int | None" = None) -> ConflictReport:
    """Build a :class:`ConflictReport` for a collection of routes.

    ``n_stages`` defaults to the routes' own stage count; it must be
    given for an empty collection.
    """
    routes = list(routes)
    if n_stages is None:
        if not routes:
            raise ValueError("n_stages is required for an empty route collection")
        n_stages = routes[0].n_stages
    for r in routes:
        if r.n_stages != n_stages:
            raise ValueError("routes come from networks with different stage counts")

    loads = link_loads(routes)
    profile = [0] * n_stages
    worst: "Point | None" = None
    worst_load = 0
    for (level, row), load in loads.items():
        stage_idx = level - 1
        if load > profile[stage_idx]:
            profile[stage_idx] = load
        if load > worst_load or (load == worst_load and worst is not None and (level, row) < worst):
            worst, worst_load = (level, row), load
    histogram = Counter(loads.values())
    return ConflictReport(
        n_conferences=len(routes),
        n_stages=n_stages,
        max_multiplicity=worst_load,
        worst_link=worst,
        stage_profile=tuple(profile),
        load_histogram=tuple(sorted(histogram.items())),
        total_links_used=len(loads),
    )
