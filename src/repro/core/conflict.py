"""Routing-conflict accounting — the paper's key quantity.

When multiple disjoint conferences are present, their routes may need
the same inter-stage link.  The *multiplicity of routing conflicts* is
the maximum number of conferences competing for one link; it dictates
how much link dilation (or time multiplexing) the fabric needs.  This
module turns a collection of routes into link-load maps, per-stage
profiles and summary reports.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.routing import Route
from repro.topology.network import Point

__all__ = ["link_loads", "ConflictReport", "analyze_conflicts"]


def link_loads(routes: Iterable[Route]) -> Counter:
    """Count, per inter-stage link, the conferences using it.

    Keys are points ``(level, row)`` with ``level >= 1``; a value of 1
    means exclusive use (no conflict).
    """
    loads: Counter = Counter()
    for route in routes:
        loads.update(route.links)
    return loads


@dataclass(frozen=True)
class ConflictReport:
    """Summary of link contention among a set of routes.

    ``stage_profile[t]`` is the worst load on any link entering stage
    ``t + 1`` — index 0 describes the links after the first stage, which
    matches the theory module's ``f(t)`` with ``t = index + 1``.
    """

    n_conferences: int
    n_stages: int
    max_multiplicity: int
    worst_link: "Point | None"
    stage_profile: tuple[int, ...]
    load_histogram: tuple[tuple[int, int], ...]
    total_links_used: int

    @property
    def conflict_free(self) -> bool:
        """True when no link is shared (multiplicity <= 1)."""
        return self.max_multiplicity <= 1

    @property
    def required_dilation(self) -> int:
        """Link dilation needed to carry all conferences at once."""
        return max(self.max_multiplicity, 1)

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        hist = ", ".join(f"{load}x:{count}" for load, count in self.load_histogram)
        return (
            f"{self.n_conferences} conferences, max multiplicity "
            f"{self.max_multiplicity} (worst link {self.worst_link}), "
            f"per-stage profile {list(self.stage_profile)}, "
            f"link-load histogram [{hist}]"
        )


def analyze_conflicts(routes: Sequence[Route], n_stages: "int | None" = None) -> ConflictReport:
    """Build a :class:`ConflictReport` for a collection of routes.

    ``n_stages`` defaults to the routes' own stage count; it must be
    given for an empty collection.

    The accounting itself is the columnar stage-major load matrix of
    :func:`repro.core.batch.analyze_conflicts_columnar` — this name is
    the stable spelling, that one is the implementation (the original
    Counter walk survives only as a reference oracle in the test
    suite, which holds the two field-for-field equal, worst-link
    tie-break included).
    """
    from repro.core.batch import analyze_conflicts_columnar

    return analyze_conflicts_columnar(list(routes), n_stages=n_stages)
