"""The conference network — the paper's object of study.

A :class:`ConferenceNetwork` bundles a multistage topology, the
per-output multiplexer relay, a routing policy and a link dilation into
one facade: route conferences, measure conflicts, and verify delivery on
the simulated hardware.  This is the main entry point of the library::

    from repro import ConferenceNetwork

    net = ConferenceNetwork.build("omega", 64)
    routes = net.route_set(ConferenceSet.of(64, [[0, 5, 9], [12, 13]]))
    report = net.conflicts(routes)
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.batch import route_batch as _batch_route
from repro.core.conference import Conference, ConferenceSet
from repro.core.conflict import ConflictReport, analyze_conflicts
from repro.core.routing import Route, RoutingPolicy, TapPolicy, route_conference
from repro.switching.fabric import DeliveryReport, Fabric
from repro.topology.builders import build as build_topology
from repro.topology.network import MultistageNetwork

__all__ = ["ConferenceNetwork", "RealizationResult"]


@dataclass(frozen=True)
class RealizationResult:
    """Routes plus their conflict and hardware-delivery reports.

    Implements the shared result contract of :data:`repro.api.Result`:
    ``ok`` / ``reason`` / ``as_dict`` — the same shape healing
    :class:`~repro.core.healing.SubmitOutcome` values and
    :class:`~repro.serve.protocol.ServiceResponse` responses expose, so
    one serializer (``repro.report.serialize.result_to_dict``) renders
    all of them.
    """

    routes: tuple[Route, ...]
    conflicts: ConflictReport
    delivery: DeliveryReport

    @property
    def ok(self) -> bool:
        """True when every member heard its full conference."""
        return self.delivery.correct

    @property
    def reason(self) -> "str | None":
        """Why the realization failed (``None`` when it succeeded)."""
        if self.ok:
            return None
        return f"delivery: {len(self.delivery.errors)} member(s) heard a wrong mix"

    def as_dict(self) -> dict:
        """A JSON-ready summary (the shared result-serializer contract)."""
        return {
            "kind": "realization",
            "ok": self.ok,
            "reason": self.reason,
            "n_conferences": self.conflicts.n_conferences,
            "max_multiplicity": self.conflicts.max_multiplicity,
            "conflict_free": self.conflicts.conflict_free,
            "peak_link_load": self.delivery.peak_link_load,
            "errors": list(self.delivery.errors),
        }


class ConferenceNetwork:
    """A multistage conference switching network.

    Parameters
    ----------
    topology:
        A built :class:`MultistageNetwork` (see
        ``repro.topology.builders``) or use :meth:`build` by name.
    policy:
        Routing policy; the default uses the earliest-tap mux relay.
    dilation:
        Channels per inter-stage link.  Routing a conference set whose
        conflict multiplicity exceeds the dilation raises
        :class:`~repro.switching.fabric.CapacityExceeded` during
        :meth:`realize`.
    relay_enabled:
        Whether the Yang-2001 per-stage output multiplexers exist.  When
        off, the policy is forced to final-stage taps.
    """

    def __init__(
        self,
        topology: MultistageNetwork,
        policy: "RoutingPolicy | None" = None,
        dilation: int = 1,
        relay_enabled: bool = True,
    ):
        self._topology = topology
        if policy is None:
            policy = RoutingPolicy(
                tap_policy=TapPolicy.EARLIEST if relay_enabled else TapPolicy.FINAL
            )
        if not relay_enabled and policy.tap_policy is not TapPolicy.FINAL:
            raise ValueError("early taps require the mux relay; pass TapPolicy.FINAL")
        self._policy = policy
        self._relay_enabled = relay_enabled
        self._fabric = Fabric(topology, dilation=dilation, relay_enabled=relay_enabled)

    @classmethod
    def build(
        cls,
        topology_name: str,
        n_ports: int,
        policy: "RoutingPolicy | None" = None,
        dilation: int = 1,
        relay_enabled: bool = True,
    ) -> "ConferenceNetwork":
        """Construct a conference network from a topology registry name."""
        return cls(
            build_topology(topology_name, n_ports),
            policy=policy,
            dilation=dilation,
            relay_enabled=relay_enabled,
        )

    # -- introspection ---------------------------------------------------

    @property
    def topology(self) -> MultistageNetwork:
        """The underlying multistage network."""
        return self._topology

    @property
    def n_ports(self) -> int:
        """Number of conference ports."""
        return self._topology.n_ports

    @property
    def n_stages(self) -> int:
        """Number of switching stages."""
        return self._topology.n_stages

    @property
    def policy(self) -> RoutingPolicy:
        """The routing policy in force."""
        return self._policy

    @property
    def dilation(self) -> int:
        """Channels per inter-stage link."""
        return self._fabric.dilation

    @property
    def relay_enabled(self) -> bool:
        """Whether per-stage output multiplexers are present."""
        return self._relay_enabled

    @property
    def fabric(self) -> Fabric:
        """The simulated hardware fabric."""
        return self._fabric

    def __repr__(self) -> str:
        return (
            f"ConferenceNetwork({self._topology.name}, N={self.n_ports}, "
            f"dilation={self.dilation}, relay={'on' if self._relay_enabled else 'off'})"
        )

    # -- routing ----------------------------------------------------------

    def route(
        self,
        conference: "Conference | Iterable[int]",
        faults: "frozenset | None" = None,
    ) -> Route:
        """Route a single conference (members may be given as bare ports).

        ``faults`` is an optional set of dead points ``(level, row)``;
        routing then uses only surviving paths and taps (see
        ``repro.core.routing.route_conference``).
        """
        if not isinstance(conference, Conference):
            conference = Conference.of(conference)
        return route_conference(self._topology, conference, self._policy, faults=faults)

    def route_set(self, conferences: "ConferenceSet | Iterable[Iterable[int]]") -> tuple[Route, ...]:
        """Route every conference of a disjoint set; order is preserved."""
        conferences = self._coerce_set(conferences)
        return tuple(self.route(conf) for conf in conferences)

    def route_batch(
        self,
        conferences: "ConferenceSet | Iterable[Iterable[int]]",
    ) -> tuple[Route, ...]:
        """Route a disjoint set in one columnar pass; order is preserved.

        The batched equivalent of :meth:`route_set`: the bitset kernel
        (:func:`repro.core.batch.route_batch`) evaluates every
        conference's layered graph stage by stage with numpy columnar
        state, returning routes **byte-identical** to the sequential
        path, and raises the same error the first failing conference's
        :meth:`route` call would have raised.
        """
        conferences = self._coerce_set(conferences)
        outcomes = _batch_route(self._topology, list(conferences), self._policy)
        return tuple(outcome.unwrap() for outcome in outcomes)

    def conflicts(self, routes: Sequence[Route]) -> ConflictReport:
        """Conflict analysis of already-computed routes."""
        return analyze_conflicts(routes, n_stages=self.n_stages)

    def realize(
        self, conferences: "ConferenceSet | Iterable[Iterable[int]]"
    ) -> RealizationResult:
        """Route, conflict-check and hardware-simulate a conference set.

        Raises :class:`~repro.switching.fabric.CapacityExceeded` when the
        set needs more link channels than the configured dilation.
        """
        conferences = self._coerce_set(conferences)
        routes = self.route_set(conferences)
        conflicts = analyze_conflicts(routes, n_stages=self.n_stages)
        delivery = self._fabric.simulate(routes)
        return RealizationResult(routes=routes, conflicts=conflicts, delivery=delivery)

    def _coerce_set(
        self, conferences: "ConferenceSet | Iterable[Iterable[int]]"
    ) -> ConferenceSet:
        if isinstance(conferences, ConferenceSet):
            if conferences.n_ports != self.n_ports:
                raise ValueError(
                    f"conference set sized for {conferences.n_ports} ports, "
                    f"network has {self.n_ports}"
                )
            return conferences
        return ConferenceSet.of(self.n_ports, conferences)
