"""Member churn: people joining and leaving a live conference.

Teleconferences are not static — members dial in and drop off while the
call runs.  This module reroutes a conference across a membership change
and reports the *disruption*: which links must be torn down or newly
claimed, and whether continuing members' output taps move (a moved tap
is an audible glitch and a mux reprogram; an unmoved tap is hitless).

Key structural fact this exposes: on the indirect binary cube a join
that stays inside the current enclosing block is hitless for everyone
(taps stay at level ``K``), while a join that grows the block moves
*every* member's tap — the cost of the cube's otherwise-ideal block
locality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.conference import Conference
from repro.core.routing import Route, RoutingPolicy, route_conference
from repro.topology.network import MultistageNetwork, Point

__all__ = ["ChurnResult", "apply_churn", "join_member", "leave_member"]


@dataclass(frozen=True)
class ChurnResult:
    """Before/after routes of a membership change plus the diff.

    ``links_added``/``links_removed`` are the fabric reconfiguration;
    ``taps_moved`` maps each continuing member whose mux selection
    changed to its (old level, new level) pair.
    """

    before: Route
    after: Route
    links_added: frozenset[Point]
    links_removed: frozenset[Point]
    taps_moved: dict[int, tuple[int, int]]

    @property
    def hitless(self) -> bool:
        """True when no continuing member's tap moved."""
        return not self.taps_moved

    @property
    def reconfigured_links(self) -> int:
        """Total links touched by the change."""
        return len(self.links_added) + len(self.links_removed)


def apply_churn(
    net: MultistageNetwork,
    route: Route,
    new_members: "tuple[int, ...] | list[int]",
    policy: "RoutingPolicy | None" = None,
) -> ChurnResult:
    """Reroute ``route``'s conference with a new member tuple.

    The conference id is preserved; ``new_members`` must be non-empty.
    Returns the change set relative to the old route.
    """
    new_conf = Conference.of(new_members, conference_id=route.conference.conference_id)
    after = route_conference(net, new_conf, policy)
    continuing = set(route.conference.members) & set(new_conf.members)
    taps_moved = {
        port: (route.taps[port], after.taps[port])
        for port in sorted(continuing)
        if route.taps[port] != after.taps[port]
    }
    return ChurnResult(
        before=route,
        after=after,
        links_added=after.links - route.links,
        links_removed=route.links - after.links,
        taps_moved=taps_moved,
    )


def join_member(
    net: MultistageNetwork,
    route: Route,
    port: int,
    policy: "RoutingPolicy | None" = None,
) -> ChurnResult:
    """Add one member to a live conference."""
    if port in route.conference.members:
        raise ValueError(f"port {port} is already a member")
    return apply_churn(net, route, route.conference.members + (port,), policy)


def leave_member(
    net: MultistageNetwork,
    route: Route,
    port: int,
    policy: "RoutingPolicy | None" = None,
) -> ChurnResult:
    """Remove one member from a live conference (at least one must stay)."""
    remaining = tuple(m for m in route.conference.members if m != port)
    if len(remaining) == len(route.conference.members):
        raise ValueError(f"port {port} is not a member")
    if not remaining:
        raise ValueError("cannot remove the last member; tear the conference down instead")
    return apply_churn(net, route, remaining, policy)
