"""Member churn: people joining and leaving a live conference.

Teleconferences are not static — members dial in and drop off while the
call runs.  This module grows and shrinks a live route *incrementally*
(:func:`extend_route` / :func:`prune_route`) and reports the
*disruption*: which links must be torn down or newly claimed, and
whether continuing members' output taps move (a moved tap is an audible
glitch and a mux reprogram; an unmoved tap is hitless).

Incremental vs full semantics
-----------------------------

:func:`extend_route` re-sweeps forward reachability for the enlarged
member set but *pins* every continuing member's current tap, keeping it
whenever the full new combination still arrives there.  On the indirect
binary cube an in-block join therefore stays hitless for everyone (taps
stay at the block's level ``K``) and the old tree is reused as a
subtree; only a join that grows the enclosing block moves taps.  Pins
also preserve fault-era tap choices, so a long-extended route can hold
more links than a fresh routing of the same members would — that
surplus is reported as ``drift_links`` (the extra links are extra
conflict opportunities against other conferences, hence
"conflict-multiplicity drift"), and ``drift_limit`` demotes the change
to a full re-route-from-scratch when it grows past the knob.

:func:`prune_route` re-taps every survivor at the earliest level where
the remaining combination is complete, releasing the links that served
only the leaver (and reclaiming depth the leaver forced).  An in-block
leave keeps every tap in place; shrinking below the natural route is
how ``prune_route(extend_route(r, p), p)`` restores ``r`` exactly.

Either way the :class:`ChurnResult` diff is *exact*: a delta-aware
fabric reprograms only ``links_added | links_removed`` links, whereas a
full reroute reinstalls the whole tree (every link of the old and new
routes is touched — see :attr:`ChurnResult.links_touched`).  Full
reroute remains available as :func:`apply_churn` and is the explicit
fallback when an incremental step would exceed ``max_taps_moved`` or
``drift_limit``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable

from repro.core.conference import Conference
from repro.core.routing import (
    Route,
    RoutingPolicy,
    route_conference,
    _backward_mark,
    _carried_masks,
    _forward_masks,
    _select_taps,
)
from repro.topology.network import MultistageNetwork, Point

__all__ = [
    "ChurnLimitExceeded",
    "ChurnPolicy",
    "ChurnResult",
    "apply_churn",
    "extend_route",
    "join_member",
    "leave_member",
    "prune_route",
]


class ChurnLimitExceeded(RuntimeError):
    """An incremental step violated a churn limit and ``fallback="raise"``.

    Raised instead of silently rerouting when the caller asked for hard
    limits (``max_taps_moved`` / ``drift_limit``) with no fallback; the
    ``reason`` attribute carries the machine-readable trigger.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class ChurnPolicy:
    """How the service layer applies membership changes.

    ``incremental`` routes joins/leaves through
    :func:`extend_route`/:func:`prune_route`; when false every change is
    a full reroute (the pre-1.6 behavior, kept as an ablation arm).
    ``max_taps_moved`` and ``drift_limit`` demote an incremental step to
    the ``fallback`` (``"reroute"`` or ``"raise"``) when it would move
    more taps than allowed or leave the route holding more than
    ``drift_limit`` surplus links over a fresh routing.
    """

    incremental: bool = True
    max_taps_moved: "int | None" = None
    drift_limit: "int | None" = None
    fallback: str = "reroute"

    def __post_init__(self) -> None:
        if self.fallback not in ("reroute", "raise"):
            raise ValueError(f"unknown churn fallback {self.fallback!r}")
        if self.max_taps_moved is not None and self.max_taps_moved < 0:
            raise ValueError("max_taps_moved must be >= 0")
        if self.drift_limit is not None and self.drift_limit < 0:
            raise ValueError("drift_limit must be >= 0")


@dataclass(frozen=True)
class ChurnResult:
    """Before/after routes of a membership change plus the diff.

    ``links_added``/``links_removed`` are the fabric reconfiguration;
    ``taps_moved`` maps each continuing member whose mux selection
    changed to its (old level, new level) pair.  ``mode`` says how the
    change was computed (``"incremental"`` or ``"full-reroute"``),
    ``drift_links`` how many surplus links the result holds over a
    fresh routing of the same members, and ``fallback_reason`` why an
    incremental step was demoted (``None`` when it was not).
    """

    before: Route
    after: Route
    links_added: frozenset[Point]
    links_removed: frozenset[Point]
    taps_moved: dict[int, tuple[int, int]]
    mode: str = "incremental"
    drift_links: int = 0
    fallback_reason: "str | None" = None

    @property
    def hitless(self) -> bool:
        """True when no continuing member's tap moved."""
        return not self.taps_moved

    @property
    def reconfigured_links(self) -> int:
        """Size of the exact diff (links added plus links removed)."""
        return len(self.links_added) + len(self.links_removed)

    @property
    def links_touched(self) -> int:
        """Links the fabric must reprogram to apply this change.

        An incremental change touches exactly the diff; a full reroute
        reinstalls the whole tree, touching every link of the old and
        new routes even where they coincide.
        """
        if self.mode == "incremental":
            return self.reconfigured_links
        return len(self.before.links | self.after.links)

    # -- Result protocol -------------------------------------------------

    @property
    def ok(self) -> bool:
        """A constructed churn result always describes an applied change."""
        return True

    @property
    def reason(self) -> "str | None":
        return None

    def as_dict(self) -> dict:
        """JSON-ready summary (the routes themselves are elided)."""
        return {
            "kind": "churn",
            "ok": True,
            "reason": None,
            "conference_id": self.after.conference.conference_id,
            "mode": self.mode,
            "hitless": self.hitless,
            "links_added": len(self.links_added),
            "links_removed": len(self.links_removed),
            "links_touched": self.links_touched,
            "taps_moved": len(self.taps_moved),
            "drift_links": self.drift_links,
            "fallback_reason": self.fallback_reason,
            "members": len(self.after.conference.members),
            "depth": self.after.depth,
        }


def _ports_tuple(port_or_ports: "int | Iterable[int]") -> tuple[int, ...]:
    """Normalize a single port or an iterable of ports to a sorted tuple."""
    if isinstance(port_or_ports, int):
        return (port_or_ports,)
    ports = tuple(sorted(set(port_or_ports)))
    if not ports:
        raise ValueError("no ports given")
    return ports


def _diff(
    before: Route,
    after: Route,
    *,
    mode: str,
    drift_links: int = 0,
    fallback_reason: "str | None" = None,
) -> ChurnResult:
    """Assemble the exact change set between two routes of one call."""
    continuing = set(before.conference.members) & set(after.conference.members)
    taps_moved = {
        port: (before.taps[port], after.taps[port])
        for port in sorted(continuing)
        if before.taps[port] != after.taps[port]
    }
    return ChurnResult(
        before=before,
        after=after,
        links_added=after.links - before.links,
        links_removed=before.links - after.links,
        taps_moved=taps_moved,
        mode=mode,
        drift_links=drift_links,
        fallback_reason=fallback_reason,
    )


def _pinned_route(
    net: MultistageNetwork,
    conference: Conference,
    pins: dict[int, int],
    policy: RoutingPolicy,
    dead: frozenset,
) -> tuple[Route, int]:
    """Route ``conference`` keeping each pinned tap that still works.

    A pin survives when the *full* new combination is forward-reachable
    at the pinned point; everyone else (and every new member) taps at
    the natural earliest level.  Returns the route and its drift: how
    many more links it holds than the natural (unpinned) routing of the
    same members under the same faults.
    """
    forward = _forward_masks(net, conference, dead)
    natural = _select_taps(forward, conference, policy, net.n_stages)
    full = conference.full_mask
    taps: dict[int, int] = {}
    for port in conference.members:
        pin = pins.get(port)
        if (
            pin is not None
            and pin != natural[port]
            and forward[pin].get(port, 0) == full
        ):
            taps[port] = pin
        else:
            taps[port] = natural[port]
    marked = _backward_mark(net, taps, net.n_stages, dead)
    levels = [
        {row: mask for row, mask in forward[t].items() if row in marked[t]}
        for t in range(net.n_stages + 1)
    ]
    levels = _carried_masks(net, conference, levels)
    route = Route(
        conference=conference,
        n_ports=net.n_ports,
        n_stages=net.n_stages,
        levels=tuple(levels),
        taps=taps,
    )
    bad = {port for port, t in taps.items() if route.mask_at(t, port) != full}
    if bad:
        raise AssertionError(
            f"churn invariant violated: taps {sorted(bad)} missing members "
            f"(topology {net.name})"
        )
    drift = 0
    if taps != natural:
        # Natural-route link count without building the route: within the
        # backward-marked region the carried mask equals the forward mask,
        # so forward ∧ marked counts it exactly.
        nat_marked = _backward_mark(net, natural, net.n_stages, dead)
        nat_links = sum(
            1
            for t in range(1, net.n_stages + 1)
            for row in forward[t]
            if row in nat_marked[t]
        )
        drift = route.n_links - nat_links
    return route, drift


def _checked(
    net: MultistageNetwork,
    route: Route,
    members: "tuple[int, ...]",
    policy: RoutingPolicy,
    faults: "frozenset | None",
    result: ChurnResult,
    max_taps_moved: "int | None",
    drift_limit: "int | None",
    fallback: str,
) -> ChurnResult:
    """Enforce churn limits, demoting to the fallback when violated."""
    trigger = None
    if max_taps_moved is not None and len(result.taps_moved) > max_taps_moved:
        trigger = f"taps-moved:{len(result.taps_moved)}>{max_taps_moved}"
    elif drift_limit is not None and result.drift_links > drift_limit:
        trigger = f"drift:{result.drift_links}>{drift_limit}"
    if trigger is None:
        return result
    if fallback == "raise":
        raise ChurnLimitExceeded(trigger)
    if fallback != "reroute":
        raise ValueError(f"unknown churn fallback {fallback!r}")
    return _full_reroute(net, route, members, policy, faults, reason=trigger)


def _full_reroute(
    net: MultistageNetwork,
    route: Route,
    new_members: "tuple[int, ...] | list[int]",
    policy: "RoutingPolicy | None",
    faults: "frozenset | None",
    reason: "str | None" = None,
) -> ChurnResult:
    """Reroute the whole conference from scratch and diff against the old."""
    new_conf = Conference.of(new_members, conference_id=route.conference.conference_id)
    after = route_conference(net, new_conf, policy, faults)
    return _diff(route, after, mode="full-reroute", fallback_reason=reason)


_warned_positional_policy = False


def apply_churn(
    net: MultistageNetwork,
    route: Route,
    new_members: "tuple[int, ...] | list[int]",
    *args,
    policy: "RoutingPolicy | None" = None,
    faults: "frozenset | None" = None,
) -> ChurnResult:
    """Reroute ``route``'s conference from scratch with a new member tuple.

    The conference id is preserved; ``new_members`` must be non-empty.
    Returns the change set relative to the old route, with
    ``mode="full-reroute"`` (the whole tree is reinstalled — prefer
    :func:`extend_route`/:func:`prune_route` for delta-only changes).

    .. deprecated:: 1.6
        passing ``policy`` positionally; use ``policy=`` instead.
    """
    if args:
        global _warned_positional_policy
        if len(args) > 1 or policy is not None:
            raise TypeError("apply_churn takes at most a keyword-only policy")
        if not _warned_positional_policy:
            _warned_positional_policy = True
            warnings.warn(
                "passing policy positionally to apply_churn is deprecated; "
                "use apply_churn(net, route, members, policy=...)",
                DeprecationWarning,
                stacklevel=2,
            )
        policy = args[0]
    return _full_reroute(net, route, new_members, policy, faults)


def extend_route(
    net: MultistageNetwork,
    route: Route,
    port: "int | Iterable[int]",
    *,
    policy: "RoutingPolicy | None" = None,
    faults: "frozenset | None" = None,
    max_taps_moved: "int | None" = None,
    drift_limit: "int | None" = None,
    fallback: str = "reroute",
) -> ChurnResult:
    """Grow a live route in place to include the joining port(s).

    Claims only the links needed to reach the newcomers and to carry
    their signal into the existing tree: continuing members keep their
    current tap whenever the full new combination still arrives there
    (always true for in-block joins on the cube, which are therefore
    hitless and purely additive).  Falls back to a full reroute — or
    raises :class:`ChurnLimitExceeded` with ``fallback="raise"`` — when
    the step would move more than ``max_taps_moved`` taps or accrue
    more than ``drift_limit`` surplus links.
    """
    policy = policy or RoutingPolicy()
    ports = _ports_tuple(port)
    conference = route.conference
    for p in ports:
        if p in conference.member_set:
            raise ValueError(f"port {p} is already a member")
    members = tuple(sorted(conference.members + ports))
    if members[-1] >= net.n_ports:
        raise ValueError(
            f"conference member {members[-1]} out of range for "
            f"{net.n_ports}-port network"
        )
    if policy.prune:
        # The greedy-pruning ablation has no incremental form: pruned
        # regions are not pin-stable, so churn on them is a reroute.
        return _full_reroute(net, route, members, policy, faults, reason="prune-policy")
    dead = frozenset(faults) if faults else frozenset()
    new_conf = Conference.of(members, conference_id=conference.conference_id)
    after, drift = _pinned_route(net, new_conf, dict(route.taps), policy, dead)
    result = _diff(route, after, mode="incremental", drift_links=drift)
    return _checked(
        net, route, members, policy, faults, result,
        max_taps_moved, drift_limit, fallback,
    )


def prune_route(
    net: MultistageNetwork,
    route: Route,
    port: "int | Iterable[int]",
    *,
    policy: "RoutingPolicy | None" = None,
    faults: "frozenset | None" = None,
    max_taps_moved: "int | None" = None,
    drift_limit: "int | None" = None,
    fallback: str = "reroute",
) -> ChurnResult:
    """Shrink a live route in place, dropping the leaving port(s).

    Releases the links that served only the leavers and re-taps each
    survivor at the earliest level where the remaining combination is
    complete — reclaiming any depth the leaver forced, which is what
    makes ``prune_route(extend_route(r, p), p)`` restore ``r`` exactly.
    An in-block leave keeps every surviving tap in place (hitless).
    The change is applied as a delta; limits behave as in
    :func:`extend_route`.
    """
    policy = policy or RoutingPolicy()
    ports = _ports_tuple(port)
    conference = route.conference
    for p in ports:
        if p not in conference.member_set:
            raise ValueError(f"port {p} is not a member")
    remaining = tuple(m for m in conference.members if m not in set(ports))
    if not remaining:
        raise ValueError("cannot remove the last member; tear the conference down instead")
    if policy.prune:
        return _full_reroute(net, route, remaining, policy, faults, reason="prune-policy")
    dead = frozenset(faults) if faults else frozenset()
    new_conf = Conference.of(remaining, conference_id=conference.conference_id)
    # No pins: survivors re-tap naturally, so drift never survives a leave.
    after, drift = _pinned_route(net, new_conf, {}, policy, dead)
    result = _diff(route, after, mode="incremental", drift_links=drift)
    return _checked(
        net, route, remaining, policy, faults, result,
        max_taps_moved, drift_limit, fallback,
    )


def join_member(
    net: MultistageNetwork,
    route: Route,
    port: "int | Iterable[int]",
    *,
    policy: "RoutingPolicy | None" = None,
    faults: "frozenset | None" = None,
    max_taps_moved: "int | None" = None,
    drift_limit: "int | None" = None,
    fallback: str = "reroute",
) -> ChurnResult:
    """Add member(s) to a live conference through the incremental path."""
    return extend_route(
        net, route, port,
        policy=policy, faults=faults,
        max_taps_moved=max_taps_moved, drift_limit=drift_limit, fallback=fallback,
    )


def leave_member(
    net: MultistageNetwork,
    route: Route,
    port: "int | Iterable[int]",
    *,
    policy: "RoutingPolicy | None" = None,
    faults: "frozenset | None" = None,
    max_taps_moved: "int | None" = None,
    drift_limit: "int | None" = None,
    fallback: str = "reroute",
) -> ChurnResult:
    """Remove member(s) from a live conference (at least one must stay)."""
    return prune_route(
        net, route, port,
        policy=policy, faults=faults,
        max_taps_moved=max_taps_moved, drift_limit=drift_limit, fallback=fallback,
    )
