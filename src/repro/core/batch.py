"""Columnar batch routing — the bitset kernel behind ``route_batch``.

:func:`~repro.core.routing.route_conference` walks per-member Python
dicts one conference at a time.  This module evaluates a whole *batch*
of conferences stage-by-stage with wide integer operations, the idiom of
stage-wide MIN evaluation: the routing state is a stack of
``(n_conferences, n_rows)`` numpy arrays — one per level — where entry
``[c, r]`` is the member bitmask of conference ``c`` present on row
``r``.  One gather + bitwise-OR per stage replaces the per-signal
propagation loop, and tap selection / backward marking reduce to array
comparisons.

The contract is **byte-identity** with the sequential core, not mere
equality: the produced :class:`~repro.core.routing.Route` objects build
their ``levels`` and ``taps`` dicts in the *same insertion order* the
sequential algorithm uses, so ``repr``, JSON serialization, frozenset
iteration of ``Route.links`` — and therefore every downstream
order-sensitive decision (admission capacity messages, the worst-case
search's ``max(loads.items())`` target pick) — are indistinguishable
from the per-object path.  The differential grid in
``tests/core/test_batch_differential.py`` holds the kernel against
:func:`~repro.core.routing.route_conference` (the per-object oracle the
kernel replaced) across topologies, policies, fault sets and batch
shapes.

Two inputs fall back to the sequential path per conference, with
identical outcomes: conferences of more than :data:`MAX_KERNEL_MEMBERS`
members (their masks overflow the int64 columns) and any batch routed
under ``policy.prune=True`` (the greedy ablation is inherently
sequential).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.conference import Conference
from repro.core.conflict import ConflictReport
from repro.core.routing import (
    Route,
    RoutingPolicy,
    TapPolicy,
    UnroutableError,
    route_conference_sequential,
)
from repro.obs.metrics import timed
from repro.topology.network import MultistageNetwork, Point
from repro.util.bits import pack_rows

__all__ = [
    "MAX_KERNEL_MEMBERS",
    "BatchRouteOutcome",
    "route_batch",
    "stage_occupancy",
    "occupancy_words",
    "analyze_conflicts_columnar",
]

#: Largest conference the int64 mask columns can represent (bit ``i`` of
#: a column is member ``i``; ``1 << 62`` is the last in-range weight).
MAX_KERNEL_MEMBERS = 63

#: Soft bound on ``n_conferences * n_rows`` cells held live per level;
#: larger batches are routed in chunks so memory stays flat.
_MAX_CELLS = 1 << 18

@dataclass(frozen=True)
class BatchRouteOutcome:
    """One conference's result within a :func:`route_batch` call.

    Exactly one of ``route`` / ``error`` is set; ``error`` carries the
    same exception (type and message) the sequential
    :func:`~repro.core.routing.route_conference` call would have raised.
    """

    conference: Conference
    route: "Route | None" = None
    error: "ValueError | None" = None

    @property
    def ok(self) -> bool:
        """True when the conference was routed."""
        return self.route is not None

    def unwrap(self) -> Route:
        """The route, or (re-)raise the recorded routing error."""
        if self.route is not None:
            return self.route
        raise type(self.error)(*self.error.args)


@timed("repro_route_batch")
def route_batch(
    net: MultistageNetwork,
    conferences: "Sequence[Conference] | Iterable[Conference]",
    policy: "RoutingPolicy | None" = None,
    faults: "frozenset | None" = None,
) -> list[BatchRouteOutcome]:
    """Route every conference of a batch; order is preserved.

    Semantics per conference are exactly those of
    :func:`~repro.core.routing.route_conference` under the same ``net``,
    ``policy`` and ``faults`` — routing is a pure per-conference
    function, so batching changes when the work happens, never the
    result.  Failures (``UnroutableError`` under faults, ``ValueError``
    for out-of-range members) are captured per conference instead of
    aborting the batch.
    """
    policy = policy or RoutingPolicy()
    dead = frozenset(faults) if faults else frozenset()
    confs = list(conferences)
    if policy.prune:
        return [_route_one(net, conf, policy, dead) for conf in confs]
    outcomes: "list[BatchRouteOutcome | None]" = [None] * len(confs)
    kernel_idx: list[int] = []
    for i, conf in enumerate(confs):
        if conf.members[-1] >= net.n_ports:
            outcomes[i] = BatchRouteOutcome(
                conf,
                error=ValueError(
                    f"conference member {conf.members[-1]} out of range for "
                    f"{net.n_ports}-port network"
                ),
            )
        elif len(conf.members) > MAX_KERNEL_MEMBERS:
            outcomes[i] = _route_one(net, conf, policy, dead)
        else:
            kernel_idx.append(i)
    chunk = max(1, _MAX_CELLS // net.n_ports)
    for start in range(0, len(kernel_idx), chunk):
        part = kernel_idx[start : start + chunk]
        for i, outcome in zip(part, _kernel(net, [confs[i] for i in part], policy, dead)):
            outcomes[i] = outcome
    return outcomes  # type: ignore[return-value]


def _route_one(
    net: MultistageNetwork, conf: Conference, policy: RoutingPolicy, dead: frozenset
) -> BatchRouteOutcome:
    """The sequential walk wrapped in a per-conference outcome.

    Calls :func:`route_conference_sequential` directly — the public
    :func:`~repro.core.routing.route_conference` delegates *here* as a
    batch of one, so routing through it again would recurse.
    """
    try:
        return BatchRouteOutcome(
            conf,
            route=route_conference_sequential(net, conf, policy, faults=dead or None),
        )
    except ValueError as exc:  # UnroutableError is a ValueError subclass
        return BatchRouteOutcome(conf, error=exc)


def _dead_rows_by_level(dead: frozenset, n_stages: int, n_rows: int) -> "list[np.ndarray | None]":
    out: "list[np.ndarray | None]" = [None] * (n_stages + 1)
    if dead:
        by_level: dict[int, list[int]] = {}
        for level, row in dead:
            if 0 <= level <= n_stages and 0 <= row < n_rows:
                by_level.setdefault(level, []).append(row)
        for level, rows in by_level.items():
            out[level] = np.asarray(rows, dtype=np.int64)
    return out


def _kernel(
    net: MultistageNetwork,
    confs: list[Conference],
    policy: RoutingPolicy,
    dead: frozenset,
) -> list[BatchRouteOutcome]:
    """The columnar forward/tap/backward sweep over one chunk."""
    n_rows, n_stages, radix = net.n_ports, net.n_stages, net.radix
    n_conf = len(confs)
    succ, pred = net.successor_table, net.predecessor_table
    dead_rows = _dead_rows_by_level(dead, n_stages, n_rows)

    member_lists = [c.members for c in confs]
    sizes = np.fromiter((len(m) for m in member_lists), dtype=np.int64, count=n_conf)
    total = int(sizes.sum())
    members = np.fromiter(
        (p for mem in member_lists for p in mem), dtype=np.int64, count=total
    )
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    conf_of = np.repeat(np.arange(n_conf, dtype=np.int64), sizes)
    # Bit weight of member i is its index within its conference.
    idx_in_conf = np.arange(total, dtype=np.int64) - offsets[conf_of]
    weights = np.left_shift(np.int64(1), idx_in_conf)
    # Through uint64 so a 63-member conference's full mask (2**63 - 1)
    # does not overflow the shift.
    full = (np.left_shift(np.uint64(1), sizes.astype(np.uint64)) - 1).astype(np.int64)

    # Forward pass: masks[t][c, r] = members of conference c whose signal
    # can be present at point (t, r) through surviving paths.
    cur = np.zeros((n_conf, n_rows), dtype=np.int64)
    cur[conf_of, members] = weights
    if dead_rows[0] is not None:
        cur[:, dead_rows[0]] = 0
    masks = [cur]
    for s in range(n_stages):
        nxt = cur[:, pred[s, :, 0]]
        for side in range(1, radix):
            nxt = nxt | cur[:, pred[s, :, side]]
        if dead_rows[s + 1] is not None:
            nxt[:, dead_rows[s + 1]] = 0
        masks.append(nxt)
        cur = nxt

    # Tap selection: ok[t, i] = level t carries the full combination on
    # member i's own row.
    ok = np.stack([m[conf_of, members] for m in masks]) == full[conf_of]
    if policy.tap_policy is TapPolicy.FINAL:
        member_ok = ok[n_stages]
        taps_of_member = np.full(len(members), n_stages, dtype=np.int64)
    else:
        member_ok = ok.any(axis=0)
        taps_of_member = ok.argmax(axis=0)
    routable = np.logical_and.reduceat(member_ok, offsets[:-1])
    # First failing member per conference, in member order (the sequential
    # loop raises at exactly that member).
    first_bad = np.minimum.reduceat(
        np.where(member_ok, len(members), np.arange(len(members))), offsets[:-1]
    )

    outcomes: "list[BatchRouteOutcome | None]" = [None] * n_conf
    for c in np.flatnonzero(~routable):
        port = confs[c].members[int(first_bad[c]) - int(offsets[c])]
        if policy.tap_policy is TapPolicy.FINAL:
            err = UnroutableError(
                f"conference cannot be combined at final-stage output {port}"
            )
        else:
            err = UnroutableError(
                f"no surviving level combines the full conference on row {port}"
            )
        outcomes[c] = BatchRouteOutcome(confs[c], error=err)

    # Backward pass: marked[t][c, r] = some tap of c is reachable from
    # (t, r) through surviving points.
    live = member_ok & routable[conf_of]
    marked = [np.zeros((n_conf, n_rows), dtype=bool) for _ in range(n_stages + 1)]
    for t in np.unique(taps_of_member[live]):
        sel = live & (taps_of_member == t)
        marked[t][conf_of[sel], members[sel]] = True
    for t in range(n_stages, 0, -1):
        below = marked[t]
        prev = below[:, succ[t - 1, :, 0]]
        for side in range(1, radix):
            prev = prev | below[:, succ[t - 1, :, side]]
        if dead_rows[t - 1] is not None:
            prev[:, dead_rows[t - 1]] = 0
        marked[t - 1] |= prev

    # Used region + sequential insertion order.  The sequential algorithm
    # builds each level's dict by iterating the previous level's dict in
    # *its* order and the switch sides in table order; replaying that
    # first-touch order here makes the dicts byte-identical, not merely
    # equal (frozenset iteration of Route.links then matches too).
    level_points: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    used0 = (masks[0] != 0) & marked[0]
    keep = used0[conf_of, members]
    confs_t, rows_t = conf_of[keep], members[keep]
    level_points.append((confs_t, rows_t, masks[0][confs_t, rows_t]))
    for t in range(n_stages):
        used_next = (masks[t + 1] != 0) & marked[t + 1]
        cand_rows = succ[t, rows_t, :].reshape(-1)
        cand_confs = np.repeat(confs_t, radix)
        keys = cand_confs * n_rows + cand_rows
        uniq, first = np.unique(keys, return_index=True)
        ok_next = used_next[uniq // n_rows, uniq % n_rows]
        uniq, first = uniq[ok_next], first[ok_next]
        order = np.argsort(first, kind="stable")
        keys_next = uniq[order]
        confs_t, rows_t = keys_next // n_rows, keys_next % n_rows
        level_points.append((confs_t, rows_t, masks[t + 1][confs_t, rows_t]))

    # Materialize Route objects (plain-int dicts, matching the sequential path field for field).
    # Whole-level ``tolist`` conversions up front: per-conference numpy
    # slicing would cost more than the kernel itself on small networks.
    per_level = [
        (
            np.searchsorted(lvl_confs, np.arange(n_conf + 1)).tolist(),
            lvl_rows.tolist(),
            lvl_masks.tolist(),
        )
        for lvl_confs, lvl_rows, lvl_masks in level_points
    ]
    tap_list = taps_of_member.tolist()
    offset_list = offsets.tolist()
    for c in range(n_conf):
        if outcomes[c] is not None:
            continue
        conf = confs[c]
        levels = []
        for bounds, lvl_rows, lvl_masks in per_level:
            lo, hi = bounds[c], bounds[c + 1]
            levels.append(dict(zip(lvl_rows[lo:hi], lvl_masks[lo:hi])))
        taps = dict(zip(conf.members, tap_list[offset_list[c] : offset_list[c + 1]]))
        # Direct field assembly: Route's frozen-dataclass __init__ costs
        # five object.__setattr__ calls per instance, measurable at this
        # volume; the resulting object is indistinguishable.
        route = object.__new__(Route)
        route.__dict__.update(
            conference=conf,
            n_ports=n_rows,
            n_stages=n_stages,
            levels=tuple(levels),
            taps=taps,
        )
        outcomes[c] = BatchRouteOutcome(conf, route=route)
    return outcomes  # type: ignore[return-value]


# -- columnar conflict accounting ------------------------------------------


def stage_occupancy(
    routes: Iterable[Route], n_stages: int, n_rows: int
) -> np.ndarray:
    """Stage-major link-load matrix: ``[t, r]`` counts the routes using
    the link entering ``(t, r)``.

    Row 0 (the injection level) is always zero — injections are ports,
    not links — so the matrix aligns index-for-index with point
    coordinates.  Agrees entry-wise with
    :func:`~repro.core.conflict.link_loads` (the property suite checks
    this against random batches).
    """
    loads = np.zeros((n_stages + 1, n_rows), dtype=np.int64)
    for route in routes:
        for t in range(1, len(route.levels)):
            rows = list(route.levels[t])
            if rows:
                loads[t, rows] += 1
    return loads


def occupancy_words(loads: np.ndarray) -> tuple[int, ...]:
    """Per-level occupancy bitsets: bit ``r`` of word ``t`` is set when
    some route uses the link entering ``(t, r)``.

    The words round-trip through :func:`repro.util.bits.unpack_rows`
    losslessly (a hypothesis property), giving a compact stage-major
    fingerprint of which links a batch touches.
    """
    return tuple(pack_rows(np.flatnonzero(level).tolist()) for level in loads)


def analyze_conflicts_columnar(
    routes: Sequence[Route],
    n_stages: "int | None" = None,
    n_rows: "int | None" = None,
) -> ConflictReport:
    """Columnar :func:`~repro.core.conflict.analyze_conflicts`.

    Builds the same :class:`~repro.core.conflict.ConflictReport` —
    field-for-field equal, including the worst-link tie-break
    (lexicographically smallest among max-load links) — from the
    stage-major load matrix instead of a Counter walk.
    """
    routes = list(routes)
    if n_stages is None:
        if not routes:
            raise ValueError("n_stages is required for an empty route collection")
        n_stages = routes[0].n_stages
    for r in routes:
        if r.n_stages != n_stages:
            raise ValueError("routes come from networks with different stage counts")
    if n_rows is None:
        n_rows = max((r.n_ports for r in routes), default=1)
    loads = stage_occupancy(routes, n_stages, n_rows)
    worst_load = int(loads.max()) if routes else 0
    worst: "Point | None" = None
    if worst_load > 0:
        level, row = np.argwhere(loads == worst_load)[0]
        worst = (int(level), int(row))
    profile = tuple(int(v) for v in loads[1:].max(axis=1)) if n_stages else ()
    positive = loads[loads > 0]
    values, counts = np.unique(positive, return_counts=True)
    return ConflictReport(
        n_conferences=len(routes),
        n_stages=n_stages,
        max_multiplicity=worst_load,
        worst_link=worst,
        stage_profile=profile,
        load_histogram=tuple(
            (int(v), int(c)) for v, c in zip(values, counts)
        ),
        total_links_used=int(np.count_nonzero(loads)),
    )
