"""General group connections: many-to-many, multicast, and conference.

The paper frames conferencing inside the broader space of *group
communication*: "messages from one or more sender(s) are delivered to a
large number of receivers".  This module implements that general object
— a :class:`GroupConnection` with independent sender and receiver sets —
on the same fabric and with the same two-sweep self-routing:

* senders inject; switches combine senders' signals;
* each *receiver* taps the earliest link on its own row carrying the
  combination of **all senders**.

Special cases: ``senders == receivers`` is the paper's conference;
``len(senders) == 1`` is multicast; ``receivers ⊂ senders`` is a
broadcast bus with passive talkers.  Routes expose the same ``links`` /
``n_stages`` interface as conference routes, so conflict analysis and
slot scheduling work unchanged on mixed traffic.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.topology.network import MultistageNetwork, Point
from repro.util.validation import check_ports

__all__ = ["GroupConnection", "GroupRoute", "route_group"]


@dataclass(frozen=True)
class GroupConnection:
    """A group-communication request: who talks, who listens.

    Senders and receivers may overlap arbitrarily; both must be
    non-empty.  A port may appear in both roles (a conference member).
    """

    senders: tuple[int, ...]
    receivers: tuple[int, ...]
    connection_id: int = 0

    def __post_init__(self) -> None:
        if not self.senders:
            raise ValueError("a group connection needs at least one sender")
        if not self.receivers:
            raise ValueError("a group connection needs at least one receiver")
        object.__setattr__(self, "senders", tuple(sorted(set(self.senders))))
        object.__setattr__(self, "receivers", tuple(sorted(set(self.receivers))))

    @staticmethod
    def multicast(source: int, destinations: Iterable[int], connection_id: int = 0) -> "GroupConnection":
        """One sender, many receivers."""
        return GroupConnection((source,), tuple(destinations), connection_id)

    @staticmethod
    def conference(members: Iterable[int], connection_id: int = 0) -> "GroupConnection":
        """Everyone talks, everyone listens — the paper's object."""
        members = tuple(members)
        return GroupConnection(members, members, connection_id)

    @property
    def is_conference(self) -> bool:
        """True when senders and receivers coincide."""
        return self.senders == self.receivers

    @property
    def is_multicast(self) -> bool:
        """True for single-sender connections."""
        return len(self.senders) == 1

    @property
    def ports(self) -> frozenset[int]:
        """All ports the connection touches in either role."""
        return frozenset(self.senders) | frozenset(self.receivers)


@dataclass(frozen=True)
class GroupRoute:
    """Realization of a group connection; interface-compatible with
    :class:`~repro.core.routing.Route` for conflict accounting."""

    connection: GroupConnection
    n_ports: int
    n_stages: int
    levels: tuple[dict[int, int], ...]
    taps: dict[int, int]

    @property
    def links(self) -> frozenset[Point]:
        """Used inter-stage links (downstream-point identification)."""
        return frozenset(
            (t, r) for t, rows in enumerate(self.levels) if t >= 1 for r in rows
        )

    # -- fabric adapter (shared with Route) ------------------------------

    @property
    def channel_id(self) -> int:
        """Channel identifier on dilated links (the connection id)."""
        return self.connection.connection_id

    @property
    def injections(self) -> tuple[int, ...]:
        """Ports that transmit into the fabric (the senders)."""
        return self.connection.senders

    @property
    def expected_delivery(self) -> frozenset[int]:
        """What each tap must receive: every sender's signal."""
        return frozenset(self.connection.senders)

    @property
    def exclusive_ports(self) -> frozenset[int]:
        """Ports this connection claims exclusively."""
        return self.connection.ports

    @property
    def n_links(self) -> int:
        """Number of inter-stage links occupied."""
        return sum(len(rows) for rows in self.levels[1:])

    @property
    def depth(self) -> int:
        """Deepest tap level."""
        return max(self.taps.values())

    def mask_at(self, level: int, row: int) -> int:
        """Sender bitmask carried at ``(level, row)``."""
        return self.levels[level].get(row, 0)


def route_group(
    net: MultistageNetwork,
    connection: GroupConnection,
    earliest_taps: bool = True,
) -> GroupRoute:
    """Route a group connection through ``net``.

    Same two sweeps as conference routing, with taps on *receiver* rows:
    forward sender-mask propagation, per-receiver earliest (or final)
    tap, backward usefulness marking.  Raises ``ValueError`` when some
    receiver can never hear every sender (impossible on full-access
    networks).
    """
    check_ports(connection.senders, net.n_ports, "senders")
    check_ports(connection.receivers, net.n_ports, "receivers")
    full = (1 << len(connection.senders)) - 1
    tab = net.successor_table

    levels: list[dict[int, int]] = [
        {port: 1 << idx for idx, port in enumerate(connection.senders)}
    ]
    cur = levels[0]
    for s in range(net.n_stages):
        nxt: dict[int, int] = {}
        for row, mask in cur.items():
            for side in range(tab.shape[2]):
                r2 = int(tab[s, row, side])
                nxt[r2] = nxt.get(r2, 0) | mask
        levels.append(nxt)
        cur = nxt

    taps: dict[int, int] = {}
    for port in connection.receivers:
        if earliest_taps:
            for t in range(net.n_stages + 1):
                if levels[t].get(port, 0) == full:
                    taps[port] = t
                    break
            else:
                raise ValueError(
                    f"receiver {port} can never hear all senders "
                    f"{connection.senders} in {net.name}"
                )
        else:
            if levels[net.n_stages].get(port, 0) != full:
                raise ValueError(
                    f"receiver {port} cannot combine all senders at the outputs"
                )
            taps[port] = net.n_stages

    # Backward usefulness sweep.
    ptab = net.predecessor_table
    marked: list[set[int]] = [set() for _ in range(net.n_stages + 1)]
    for port, t in taps.items():
        marked[t].add(port)
    for t in range(net.n_stages, 0, -1):
        for row in marked[t]:
            for side in range(ptab.shape[2]):
                marked[t - 1].add(int(ptab[t - 1, row, side]))

    used = [
        {row: mask for row, mask in levels[t].items() if row in marked[t]}
        for t in range(net.n_stages + 1)
    ]
    route = GroupRoute(
        connection=connection,
        n_ports=net.n_ports,
        n_stages=net.n_stages,
        levels=tuple(used),
        taps=taps,
    )
    bad = [p for p, t in taps.items() if route.mask_at(t, p) != full]
    if bad:
        raise AssertionError(f"group routing invariant violated at taps {bad}")
    return route
