"""Conference placement and admission control.

Two placement disciplines frame the paper's comparison:

* **Aligned placement** (the Yang-2001 design): every conference is
  assigned an exclusive *aligned block* of ports sized to the next power
  of two, managed here by a classic buddy allocator.  On the indirect
  binary cube this makes simultaneous conferences provably conflict-free
  because a conference's route never leaves its block's rows.
* **Arbitrary placement** (this paper's question): members sit wherever
  the users happen to be attached; conflicts arise and their worst-case
  multiplicity is the paper's key quantity.

The :class:`AdmissionController` adds the dynamic dimension used by the
discrete-event simulator: conferences join and leave over time, and a
join is admitted only if the resulting link loads stay within the
network's dilation.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.churn import ChurnResult

from repro.core.batch import route_batch
from repro.core.conference import Conference, ConferenceSet
from repro.core.network import ConferenceNetwork
from repro.core.routing import Route
from repro.topology.network import Point
from repro.util.validation import check_network_size

__all__ = [
    "BuddyAllocator",
    "place_aligned",
    "AdmissionController",
    "AdmissionDenied",
    "BatchAdmissionOutcome",
]


class BuddyAllocator:
    """Power-of-two aligned block allocator over the port space.

    Maintains free lists per block exponent; allocation splits the
    smallest sufficient block (standard buddy discipline) and freeing
    coalesces buddies.  Used to realize the aligned placement policy and
    heavily property-tested (no overlap, coalescing restores the initial
    state, etc.).
    """

    def __init__(self, n_ports: int):
        self._n = check_network_size(n_ports)
        self._n_ports = n_ports
        # free[k] = set of aligned bases of free blocks of size 2**k.
        self._free: list[set[int]] = [set() for _ in range(self._n + 1)]
        self._free[self._n].add(0)
        self._allocated: dict[int, int] = {}  # base -> exponent

    @property
    def n_ports(self) -> int:
        """Total managed ports."""
        return self._n_ports

    def free_capacity(self) -> int:
        """Number of currently unallocated ports."""
        return sum(len(bases) << k for k, bases in enumerate(self._free))

    def largest_free_exponent(self) -> int:
        """Exponent of the largest free block, or -1 when full."""
        for k in range(self._n, -1, -1):
            if self._free[k]:
                return k
        return -1

    def allocate(self, size: int) -> range:
        """Allocate an aligned block holding at least ``size`` ports.

        Returns the block as a range; raises ``MemoryError`` when no
        block large enough is free (the caller treats this as call
        blocking).
        """
        if size < 1 or size > self._n_ports:
            raise ValueError(f"block size {size} out of range [1, {self._n_ports}]")
        want = max(0, (size - 1).bit_length())
        k = want
        while k <= self._n and not self._free[k]:
            k += 1
        if k > self._n:
            raise MemoryError(f"no free aligned block of size {1 << want}")
        base = min(self._free[k])
        self._free[k].remove(base)
        while k > want:  # split down to the requested exponent
            k -= 1
            self._free[k].add(base + (1 << k))
        self._allocated[base] = want
        return range(base, base + (1 << want))

    def release(self, base: int) -> None:
        """Free the allocated block starting at ``base``, coalescing buddies."""
        try:
            k = self._allocated.pop(base)
        except KeyError:
            raise KeyError(f"no allocated block at base {base}") from None
        while k < self._n:
            buddy = base ^ (1 << k)
            if buddy not in self._free[k]:
                break
            self._free[k].remove(buddy)
            base = min(base, buddy)
            k += 1
        self._free[k].add(base)

    def allocations(self) -> dict[int, int]:
        """Snapshot of live allocations: base -> exponent."""
        return dict(self._allocated)


def place_aligned(n_ports: int, sizes: Sequence[int]) -> ConferenceSet:
    """Place conferences of the given sizes into disjoint aligned blocks.

    Each conference of size ``m`` occupies the first ``m`` ports of a
    buddy-allocated block of size ``2**ceil(log2 m)`` — the Yang-2001
    discipline.  Raises ``MemoryError`` when the sizes do not fit.
    """
    alloc = BuddyAllocator(n_ports)
    groups = []
    # Largest first minimizes fragmentation, like any buddy system.
    order = sorted(range(len(sizes)), key=lambda i: -sizes[i])
    placed: dict[int, list[int]] = {}
    for idx in order:
        block = alloc.allocate(sizes[idx])
        placed[idx] = list(block)[: sizes[idx]]
    for idx in range(len(sizes)):
        groups.append(placed[idx])
    return ConferenceSet.of(n_ports, groups)


class AdmissionDenied(RuntimeError):
    """A conference join was rejected by admission control.

    ``reason`` is ``"capacity"`` (some link would exceed the dilation)
    or ``"ports"`` (a requested port is already in a conference).
    """

    def __init__(self, reason: str, detail: str):
        super().__init__(f"admission denied ({reason}): {detail}")
        self.reason = reason
        self.detail = detail


@dataclass(frozen=True)
class BatchAdmissionOutcome:
    """One conference's verdict from :meth:`AdmissionController.try_join_batch`.

    Exactly one of ``route`` (admitted), ``denial`` (admission control
    said no), or ``error`` (routing itself failed — unroutable members
    or out-of-range ports) is set.
    """

    conference: Conference
    route: "Route | None" = None
    denial: "AdmissionDenied | None" = None
    error: "ValueError | None" = None

    @property
    def ok(self) -> bool:
        """True when the conference was admitted."""
        return self.route is not None

    def unwrap(self) -> Route:
        """The admitted route, or re-raise what stopped the admission."""
        if self.route is not None:
            return self.route
        if self.denial is not None:
            raise AdmissionDenied(self.denial.reason, self.denial.detail)
        assert self.error is not None
        raise type(self.error)(*self.error.args)


class AdmissionController:
    """Online admission of conferences under finite link dilation.

    Keeps the link-load ledger of all live conferences; a join is
    admitted only when every link the new route needs has spare
    capacity.  This is what the blocking-probability experiment (F3)
    drives.
    """

    def __init__(self, network: ConferenceNetwork, *, tracer=None):
        self._network = network
        self._loads: Counter = Counter()
        self._routes: dict[int, Route] = {}
        self._ports_in_use: set[int] = set()
        # Observation only (duck-typed repro.obs.trace.Tracer): ledger
        # changes emit admission.admit/deny/leave/replace events.
        self.tracer = tracer

    @property
    def network(self) -> ConferenceNetwork:
        """The conference network admission is managed for."""
        return self._network

    @property
    def live_conferences(self) -> tuple[int, ...]:
        """Ids of currently admitted conferences."""
        return tuple(self._routes)

    @property
    def ports_in_use(self) -> frozenset[int]:
        """Ports currently claimed by live conferences."""
        return frozenset(self._ports_in_use)

    def link_load(self, link: Point) -> int:
        """Current channel load on one inter-stage link."""
        return self._loads[link]

    def peak_load(self) -> int:
        """The worst current link load (0 when idle)."""
        return max(self._loads.values(), default=0)

    def stage_loads(self) -> dict[int, list[int]]:
        """Nonzero channel loads per entering level, in row order.

        The raw material of the per-stage link-occupancy telemetry: key
        ``t`` lists the load of every occupied link entering level
        ``t``, so ``max`` of a value is the *observed* conflict
        multiplicity at that stage — the paper's headline quantity,
        live.
        """
        out: dict[int, list[int]] = {}
        for (level, _row), load in sorted(self._loads.items()):
            if load > 0:
                out.setdefault(level, []).append(load)
        return out

    def route_of(self, conference_id: int) -> Route:
        """The live route of one admitted conference."""
        try:
            return self._routes[conference_id]
        except KeyError:
            raise KeyError(f"no live conference with id {conference_id}") from None

    def try_join(self, conference: "Conference | Iterable[int]") -> Route:
        """Admit and route a conference, or raise :class:`AdmissionDenied`."""
        if not isinstance(conference, Conference):
            conference = Conference.of(conference)
        if conference.conference_id in self._routes:
            raise AdmissionDenied(
                "ports", f"conference id {conference.conference_id} already live"
            )
        clash = self._ports_in_use.intersection(conference.members)
        if clash:
            raise AdmissionDenied("ports", f"ports {sorted(clash)} already in a conference")
        return self.admit_route(self._network.route(conference))

    def try_join_batch(
        self,
        conferences: "Iterable[Conference | Iterable[int]]",
    ) -> list[BatchAdmissionOutcome]:
        """Admit a batch: one columnar routing pass, sequential verdicts.

        The whole batch is routed up front by
        :func:`~repro.core.batch.route_batch`, then the admission state machine
        replays in order — duplicate-id check, port-clash check, then
        :meth:`admit_route` — against the ledger as it stood when each
        conference's turn came.  Every verdict, including denial reasons
        and the first-over-capacity link named in a capacity denial, is
        therefore identical to calling :meth:`try_join` once per
        conference in the same order.
        """
        confs = [
            c if isinstance(c, Conference) else Conference.of(c) for c in conferences
        ]
        routed = route_batch(self._network.topology, confs, self._network.policy)
        outcomes: list[BatchAdmissionOutcome] = []
        for conference, attempt in zip(confs, routed):
            try:
                if conference.conference_id in self._routes:
                    raise AdmissionDenied(
                        "ports", f"conference id {conference.conference_id} already live"
                    )
                clash = self._ports_in_use.intersection(conference.members)
                if clash:
                    raise AdmissionDenied(
                        "ports", f"ports {sorted(clash)} already in a conference"
                    )
                route = self.admit_route(attempt.unwrap())
            except AdmissionDenied as denial:
                outcomes.append(
                    BatchAdmissionOutcome(conference=conference, denial=denial)
                )
            except ValueError as error:
                outcomes.append(BatchAdmissionOutcome(conference=conference, error=error))
            else:
                outcomes.append(BatchAdmissionOutcome(conference=conference, route=route))
        return outcomes

    def admit_route(self, route: Route) -> Route:
        """Admit a pre-computed route (e.g. one routed around faults).

        Same checks as :meth:`try_join` — port exclusivity and link
        capacity — but the caller controls how the route was produced.
        """
        conference = route.conference
        if conference.conference_id in self._routes:
            self._trace_deny(conference.conference_id, "ports")
            raise AdmissionDenied(
                "ports", f"conference id {conference.conference_id} already live"
            )
        clash = self._ports_in_use.intersection(conference.members)
        if clash:
            self._trace_deny(conference.conference_id, "ports")
            raise AdmissionDenied("ports", f"ports {sorted(clash)} already in a conference")
        cap = self._network.dilation
        for link in route.links:
            if self._loads[link] + 1 > cap:
                self._trace_deny(conference.conference_id, "capacity")
                raise AdmissionDenied(
                    "capacity", f"link {link} at load {self._loads[link]}/{cap}"
                )
        self._loads.update(route.links)
        self._routes[conference.conference_id] = route
        self._ports_in_use.update(conference.members)
        if self.tracer is not None:
            self.tracer.event(
                "admission.admit", cid=conference.conference_id, links=route.n_links
            )
        return route

    def _trace_deny(self, cid: int, reason: str) -> None:
        if self.tracer is not None:
            self.tracer.event("admission.deny", cid=cid, reason=reason)

    def replace_route(self, conference_id: int, new_route: Route) -> Route:
        """Atomically swing a live conference onto a new route.

        Capacity is checked only on the links the new route *adds* (the
        links shared with the old route are already paid for), so a
        self-healing reroute can never be rejected for resources it
        already holds.  On :class:`AdmissionDenied` the ledger is
        untouched and the old route stays live.
        """
        old = self.route_of(conference_id)
        new_ports = set(new_route.conference.members)
        clash = (self._ports_in_use - old.conference.member_set) & new_ports
        if clash:
            self._trace_deny(conference_id, "ports")
            raise AdmissionDenied("ports", f"ports {sorted(clash)} already in a conference")
        cap = self._network.dilation
        for link in new_route.links - old.links:
            if self._loads[link] + 1 > cap:
                self._trace_deny(conference_id, "capacity")
                raise AdmissionDenied(
                    "capacity", f"link {link} at load {self._loads[link]}/{cap}"
                )
        self._loads.subtract(old.links)
        self._loads.update(new_route.links)
        self._loads += Counter()  # drop zero/negative entries
        self._routes[conference_id] = new_route
        self._ports_in_use.difference_update(old.conference.members)
        self._ports_in_use.update(new_ports)
        if self.tracer is not None:
            self.tracer.event(
                "admission.replace",
                cid=conference_id,
                added=len(new_route.links - old.links),
                released=len(old.links - new_route.links),
            )
        return new_route

    def apply_churn(self, churn: "ChurnResult") -> Route:
        """Apply a membership change as a delta against the ledger.

        Unlike :meth:`replace_route`, which re-books the whole route,
        only the exact ``links_added``/``links_removed`` diff touches
        the ledger — a hitless in-block join charges nothing but its
        graft.  Capacity is checked on the added links alone; on
        :class:`AdmissionDenied` the ledger is untouched and the old
        route stays live.  The result must have been computed against
        the currently live route (otherwise the diff is stale).
        """
        cid = churn.after.conference.conference_id
        old = self.route_of(cid)
        if old is not churn.before and (
            old.links != churn.before.links or old.taps != churn.before.taps
        ):
            raise ValueError(
                f"stale churn result for conference {cid}: "
                "not computed against the live route"
            )
        joined = churn.after.conference.member_set - old.conference.member_set
        clash = (self._ports_in_use - old.conference.member_set) & joined
        if clash:
            self._trace_deny(cid, "ports")
            raise AdmissionDenied("ports", f"ports {sorted(clash)} already in a conference")
        cap = self._network.dilation
        for link in churn.links_added:
            if self._loads[link] + 1 > cap:
                self._trace_deny(cid, "capacity")
                raise AdmissionDenied(
                    "capacity", f"link {link} at load {self._loads[link]}/{cap}"
                )
        self._loads.update(churn.links_added)
        self._loads.subtract(churn.links_removed)
        self._loads += Counter()  # drop zero/negative entries
        self._routes[cid] = churn.after
        self._ports_in_use.difference_update(
            old.conference.member_set - churn.after.conference.member_set
        )
        self._ports_in_use.update(joined)
        if self.tracer is not None:
            self.tracer.event(
                "admission.churn",
                cid=cid,
                mode=churn.mode,
                added=len(churn.links_added),
                released=len(churn.links_removed),
                hitless=churn.hitless,
            )
        return churn.after

    def leave(self, conference_id: int) -> None:
        """Tear down a live conference, releasing its links."""
        try:
            route = self._routes.pop(conference_id)
        except KeyError:
            raise KeyError(f"no live conference with id {conference_id}") from None
        self._loads.subtract(route.links)
        self._loads += Counter()  # drop zero/negative entries
        self._ports_in_use.difference_update(route.conference.members)
        if self.tracer is not None:
            self.tracer.event("admission.leave", cid=conference_id)

    def snapshot(self) -> ConferenceSet:
        """The live conferences as a validated :class:`ConferenceSet`."""
        return ConferenceSet(
            self._network.n_ports,
            tuple(r.conference for r in self._routes.values()),
        )
