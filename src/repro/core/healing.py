"""Self-healing admission control for live conferences under faults.

The static resilience analysis answers "could this conference be routed
around the fault?"; this module answers the operational question: what
happens to the conferences that are *already up* when a link dies, and
to the calls that arrive while the network is degraded.

:class:`SelfHealingController` layers three mechanisms on top of the
plain :class:`~repro.core.admission.AdmissionController`:

1. **A graceful-degradation ladder** per fault transition.  For every
   live conference whose route uses the dead point, in order:

   * *tap move* — reroute under the new fault set; when the surviving
     route needs **no links beyond those already held** the fix is pure
     output-mux re-selection (the relay's freedom, the paper's
     redundancy mechanism) and can never be blocked;
   * *reroute* — the surviving route claims new links; the swap is
     atomic and capacity-checked only on the added links, accounted
     with the same link-diff the churn machinery uses;
   * *drop* — no surviving route (or no capacity for one): the call is
     torn down and, when a retry policy is configured, queued for
     re-admission.

2. **Repair re-optimization.**  Every repair transition revisits the
   conferences currently running on detour routes and walks them back
   toward their fault-free routes (tap moves preferred), so a network
   with zero live faults converges to exactly the state a healthy one
   would have built — a property the test suite checks.

3. **Bounded exponential-backoff retries.**  Blocked arrivals and
   dropped calls are not lost immediately: they re-attempt admission
   after ``base_delay * backoff**attempt`` (plus deterministic seeded
   jitter), up to ``max_retries`` attempts, then count as
   ``"retry-exhausted"`` / lost.  All delays come from one seeded RNG
   stream, preserving the engine's exact-reproducibility contract.

The controller is deliberately loop-agnostic: it only ever calls
``loop.schedule`` / reads ``loop.now``, so any
:class:`~repro.sim.engine.EventLoop`-shaped object works.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.admission import AdmissionController, AdmissionDenied
from repro.core.batch import route_batch
from repro.core.churn import (
    ChurnPolicy,
    ChurnResult,
    _diff,
    extend_route,
    prune_route,
)
from repro.core.conference import Conference, ConferenceSet
from repro.core.network import ConferenceNetwork
from repro.core.routing import Route, UnroutableError
from repro.obs.metrics import DEFAULT_OCCUPANCY_BUCKETS
from repro.protect.plans import BackupPlanStore

# Safe at module level: ``repro.sim``'s package __init__ resolves its
# exports lazily (PEP 562), so importing the metrics leaf does not pull
# ``repro.sim.scenarios`` (which imports this module) back in.
from repro.sim.metrics import AvailabilityStats
from repro.topology.network import Point
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - annotations only
    import numpy as np

    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer
    from repro.parallel.cache import RouteCache
    from repro.sim.engine import EventLoop
    from repro.sim.faults import FaultTransition

__all__ = ["RetryPolicy", "SelfHealingController", "SubmitOutcome"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for blocked or disrupted calls.

    Attempt ``k`` (0-based) waits ``min(base_delay * backoff**k,
    max_delay)``, stretched by up to ``jitter`` (a fraction, drawn from
    the controller's seeded RNG so runs stay reproducible).  After
    ``max_retries`` failed attempts the call is abandoned.
    """

    max_retries: int = 5
    base_delay: float = 0.5
    backoff: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {self.max_retries}")
        check_positive(self.base_delay, "base_delay")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        check_positive(self.max_delay, "max_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, attempt: int, rng: "np.random.Generator | None" = None) -> float:
        """The wait before retry number ``attempt`` (0-based)."""
        base = min(self.base_delay * self.backoff**attempt, self.max_delay)
        if self.jitter and rng is not None:
            base *= 1.0 + self.jitter * float(rng.random())
        return base


@dataclass(frozen=True)
class SubmitOutcome:
    """The synchronous verdict of one :meth:`SelfHealingController.submit`.

    Implements the shared result contract of :data:`repro.api.Result`
    (``ok`` / ``reason`` / ``as_dict``).  ``status`` is one of:

    * ``"admitted"`` — the call is up right now; ``route`` is set.
    * ``"queued"`` — admission was denied but retries are scheduled; the
      terminal outcome arrives through the submit callbacks.
    * ``"lost"`` — denied with no retry budget; ``reason`` carries the
      denial reason (``"ports"``, ``"capacity"``, ``"fault"``, or
      ``"retry-exhausted"``).
    """

    status: str
    conference_id: int
    route: "Route | None" = None
    reason: "str | None" = None

    @property
    def ok(self) -> bool:
        """True when the conference was admitted immediately."""
        return self.status == "admitted"

    @property
    def pending(self) -> bool:
        """True when the outcome will arrive later via callbacks."""
        return self.status == "queued"

    def __bool__(self) -> bool:
        return self.ok

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view (the shared result-serializer contract)."""
        return {
            "kind": "submit_outcome",
            "ok": self.ok,
            "status": self.status,
            "conference_id": self.conference_id,
            "reason": self.reason,
            "links": self.route.n_links if self.route is not None else None,
        }


#: Help strings of the controller's counter families (attached on first use).
_COUNTER_HELP = {
    "repro_admissions_total": "Conference admission attempts by outcome",
    "repro_retries_total": "Retry queue activity by outcome",
    "repro_fault_transitions_total": "Fault transitions handled, by kind",
    "repro_heals_total": "Degradation-ladder actions taken, by action",
    "repro_churn_total": "Membership churn operations applied, by mode",
    "repro_drops_total": "Live conferences dropped, by cause",
    "repro_protect_plans_total": "Backup-plan failover lookups, by outcome",
}


DropListener = Callable[["EventLoop", Conference], None]
RestoreListener = Callable[["EventLoop", Route], None]
LostListener = Callable[["EventLoop", Conference, str], None]


class SelfHealingController:
    """Fault-reactive admission control with retries.

    Mirrors the :class:`~repro.core.admission.AdmissionController`
    interface (``try_join`` / ``leave`` / ledger accessors) but routes
    every join around the *current* fault set, reacts to fault
    transitions with the degradation ladder, and runs the retry queue.

    ``on_drop`` / ``on_restore`` / ``on_lost`` are optional hooks for a
    traffic source to keep its own bookkeeping (port pools, departure
    schedules, blocked counters) in sync with healing decisions.

    ``route_cache`` optionally memoizes the controller's route
    computations through a :class:`~repro.parallel.cache.RouteCache`
    bound to the same topology and policy.  The controller always keys
    lookups by the explicit fault set in force, so cached healthy
    routes are never reused across a fault transition — behaviour is
    bit-identical with and without the cache, only faster.

    ``protection`` (plan budget F, default 0 = purely reactive) enables
    precomputed fast failover: every admitted conference keeps backup
    routings for the F most-loaded links it crosses in a
    :class:`~repro.protect.plans.BackupPlanStore`, and a ``fault.fail``
    on a protected link switches to the stored plan in O(1) instead of
    searching.  Plans are computed by the same (cache-assisted) pure
    routing function the reactive path uses, so a valid plan's route is
    **bit-identical** to what the reactive reroute would have produced —
    protection changes when routing work happens, never what is decided
    (the property suite in ``tests/protect`` holds the two controllers
    side by side).  Stale or missing plans fall back to the reactive
    search; every lookup outcome lands in the availability stats and the
    ``repro_protect_plans_total`` counter.  Pass ``plan_store=`` to
    share or pre-build a store (its budget then governs).

    ``churn`` (a :class:`~repro.core.churn.ChurnPolicy`) governs
    :meth:`resize`: by default membership changes go through the
    incremental engine (:func:`~repro.core.churn.extend_route` /
    :func:`~repro.core.churn.prune_route`) and are booked as exact
    deltas, with full reroute as the policy's fallback when tap or
    drift limits are exceeded; ``ChurnPolicy(incremental=False)``
    restores the pre-1.6 reroute-everything behaviour.

    ``tracer`` / ``metrics`` attach observability (see :mod:`repro.obs`):
    the tracer receives per-conference submit/admit/reroute/drop spans
    and retry/degrade events (plus ``heal.fastpath`` spans for planned
    failovers), the registry accumulates admission/heal counters plus
    per-stage link-occupancy histograms and observed
    conflict-multiplicity gauges.  Both are pure observation — decisions
    and RNG streams are identical with or without them.
    """

    def __init__(
        self,
        network: ConferenceNetwork,
        *,
        retry: "RetryPolicy | None" = None,
        stats: "AvailabilityStats | None" = None,
        rng: "int | np.random.Generator | None" = None,
        route_cache: "RouteCache | None" = None,
        protection: int = 0,
        plan_store: "BackupPlanStore | None" = None,
        churn: "ChurnPolicy | None" = None,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ):
        if seed is not None:
            # Pre-1.1 name for the jitter stream; one consistent spelling
            # (``rng=``) now covers AdmissionController / SelfHealing /
            # FabricService construction.
            warnings.warn(
                "SelfHealingController(seed=...) is deprecated; pass rng=",
                DeprecationWarning,
                stacklevel=2,
            )
            if rng is None:
                rng = seed
        if stats is None:
            stats = AvailabilityStats()
        if route_cache is not None:
            topo = network.topology
            if (route_cache.network.name, route_cache.network.n_ports) != (topo.name, topo.n_ports):
                raise ValueError("route cache is bound to a different network")
            if route_cache.policy != network.policy:
                raise ValueError("route cache is bound to a different routing policy")
        self._cache = route_cache
        if protection < 0:
            raise ValueError(f"protection must be >= 0, got {protection}")
        if plan_store is not None:
            topo = network.topology
            if (plan_store.network.name, plan_store.network.n_ports) != (topo.name, topo.n_ports):
                raise ValueError("plan store is bound to a different network")
            if plan_store.policy != network.policy:
                raise ValueError("plan store is bound to a different routing policy")
        elif protection > 0:
            plan_store = BackupPlanStore(
                network.topology,
                policy=network.policy,
                protection=protection,
                tracer=tracer,
            )
        self._plans = plan_store if plan_store is not None and plan_store.protection else None
        self._churn = churn or ChurnPolicy()
        self._network = network
        self._inner = AdmissionController(network, tracer=tracer)
        self._retry = retry
        self._stats = stats
        # Observation only: both default to None and every emission site
        # is gated on that, so instrumented and bare runs make identical
        # decisions and draw identical RNG streams (see tests/obs).
        self.tracer = tracer
        self._metrics = metrics
        self._drop_spans: dict[int, int] = {}  # cid -> open conference.drop span
        self._rng = ensure_rng(rng)
        # Routes precomputed by the columnar kernel for an imminent
        # sequential walk, keyed ``(members, fault set)`` and consumed
        # (popped) by ``_route`` — see ``prime_batch``.
        self._primed: dict[tuple, "tuple | UnroutableError"] = {}
        self._faults: set[Point] = set()
        self._healthy: dict[int, Route] = {}  # cid -> fault-free reference route
        self._degraded: set[int] = set()
        self._down: dict[int, Conference] = {}  # dropped, awaiting retry
        self.on_drop: "DropListener | None" = None
        self.on_restore: "RestoreListener | None" = None
        self.on_lost: "LostListener | None" = None

    # -- introspection -----------------------------------------------------

    @property
    def network(self) -> ConferenceNetwork:
        """The conference network being managed."""
        return self._network

    @property
    def admission(self) -> AdmissionController:
        """The underlying ledger (read its loads in tests/experiments)."""
        return self._inner

    @property
    def stats(self) -> "AvailabilityStats":
        """Availability accounting (shared with the traffic source)."""
        return self._stats

    @property
    def retry_policy(self) -> "RetryPolicy | None":
        """The retry policy, or ``None`` when blocked calls are lost."""
        return self._retry

    @property
    def protection(self) -> int:
        """The per-conference backup-plan budget F (0 = purely reactive)."""
        return self._plans.protection if self._plans is not None else 0

    @property
    def plan_store(self) -> "BackupPlanStore | None":
        """The backup-plan store, or ``None`` when protection is off."""
        return self._plans

    @property
    def churn_policy(self) -> ChurnPolicy:
        """How :meth:`resize` applies membership changes."""
        return self._churn

    @property
    def current_faults(self) -> frozenset[Point]:
        """The dead points the controller currently routes around."""
        return frozenset(self._faults)

    @property
    def live_conferences(self) -> tuple[int, ...]:
        """Ids of currently admitted conferences."""
        return self._inner.live_conferences

    @property
    def degraded_conferences(self) -> frozenset[int]:
        """Ids currently running on fault-detour routes."""
        return frozenset(self._degraded)

    @property
    def down_conferences(self) -> frozenset[int]:
        """Ids dropped by a fault and still awaiting a retry."""
        return frozenset(self._down)

    def route_of(self, conference_id: int) -> Route:
        """The live route of one admitted conference."""
        return self._inner.route_of(conference_id)

    def _route(self, conference: Conference, faults: frozenset = frozenset()) -> Route:
        """Route under an *explicit* fault set, via the cache if present.

        The fault set is always passed through to the cache key (never
        left to the cache's own tracked state), so a cache entry
        computed on the healthy network can never be served for a
        degraded one — see ``tests/parallel/test_route_cache.py``.
        """
        if self._cache is not None:
            return self._cache.route(conference, faults=faults)
        if self._primed:
            entry = self._primed.pop((conference.members, frozenset(faults)), None)
            if entry is not None:
                if isinstance(entry, UnroutableError):
                    raise UnroutableError(*entry.args)
                levels, taps = entry
                return Route(
                    conference=conference,
                    n_ports=self._network.topology.n_ports,
                    n_stages=self._network.topology.n_stages,
                    levels=levels,
                    taps=taps,
                )
        return self._network.route(conference, faults=faults or None)

    def prime_batch(
        self,
        conferences: "Iterable[Conference]",
        faults: "frozenset[Point] | None" = None,
        include_healthy: bool = False,
    ) -> None:
        """Precompute routes for an imminent sequential walk in one pass.

        One columnar :func:`~repro.core.batch.route_batch` call resolves
        every conference under ``faults`` (default: the current fault
        set); the results are parked where :meth:`_route` looks first,
        so the sequential decision walk that follows consumes them
        one-for-one instead of routing per conference.  Decisions are
        untouched — the kernel's results are byte-identical to the
        per-object path — only the work moves.  With
        ``include_healthy``, the fault-free reference routes that
        :meth:`try_join` also needs under a live fault set are primed
        too.
        """
        confs = [
            c if isinstance(c, Conference) else Conference.of(c) for c in conferences
        ]
        if not confs:
            return
        fault_sets = [frozenset(self._faults) if faults is None else frozenset(faults)]
        if include_healthy and fault_sets[0]:
            fault_sets.append(frozenset())
        if self._cache is not None:
            for fs in fault_sets:
                self._cache.prime(confs, faults=fs)
            return
        self._primed.clear()  # entries are single-shot; drop leftovers
        for fs in fault_sets:
            todo: dict[tuple, Conference] = {}
            for conf in confs:
                key = (conf.members, fs)
                if key not in todo:
                    todo[key] = conf
            outcomes = route_batch(
                self._network.topology,
                list(todo.values()),
                self._network.policy,
                faults=fs or None,
            )
            for key, outcome in zip(todo, outcomes):
                if outcome.ok:
                    self._primed[key] = (outcome.route.levels, dict(outcome.route.taps))
                elif isinstance(outcome.error, UnroutableError):
                    self._primed[key] = UnroutableError(*outcome.error.args)
                # Out-of-range members: not primeable — the sequential
                # path raises the same ValueError itself.

    def link_load(self, link: Point) -> int:
        """Current channel load on one inter-stage link."""
        return self._inner.link_load(link)

    def peak_load(self) -> int:
        """The worst current link load (0 when idle)."""
        return self._inner.peak_load()

    def snapshot(self) -> ConferenceSet:
        """The live conferences as a validated set."""
        return self._inner.snapshot()

    # -- admission under faults --------------------------------------------

    def try_join(
        self,
        conference: "Conference | list[int] | tuple[int, ...]",
        now: "float | None" = None,
    ) -> Route:
        """Admit a conference routed around the current fault set.

        Raises :class:`AdmissionDenied` with reason ``"ports"``,
        ``"capacity"``, or — new here — ``"fault"`` when no surviving
        route exists at all.  ``now`` (simulation time, when the caller
        knows it) only timestamps the trace span.
        """
        if not isinstance(conference, Conference):
            conference = Conference.of(conference)
        tr = self.tracer
        sid = None
        if tr is not None:
            sid = tr.span_open(
                "conference.submit",
                t=now,
                cid=conference.conference_id,
                size=len(conference.members),
            )
        try:
            route = self._admit(conference)
        except AdmissionDenied as denial:
            if sid is not None:
                tr.span_close(sid, t=now, status="denied", reason=denial.reason)
            self._count("repro_admissions_total", outcome=denial.reason)
            raise
        if sid is not None:
            tr.span_close(
                sid,
                t=now,
                status="admitted",
                links=route.n_links,
                degraded=conference.conference_id in self._degraded,
            )
        self._count("repro_admissions_total", outcome="admitted")
        return route

    def try_join_batch(
        self,
        conferences: "Iterable[Conference | list[int] | tuple[int, ...]]",
        now: "float | None" = None,
    ) -> list[SubmitOutcome]:
        """Admit a batch: one columnar routing pass, sequential verdicts.

        Routes the whole batch with the bitset kernel (via
        :meth:`prime_batch`), then replays :meth:`try_join` in order, so
        every outcome — including denial reasons and ledger state — is
        identical to submitting the conferences one by one.  Returns one
        :class:`SubmitOutcome` per conference, ``"admitted"`` (with the
        route) or ``"lost"`` (with the denial reason); no retries are
        scheduled.
        """
        confs = [
            c if isinstance(c, Conference) else Conference.of(c) for c in conferences
        ]
        self.prime_batch(confs, include_healthy=True)
        outcomes: list[SubmitOutcome] = []
        for conference in confs:
            try:
                route = self.try_join(conference, now=now)
            except AdmissionDenied as denial:
                outcomes.append(
                    SubmitOutcome("lost", conference.conference_id, reason=denial.reason)
                )
            else:
                outcomes.append(
                    SubmitOutcome("admitted", conference.conference_id, route=route)
                )
        return outcomes

    def _admit(self, conference: Conference) -> Route:
        clash = self._inner.ports_in_use & conference.member_set
        if clash:
            raise AdmissionDenied("ports", f"ports {sorted(clash)} already in a conference")
        faults = frozenset(self._faults)
        try:
            route = self._route(conference, faults)
        except UnroutableError as exc:
            raise AdmissionDenied("fault", str(exc)) from exc
        self._inner.admit_route(route)
        cid = conference.conference_id
        if faults:
            self._healthy[cid] = self._route(conference)
            if route != self._healthy[cid]:
                self._degraded.add(cid)
        else:
            self._healthy[cid] = route
        self._protect(route)
        return route

    def leave(self, conference_id: int, now: "float | None" = None) -> None:
        """Tear down a live conference (normal call completion)."""
        self._inner.leave(conference_id)
        self._healthy.pop(conference_id, None)
        self._degraded.discard(conference_id)
        if self._plans is not None:
            self._plans.invalidate(conference_id)
        if now is not None:
            self._observe(now)

    def resize(
        self,
        conference_id: int,
        members: "tuple[int, ...] | list[int]",
        now: "float | None" = None,
    ) -> ChurnResult:
        """Change a live conference's membership (members join/leave).

        Pure joins and pure leaves go through the incremental churn
        engine under the controller's :class:`ChurnPolicy` (the default):
        only the exact link diff is booked against the ledger, backup
        plans and cached routes crossing the touched links are
        invalidated in place, and the returned
        :class:`~repro.core.churn.ChurnResult` carries the disruption
        diff (``links_added``/``links_removed``/``taps_moved``/
        ``drift_links``).  Mixed changes, ``incremental=False``, and
        policy-limit fallbacks reroute from scratch (``mode`` says
        which path ran).  Raises :class:`AdmissionDenied` (and leaves
        the old route live) when a wanted port is taken or capacity
        refuses the added links,
        :class:`~repro.core.routing.UnroutableError` when no surviving
        route exists for the new membership, and
        :class:`~repro.core.churn.ChurnLimitExceeded` when a limit
        trips under ``fallback="raise"``.
        """
        old = self._inner.route_of(conference_id)
        conference = Conference.of(members, conference_id=conference_id)
        faults = frozenset(self._faults)
        churn = self._resize_churn(old, conference, faults)
        new = self._inner.apply_churn(churn)
        self._healthy[conference_id] = self._route(conference) if faults else new
        self._update_degraded(conference_id, new, now=now)
        touched = churn.links_added | churn.links_removed
        if touched:
            if self._cache is not None:
                self._cache.invalidate_links(touched)
            if self._plans is not None:
                self._plans.invalidate_links(touched)
        self._protect(new)
        if self.tracer is not None:
            self.tracer.event(
                "conference.resize",
                t=now,
                cid=conference_id,
                size=len(conference.members),
                mode=churn.mode,
                hitless=churn.hitless,
                drift=churn.drift_links,
                links_touched=churn.reconfigured_links,
            )
        self._count("repro_heals_total", action="resize")
        self._count("repro_churn_total", mode=churn.mode)
        if now is not None:
            self._observe(now)
        return churn

    def _resize_churn(
        self, old: Route, conference: Conference, faults: frozenset
    ) -> ChurnResult:
        """Compute the membership change under the churn policy.

        Pure joins extend the live route, pure leaves prune it; mixed
        changes and ``incremental=False`` reroute from scratch (through
        the cache-assisted router, so the full path stays bit-identical
        to the pre-churn behaviour).
        """
        policy = self._churn
        joined = sorted(conference.member_set - old.conference.member_set)
        left = sorted(old.conference.member_set - conference.member_set)
        incremental = policy.incremental and bool(joined) != bool(left)
        if not incremental:
            after = self._route(conference, faults)
            reason = None if policy.incremental else "policy"
            if policy.incremental and joined and left:
                reason = "mixed-change"
            return _diff(old, after, mode="full-reroute", fallback_reason=reason)
        topology = self._network.topology
        kwargs = dict(
            policy=self._network.policy,
            faults=faults or None,
            max_taps_moved=policy.max_taps_moved,
            drift_limit=policy.drift_limit,
            fallback=policy.fallback,
        )
        if left:
            return prune_route(topology, old, left, **kwargs)
        return extend_route(topology, old, joined, **kwargs)

    # -- retrying admission (arrivals) -------------------------------------

    def submit(
        self,
        loop: "EventLoop",
        conference: Conference,
        on_admitted: "Callable[[EventLoop, Route], None] | None" = None,
        on_lost: "LostListener | None" = None,
    ) -> SubmitOutcome:
        """Admit now or enqueue retries.

        Returns a :class:`SubmitOutcome` describing the synchronous
        verdict — ``admitted`` (with the route), ``queued`` (retries are
        scheduled; the terminal outcome arrives via the callbacks), or
        ``lost`` (denied with no retry budget).
        """
        return self._attempt_submit(loop, conference, on_admitted, on_lost, attempt=0)

    def _attempt_submit(self, loop, conference, on_admitted, on_lost, attempt):
        cid = conference.conference_id
        try:
            route = self.try_join(conference, now=loop.now)
        except AdmissionDenied as denial:
            if self._retry is None:
                self._trace_lost(loop, conference, denial.reason)
                if on_lost:
                    on_lost(loop, conference, denial.reason)
                return SubmitOutcome("lost", cid, reason=denial.reason)
            if attempt >= self._retry.max_retries:
                self._stats.retries_exhausted += 1
                self._count("repro_retries_total", outcome="exhausted")
                self._trace_lost(loop, conference, "retry-exhausted")
                if on_lost:
                    on_lost(loop, conference, "retry-exhausted")
                return SubmitOutcome("lost", cid, reason="retry-exhausted")
            self._schedule_retry(
                loop,
                attempt,
                lambda lp: self._attempt_submit(lp, conference, on_admitted, on_lost, attempt + 1),
                cid=cid,
            )
            return SubmitOutcome("queued", cid, reason=denial.reason)
        if attempt > 0:
            self._stats.retries_succeeded += 1
            self._count("repro_retries_total", outcome="succeeded")
        if on_admitted:
            on_admitted(loop, route)
        self._observe(loop.now)
        return SubmitOutcome("admitted", cid, route=route)

    def _schedule_retry(self, loop, attempt: int, action, cid: "int | None" = None) -> None:
        self._stats.retries_scheduled += 1
        # Draw the delay before tracing so the RNG call sequence is the
        # same with and without a tracer attached.
        delay = self._retry.delay(attempt, self._rng)
        if self.tracer is not None:
            self.tracer.event(
                "conference.retry", t=loop.now, cid=cid, attempt=attempt, delay=delay
            )
        self._count("repro_retries_total", outcome="scheduled")
        loop.schedule(delay, action)

    # -- fault transitions -------------------------------------------------

    def attach(self, injector) -> None:
        """Subscribe to a :class:`~repro.sim.faults.FaultInjector`."""
        injector.subscribe(self.handle_transition)

    def handle_transition(self, loop: "EventLoop", transition: "FaultTransition") -> None:
        """Injector callback: dispatch one failure/repair transition."""
        if transition.failed:
            self.apply_fault(loop, transition.point)
        else:
            self.apply_repair(loop, transition.point)

    def apply_fault(self, loop: "EventLoop", point: Point) -> None:
        """A point died: walk every affected live conference down the
        degradation ladder (tap move, then reroute, then drop).

        With protection on, affected conferences holding a valid backup
        plan for ``point`` switch to it in O(1) first; only stale or
        missing plans pay the reactive route search.  A ``fail`` of an
        already-failed point is an **explicit no-op** (the controller is
        already routing around it; nothing is recounted or re-healed) —
        duplicate transitions can reach here when several injectors or a
        manual driver share one controller.
        """
        if point in self._faults:
            return  # duplicate fail: already routing around this point
        self._faults.add(point)
        self._stats.record_link_failed(loop.now, point)
        self._count("repro_fault_transitions_total", kind="fail")
        faults = frozenset(self._faults)
        affected = [
            cid
            for cid in sorted(self._inner.live_conferences)
            if point in self._inner.route_of(cid).points
        ]
        if self._plans is None:
            # Reactive healing reroutes every affected conference: do the
            # routing in one columnar pass, then walk the ladder.  (With
            # protection on, plan hits skip routing entirely — priming
            # would compute routes the fastpath never asks for.)
            self.prime_batch(
                [self._inner.route_of(cid).conference for cid in affected],
                faults=faults,
            )
        for cid in affected:
            self._heal(loop, cid, self._inner.route_of(cid), faults, point=point)
        self._reprotect(faults)
        self._observe(loop.now)

    def apply_repair(self, loop: "EventLoop", point: Point) -> None:
        """A point came back: walk degraded conferences toward their
        fault-free routes (tap moves preferred, reroutes if capacity
        allows; a conference that cannot improve stays degraded).

        A ``repair`` of a point that was never failed is an **explicit
        no-op**, mirroring :meth:`apply_fault`'s duplicate handling.
        """
        if point not in self._faults:
            return  # repair of a point this controller never saw fail
        self._faults.discard(point)
        self._stats.record_link_repaired(loop.now, point)
        self._count("repro_fault_transitions_total", kind="repair")
        faults = frozenset(self._faults)
        self.prime_batch(
            [self._inner.route_of(cid).conference for cid in sorted(self._degraded)],
            faults=faults,
        )
        for cid in sorted(self._degraded):
            cur = self._inner.route_of(cid)
            try:
                new = self._route(cur.conference, faults)
            except UnroutableError:  # pragma: no cover - repairs only add paths
                continue
            if new == cur:
                continue
            if not self._swap(cid, cur, new, now=loop.now):
                continue  # no capacity for the better route yet
            self._update_degraded(cid, new, now=loop.now)
        self._reprotect(faults)
        self._observe(loop.now)

    def _heal(
        self, loop, cid: int, old: Route, faults: frozenset, point: "Point | None" = None
    ) -> None:
        """One disrupted conference: planned fast failover, else reactive.

        ``point`` (the failed point, when healing is driven by a fault
        transition) selects the backup plan; a valid plan resolves the
        surviving route — or the certainty that none exists — in O(1)
        and bit-identically to the reactive search, so only the recovery
        cost model (0 ticks vs 1) distinguishes the two paths.
        """
        new: "Route | None" = None
        sid = None
        fastpath = False
        tr = self.tracer
        if self._plans is not None and point is not None:
            status, payload = self._plans.lookup(old.conference, point, faults)
            self._stats.record_plan_lookup(status)
            self._count("repro_protect_plans_total", outcome=status)
            if status == "hit":
                fastpath = True
                self._stats.record_recovery(0.0)
                if tr is not None:
                    sid = tr.span_open(
                        "heal.fastpath", t=loop.now, cid=cid,
                        level=point[0], row=point[1],
                    )
                if isinstance(payload, UnroutableError):
                    # Negative plan: the drop is precomputed too.
                    if sid is not None:
                        tr.span_close(sid, t=loop.now, status="dropped")
                    self._drop(loop, cid, "fault")
                    return
                new = payload
        if new is None:
            if not fastpath and point is not None:
                self._stats.record_recovery(1.0)  # reactive route search
            try:
                new = self._route(old.conference, faults)
            except UnroutableError:
                self._drop(loop, cid, "fault")
                return
        if new != old and not self._swap(cid, old, new, now=loop.now):
            if sid is not None:
                tr.span_close(sid, t=loop.now, status="denied")
            self._drop(loop, cid, "capacity")
            return
        if sid is not None:
            tr.span_close(sid, t=loop.now, status="switched", links=new.n_links)
        self._update_degraded(cid, new, now=loop.now)

    def _swap(self, cid: int, old: Route, new: Route, now: "float | None" = None) -> bool:
        """Apply one ladder step; returns False when capacity refuses it."""
        tr = self.tracer
        added = new.links - old.links
        if not added:
            # Pure output-mux re-selection (plus possibly releasing
            # links): the hitless rung, it can never be denied.
            self._inner.replace_route(cid, new)
            moved = sum(
                1 for p in old.conference.members if old.taps[p] != new.taps[p]
            )
            self._stats.record_tap_move(moved)
            if tr is not None:
                tr.event("conference.tap_move", t=now, cid=cid, moved=moved)
            self._count("repro_heals_total", action="tap_move")
            return True
        sid = tr.span_open("conference.reroute", t=now, cid=cid) if tr is not None else None
        try:
            self._inner.replace_route(cid, new)
        except AdmissionDenied:
            if sid is not None:
                tr.span_close(sid, t=now, status="denied")
            self._count("repro_heals_total", action="reroute-denied")
            return False
        touched = len(added) + len(old.links - new.links)
        if sid is not None:
            tr.span_close(sid, t=now, status="ok", links_touched=touched)
        self._stats.record_reroute(touched)
        self._count("repro_heals_total", action="reroute")
        return True

    # -- backup-plan maintenance (off the failover critical path) ----------

    def _protect(self, route: Route) -> None:
        """(Re)plan one conference's backup routings for its live route."""
        if self._plans is None:
            return
        self._plans.protect(
            route.conference,
            route,
            frozenset(self._faults),
            router=self._route,
            load_of=self._inner.link_load,
        )

    def _reprotect(self, faults: frozenset) -> None:
        """Re-plan every live conference after a fault-set change.

        Runs *after* the transition's healing walk, so the O(1) switch
        already happened; this is the background work that keeps plans
        valid for the *next* single fault on top of the new set.  Plans
        whose conference was unaffected are recut too — their old base
        fault set no longer matches, so they would only ever be stale.
        """
        if self._plans is None:
            return
        for cid in sorted(self._inner.live_conferences):
            route = self._inner.route_of(cid)
            self._plans.protect(
                route.conference, route, faults,
                router=self._route, load_of=self._inner.link_load,
            )

    def _update_degraded(self, cid: int, route: Route, now: "float | None" = None) -> None:
        was = cid in self._degraded
        healthy = self._healthy.get(cid)
        if healthy is None:  # pragma: no cover - defensive
            healthy = self._healthy[cid] = self._route(route.conference)
        if route == healthy:
            self._degraded.discard(cid)
        else:
            self._degraded.add(cid)
        if self.tracer is not None and (cid in self._degraded) != was:
            self.tracer.event(
                "conference.recover" if was else "conference.degrade", t=now, cid=cid
            )

    # -- drops and restores ------------------------------------------------

    def _drop(self, loop, cid: int, cause: str) -> None:
        route = self._inner.route_of(cid)
        self._inner.leave(cid)
        self._healthy.pop(cid, None)
        self._degraded.discard(cid)
        if self._plans is not None:
            self._plans.invalidate(cid)
        self._stats.record_drop(cause)
        self._count("repro_drops_total", cause=cause)
        if self.tracer is not None:
            # The drop span stays open across the outage; it closes at
            # restore ("restored") or when retries run out ("lost").
            self._drop_spans[cid] = self.tracer.span_open(
                "conference.drop", t=loop.now, cid=cid, cause=cause
            )
        conference = route.conference
        if self.on_drop:
            self.on_drop(loop, conference)  # opens the outage window
        if self._retry is None:
            self._stats.abandon_outage(cid)
            self._close_drop_span(cid, loop.now, "lost")
            if self.on_lost:
                self.on_lost(loop, conference, cause)
            return
        self._down[cid] = conference
        self._schedule_retry(
            loop, 0, lambda lp: self._attempt_restore(lp, conference, attempt=1), cid=cid
        )

    def _attempt_restore(self, loop, conference: Conference, attempt: int) -> None:
        cid = conference.conference_id
        if cid not in self._down:  # pragma: no cover - defensive
            return
        try:
            route = self.try_join(conference, now=loop.now)
        except AdmissionDenied:
            if attempt >= self._retry.max_retries:
                del self._down[cid]
                self._stats.retries_exhausted += 1
                self._count("repro_retries_total", outcome="exhausted")
                self._stats.abandon_outage(cid)
                self._close_drop_span(cid, loop.now, "lost")
                if self.on_lost:
                    self.on_lost(loop, conference, "retry-exhausted")
                self._observe(loop.now)
                return
            self._schedule_retry(
                loop,
                attempt,
                lambda lp: self._attempt_restore(lp, conference, attempt + 1),
                cid=cid,
            )
            return
        del self._down[cid]
        self._stats.retries_succeeded += 1
        self._count("repro_retries_total", outcome="succeeded")
        self._stats.close_outage(cid, loop.now)
        self._close_drop_span(cid, loop.now, "restored")
        if self.on_restore:
            self.on_restore(loop, route)
        self._observe(loop.now)

    def _close_drop_span(self, cid: int, now: "float | None", status: str) -> None:
        sid = self._drop_spans.pop(cid, None)
        if sid is not None:
            self.tracer.span_close(sid, t=now, status=status)

    def _trace_lost(self, loop, conference: Conference, reason: str) -> None:
        if self.tracer is not None:
            self.tracer.event(
                "conference.lost",
                t=loop.now,
                cid=conference.conference_id,
                reason=reason,
            )

    # -- accounting --------------------------------------------------------

    def _count(self, name: str, **labels) -> None:
        if self._metrics is not None:
            self._metrics.counter(name, _COUNTER_HELP.get(name, "")).inc(**labels)

    def _observe(self, now: float) -> None:
        self._stats.observe(
            now,
            live=len(self._inner.live_conferences),
            degraded=len(self._degraded),
            down=len(self._down),
        )
        reg = self._metrics
        if reg is None:
            return
        peak = reg.gauge(
            "repro_conferences_peak", "Peak concurrent conferences by state"
        )
        peak.set_max(len(self._inner.live_conferences), state="live")
        peak.set_max(len(self._degraded), state="degraded")
        peak.set_max(len(self._down), state="down")
        if self._plans is not None:
            reg.gauge(
                "repro_protect_plans_resident", "Backup plans currently stored"
            ).set(len(self._plans))
        occupancy = reg.histogram(
            "repro_link_occupancy",
            "Channel load of each occupied inter-stage link per observation, by entering stage",
            buckets=DEFAULT_OCCUPANCY_BUCKETS,
        )
        multiplicity = reg.gauge(
            "repro_conflict_multiplicity",
            "Peak observed conflict multiplicity (max link load) per entering stage",
        )
        for level, loads in self._inner.stage_loads().items():
            stage = str(level)
            for load in loads:
                occupancy.observe(load, stage=stage)
            multiplicity.set_max(max(loads), stage=stage)

    def finalize(self, now: float) -> None:
        """Close the availability integrals at the simulation horizon."""
        self._stats.finalize(now)
