"""The paper's core contribution: conference routing and conflict analysis."""

from repro.core.admission import (
    AdmissionController,
    AdmissionDenied,
    BuddyAllocator,
    place_aligned,
)
from repro.core.churn import (
    ChurnLimitExceeded,
    ChurnPolicy,
    ChurnResult,
    apply_churn,
    extend_route,
    join_member,
    leave_member,
    prune_route,
)
from repro.core.conference import Conference, ConferenceSet
from repro.core.conflict import ConflictReport, analyze_conflicts, link_loads
from repro.core.groupcast import GroupConnection, GroupRoute, route_group
from repro.core.healing import RetryPolicy, SelfHealingController, SubmitOutcome
from repro.core.network import ConferenceNetwork, RealizationResult
from repro.core.routing import (
    Route,
    RoutingPolicy,
    TapPolicy,
    UnroutableError,
    combine_at_level,
    delivered_members,
    route_conference,
)

__all__ = [
    "AdmissionController",
    "AdmissionDenied",
    "BuddyAllocator",
    "ChurnLimitExceeded",
    "ChurnPolicy",
    "ChurnResult",
    "Conference",
    "ConferenceNetwork",
    "ConferenceSet",
    "ConflictReport",
    "GroupConnection",
    "GroupRoute",
    "RealizationResult",
    "RetryPolicy",
    "Route",
    "RoutingPolicy",
    "SelfHealingController",
    "SubmitOutcome",
    "TapPolicy",
    "UnroutableError",
    "analyze_conflicts",
    "apply_churn",
    "combine_at_level",
    "delivered_members",
    "extend_route",
    "join_member",
    "leave_member",
    "prune_route",
    "link_loads",
    "place_aligned",
    "route_conference",
    "route_group",
]
