"""Self-routing of conferences through a multistage network.

The routing model (from the paper's design): every member of a
conference injects its signal at its input; switches on the way combine
signals of the same conference (fan-in) and broadcast them onward
(fan-out); each member's output multiplexer taps the earliest inter-stage
link on its own row at which the signal is the *full* combination of all
members.

The algorithm is a forward/backward sweep over the layered graph:

1. **Forward pass** — for every point ``(t, r)`` compute ``F(t, r)``,
   the set of members whose signal can be present there (a bitmask over
   member indices).  ``F`` grows along edges, so it is computed level by
   level in one pass.
2. **Tap selection** — member ``j`` taps ``(t_j, j)`` where ``t_j`` is
   the earliest level with ``F(t_j, j)`` equal to the full member mask
   (policy ``earliest``), or the final level (policy ``final``, i.e. the
   relay-disabled ablation).
3. **Backward pass** — mark every point from which some tap is still
   reachable; the route uses exactly the points that are both forward-
   active and backward-marked.

This "natural" routing is *self-routing* in the paper's sense: the used
region is determined pointwise from member addresses with no global
computation, and for the indirect binary cube it matches the closed form
in ``repro.analysis.theory`` (a fact the test suite checks exhaustively).
A greedy pruning pass is available as an ablation; it can only remove
redundant fan-out, never the conflicts forced by the banyan unique-path
property.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.conference import Conference
from repro.obs.metrics import timed
from repro.topology.network import MultistageNetwork, Point

__all__ = [
    "TapPolicy",
    "RoutingPolicy",
    "Route",
    "UnroutableError",
    "route_conference",
    "route_conference_sequential",
    "delivered_members",
]


class UnroutableError(ValueError):
    """A conference cannot be realized (typically due to faults).

    On a healthy full-access network every conference is routable; this
    error therefore only occurs under fault injection, when a member is
    cut off from the fabric or no surviving level combines the full
    conference on some member's row.
    """


class TapPolicy(str, Enum):
    """When each member's output mux taps the combined signal."""

    #: Tap the earliest level at which the full combination reaches the
    #: member's row (requires the mux relay enhancement).
    EARLIEST = "earliest"
    #: Tap the final stage only (plain network, relay disabled).
    FINAL = "final"


@dataclass(frozen=True)
class RoutingPolicy:
    """Knobs of the routing algorithm.

    ``prune`` enables the greedy redundant-branch removal ablation; the
    default natural routing is what the paper's conflict analysis is
    about.
    """

    tap_policy: TapPolicy = TapPolicy.EARLIEST
    prune: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "tap_policy", TapPolicy(self.tap_policy))


@dataclass(frozen=True)
class Route:
    """The realization of one conference in a network.

    ``levels`` maps each level ``t`` to a dict ``row -> member bitmask``
    of used points and the partial combination they carry; ``taps`` maps
    each member port to the level its output mux selects.
    """

    conference: Conference
    n_ports: int
    n_stages: int
    levels: tuple[dict[int, int], ...]
    taps: dict[int, int]

    @property
    def points(self) -> frozenset[Point]:
        """All used points (level, row), including level-0 injections."""
        return frozenset(
            (t, r) for t, rows in enumerate(self.levels) for r in rows
        )

    @property
    def links(self) -> frozenset[Point]:
        """Used inter-stage links, identified by their downstream point.

        Level-0 points are network inputs, not links, so they are
        excluded; these are the wires on which disjoint conferences can
        collide.
        """
        return frozenset(
            (t, r) for t, rows in enumerate(self.levels) if t >= 1 for r in rows
        )

    @property
    def n_links(self) -> int:
        """Number of inter-stage links the route occupies."""
        return sum(len(rows) for rows in self.levels[1:])

    @property
    def depth(self) -> int:
        """Deepest level the conference reaches (max tap level)."""
        return max(self.taps.values())

    def stages_traversed(self, member: int) -> int:
        """Switching stages member ``member``'s received signal crossed."""
        try:
            return self.taps[member]
        except KeyError:
            raise ValueError(f"port {member} is not a member of this route's conference") from None

    # -- fabric adapter (shared with GroupRoute) ------------------------

    @property
    def channel_id(self) -> int:
        """Channel identifier on dilated links (the conference id)."""
        return self.conference.conference_id

    @property
    def injections(self) -> tuple[int, ...]:
        """Ports that transmit into the fabric (every member)."""
        return self.conference.members

    @property
    def expected_delivery(self) -> frozenset[int]:
        """What each tap must receive: the full member set."""
        return self.conference.member_set

    @property
    def exclusive_ports(self) -> frozenset[int]:
        """Ports this connection claims exclusively."""
        return self.conference.member_set

    def mask_at(self, level: int, row: int) -> int:
        """Member bitmask carried at ``(level, row)`` (0 when unused)."""
        return self.levels[level].get(row, 0)

    def members_at(self, level: int, row: int) -> frozenset[int]:
        """Member ports whose signal is mixed at ``(level, row)``."""
        mask = self.mask_at(level, row)
        mem = self.conference.members
        return frozenset(mem[i] for i in range(len(mem)) if (mask >> i) & 1)


def _forward_masks(
    net: MultistageNetwork,
    conference: Conference,
    dead: frozenset = frozenset(),
) -> list[dict[int, int]]:
    """Per-level ``row -> member bitmask`` of reachable member signals.

    ``dead`` points (faulty links/injections) carry no signal: masks are
    never written into them, so downstream reachability reflects only
    surviving paths.
    """
    tab = net.successor_table
    sides = range(tab.shape[2])
    level0 = {
        port: 1 << idx
        for idx, port in enumerate(conference.members)
        if (0, port) not in dead
    }
    levels = [level0]
    cur = level0
    for s in range(net.n_stages):
        nxt: dict[int, int] = {}
        for row, mask in cur.items():
            for side in sides:
                r2 = int(tab[s, row, side])
                if (s + 1, r2) in dead:
                    continue
                nxt[r2] = nxt.get(r2, 0) | mask
        levels.append(nxt)
        cur = nxt
    return levels


def _select_taps(
    forward: list[dict[int, int]],
    conference: Conference,
    policy: RoutingPolicy,
    n_stages: int,
) -> dict[int, int]:
    """Choose the tap level for every member under the policy."""
    full = conference.full_mask
    taps: dict[int, int] = {}
    for port in conference.members:
        if policy.tap_policy is TapPolicy.FINAL:
            if forward[n_stages].get(port, 0) != full:
                raise UnroutableError(
                    f"conference cannot be combined at final-stage output {port}"
                )
            taps[port] = n_stages
            continue
        for t in range(n_stages + 1):
            if forward[t].get(port, 0) == full:
                taps[port] = t
                break
        else:
            raise UnroutableError(
                f"no surviving level combines the full conference on row {port}"
            )
    return taps


def _backward_mark(
    net: MultistageNetwork,
    taps: dict[int, int],
    n_stages: int,
    dead: frozenset = frozenset(),
) -> list[set[int]]:
    """Rows per level from which some tap point is still reachable,
    traversing only surviving points."""
    tab = net.predecessor_table
    marked: list[set[int]] = [set() for _ in range(n_stages + 1)]
    for port, level in taps.items():
        marked[level].add(port)
    sides = range(tab.shape[2])
    for t in range(n_stages, 0, -1):
        below = marked[t]
        dest = marked[t - 1]
        for row in below:
            for side in sides:
                prev = int(tab[t - 1, row, side])
                if (t - 1, prev) not in dead:
                    dest.add(prev)
    return marked


def delivered_members(
    net: MultistageNetwork,
    conference: Conference,
    levels: "list[dict[int, int]] | tuple[dict[int, int], ...]",
    taps: dict[int, int],
) -> dict[int, int]:
    """Recompute the bitmask actually arriving at each tap.

    Propagates signals forward *restricted to the used region* — the
    check that a candidate route (e.g. after pruning) still delivers the
    full combination to every member.  Returns ``port -> mask at its
    tap``.
    """
    tab = net.successor_table
    cur = {port: 1 << idx for idx, port in enumerate(conference.members) if port in levels[0]}
    carried: list[dict[int, int]] = [cur]
    for s in range(net.n_stages):
        used_next = levels[s + 1]
        nxt: dict[int, int] = {}
        for row, mask in cur.items():
            for side in range(tab.shape[2]):
                r2 = int(tab[s, row, side])
                if r2 in used_next:
                    nxt[r2] = nxt.get(r2, 0) | mask
        carried.append(nxt)
        cur = nxt
    return {port: carried[t].get(port, 0) for port, t in taps.items()}


def _prune(
    net: MultistageNetwork,
    conference: Conference,
    levels: list[dict[int, int]],
    taps: dict[int, int],
) -> list[dict[int, int]]:
    """Greedy removal of redundant points, deepest level first.

    A point can be removed when every tap still receives the full
    combination afterwards.  Tap points and member injections are kept
    unconditionally.  This is a heuristic — minimizing the used link
    count exactly is a Steiner-type problem — but it suffices to measure
    how much of the natural route is redundant fan-out.
    """
    full = conference.full_mask
    keep = {(t, port) for port, t in taps.items()} | {(0, p) for p in conference.members}
    work = [dict(rows) for rows in levels]
    candidates = [
        (t, r)
        for t in range(net.n_stages, -1, -1)
        for r in sorted(levels[t])
        if (t, r) not in keep
    ]
    for t, r in candidates:
        saved = work[t].pop(r)
        delivered = delivered_members(net, conference, work, taps)
        if any(delivered[port] != full for port in taps):
            work[t][r] = saved
    return work


@timed("repro_route_conference")
def route_conference(
    net: MultistageNetwork,
    conference: Conference,
    policy: "RoutingPolicy | None" = None,
    faults: "frozenset | None" = None,
) -> Route:
    """Route one conference through ``net`` under ``policy``.

    ``faults`` is an optional set of dead points ``(level, row)`` —
    failed inter-stage links (levels >= 1) or failed injections (level
    0).  The router uses only surviving paths and taps; the mux relay's
    choice of tap level is what gives the network its fault tolerance
    (see ``repro.analysis.resilience``).

    Returns a :class:`Route`; raises :class:`UnroutableError` when the
    conference cannot be combined on some member's row (only possible
    under faults on the built-in full-access topologies).

    There is a single routing kernel: this delegates to
    :func:`repro.core.batch.route_batch` as a batch of one (the
    columnar sweep, byte-identical to the sequential walk — the golden
    corpus and differential suite hold the two equal per repr byte).
    :func:`route_conference_sequential` is the original per-object
    implementation, kept as the differential-test oracle and as the
    fallback for the cases the kernel does not cover (pruning, > 63
    members).
    """
    from repro.core.batch import route_batch  # circular at module load

    return route_batch(net, [conference], policy, faults)[0].unwrap()


def route_conference_sequential(
    net: MultistageNetwork,
    conference: Conference,
    policy: "RoutingPolicy | None" = None,
    faults: "frozenset | None" = None,
) -> Route:
    """The sequential reference implementation of :func:`route_conference`.

    Same contract, same results, same error args — one conference at a
    time through per-member Python dict sweeps.  The columnar kernel in
    :mod:`repro.core.batch` is the production path; this walk is the
    oracle the differential tests compare it against, and the engine
    for the kernel's fallback cases (``prune=True``, conferences past
    the 63-member bitmask bound).
    """
    policy = policy or RoutingPolicy()
    dead = frozenset(faults) if faults else frozenset()
    if conference.members[-1] >= net.n_ports:
        raise ValueError(
            f"conference member {conference.members[-1]} out of range for "
            f"{net.n_ports}-port network"
        )
    forward = _forward_masks(net, conference, dead)
    taps = _select_taps(forward, conference, policy, net.n_stages)
    marked = _backward_mark(net, taps, net.n_stages, dead)
    levels = [
        {row: mask for row, mask in forward[t].items() if row in marked[t]}
        for t in range(net.n_stages + 1)
    ]
    if policy.prune:
        levels = _prune(net, conference, levels, taps)
    levels = _carried_masks(net, conference, levels)
    route = Route(
        conference=conference,
        n_ports=net.n_ports,
        n_stages=net.n_stages,
        levels=tuple(levels),
        taps=taps,
    )
    # Internal invariant: the route always delivers the full combination;
    # cheap to assert and catches topology/wiring bugs early.
    full = conference.full_mask
    bad = {port for port, t in taps.items() if route.mask_at(t, port) != full}
    if bad:
        raise AssertionError(
            f"routing invariant violated: taps {sorted(bad)} missing members "
            f"(topology {net.name})"
        )
    return route


def _carried_masks(
    net: MultistageNetwork,
    conference: Conference,
    levels: list[dict[int, int]],
) -> list[dict[int, int]]:
    """Canonicalize a used region to the masks signals actually carry.

    Re-propagates injections through the used region and drops points
    that end up carrying nothing (pruning can strand redundant points).
    For the natural route this is the identity: within the backward-
    marked region the carried mask equals the forward-reachability mask.
    """
    tab = net.successor_table
    cur = {port: 1 << idx for idx, port in enumerate(conference.members) if port in levels[0]}
    out = [cur]
    for s in range(net.n_stages):
        used_next = levels[s + 1]
        nxt: dict[int, int] = {}
        for row, mask in cur.items():
            for side in range(tab.shape[2]):
                r2 = int(tab[s, row, side])
                if r2 in used_next:
                    nxt[r2] = nxt.get(r2, 0) | mask
        out.append(nxt)
        cur = nxt
    return out


def combine_at_level(route: Route, level: int) -> frozenset[int]:
    """Rows at ``level`` carrying the *full* combination of the route's
    conference — the rows whose muxes could tap at this level."""
    full = route.conference.full_mask
    return frozenset(r for r, mask in route.levels[level].items() if mask == full)
