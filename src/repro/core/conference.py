"""Conference and conference-set abstractions.

A *conference* is a group of network ports whose users all talk to and
hear each other; a *conference set* is a collection of pairwise-disjoint
conferences simultaneously present in the network — the setting in which
the paper's conflict-multiplicity question is posed.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.util.bits import aligned_block_of, enclosing_block_exponent, ilog2
from repro.util.validation import check_network_size, check_ports

__all__ = ["Conference", "ConferenceSet"]


@dataclass(frozen=True)
class Conference:
    """An immutable conference: a set of member ports plus a label.

    ``members`` is stored sorted; equality and hashing include the label
    so two same-membership conferences with different ids stay distinct
    in dynamic scenarios (e.g. a conference that leaves and reforms).
    """

    members: tuple[int, ...]
    conference_id: int = 0

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a conference needs at least one member")
        ordered = tuple(sorted(self.members))
        if len(set(ordered)) != len(ordered):
            raise ValueError(f"duplicate members in conference: {self.members}")
        if ordered[0] < 0:
            raise ValueError(f"negative member port: {ordered[0]}")
        object.__setattr__(self, "members", ordered)

    @staticmethod
    def of(members: Iterable[int], conference_id: int = 0) -> "Conference":
        """Convenience constructor from any iterable of ports."""
        return Conference(members=tuple(members), conference_id=conference_id)

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.members)

    @property
    def member_set(self) -> frozenset[int]:
        """Members as a frozenset."""
        return frozenset(self.members)

    def member_index(self, port: int) -> int:
        """Position of ``port`` in the sorted member tuple.

        Routing represents partial combinations as bitmasks over these
        indices.
        """
        try:
            return self.members.index(port)
        except ValueError:
            raise ValueError(f"port {port} is not a member of conference {self.conference_id}") from None

    @property
    def full_mask(self) -> int:
        """Bitmask with one bit per member, all set."""
        return (1 << self.size) - 1

    def enclosing_block_exponent(self, n_ports: int) -> int:
        """Exponent of the smallest aligned block containing all members.

        Equals the number of indirect-binary-cube stages the conference
        needs before every member row carries the full combination.
        """
        n = check_network_size(n_ports)
        if self.members[-1] >= n_ports:
            raise ValueError(
                f"member {self.members[-1]} out of range for an {n_ports}-port network"
            )
        return enclosing_block_exponent(self.members, n)

    def is_block_aligned(self, n_ports: int) -> bool:
        """True when the members exactly fill their enclosing aligned block.

        Aligned conferences are the Yang-2001 placement discipline under
        which the cube network is conflict-free.
        """
        k = self.enclosing_block_exponent(n_ports)
        return self.size == (1 << k)

    def spans(self, n_ports: int) -> range:
        """The enclosing aligned block as a range of ports."""
        k = self.enclosing_block_exponent(n_ports)
        return aligned_block_of(self.members[0], k)

    def __repr__(self) -> str:
        mem = ",".join(map(str, self.members))
        return f"Conference(id={self.conference_id}, members=[{mem}])"


@dataclass(frozen=True)
class ConferenceSet:
    """A validated collection of pairwise-disjoint conferences.

    Construction enforces the paper's standing assumption: conferences
    simultaneously present in the network are disjoint (a port belongs
    to at most one conference at a time) and fit the network.
    """

    n_ports: int
    conferences: tuple[Conference, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Any port count >= 2 is legal here: radix-r networks have
        # r**n ports.  Binary-only helpers (n_stages, block math) keep
        # their power-of-two checks.
        if not isinstance(self.n_ports, int) or isinstance(self.n_ports, bool):
            raise TypeError(f"n_ports must be an int, got {type(self.n_ports).__name__}")
        if self.n_ports < 2:
            raise ValueError(f"need at least 2 ports, got {self.n_ports}")
        confs = tuple(self.conferences)
        object.__setattr__(self, "conferences", confs)
        occupied: set[int] = set()
        ids: set[int] = set()
        for conf in confs:
            check_ports(conf.members, self.n_ports, name=f"conference {conf.conference_id} members")
            overlap = occupied.intersection(conf.members)
            if overlap:
                raise ValueError(
                    f"conference {conf.conference_id} overlaps earlier conferences "
                    f"on ports {sorted(overlap)}"
                )
            occupied.update(conf.members)
            if conf.conference_id in ids:
                raise ValueError(f"duplicate conference id {conf.conference_id}")
            ids.add(conf.conference_id)

    @staticmethod
    def of(n_ports: int, member_groups: Iterable[Iterable[int]]) -> "ConferenceSet":
        """Build a set from bare member groups, auto-assigning ids."""
        confs = tuple(
            Conference.of(group, conference_id=i) for i, group in enumerate(member_groups)
        )
        return ConferenceSet(n_ports=n_ports, conferences=confs)

    @property
    def n_stages(self) -> int:
        """``log2`` of the network size (binary networks only)."""
        return ilog2(self.n_ports)

    def __len__(self) -> int:
        return len(self.conferences)

    def __iter__(self) -> Iterator[Conference]:
        return iter(self.conferences)

    def __getitem__(self, idx: int) -> Conference:
        return self.conferences[idx]

    @property
    def occupied_ports(self) -> frozenset[int]:
        """All ports belonging to some conference."""
        return frozenset(p for conf in self.conferences for p in conf.members)

    @property
    def load(self) -> float:
        """Fraction of ports occupied, the natural offered-load measure."""
        return len(self.occupied_ports) / self.n_ports

    def add(self, conference: Conference) -> "ConferenceSet":
        """A new set with ``conference`` added (validation re-runs)."""
        return ConferenceSet(self.n_ports, self.conferences + (conference,))

    def remove(self, conference_id: int) -> "ConferenceSet":
        """A new set without the conference carrying ``conference_id``."""
        remaining = tuple(c for c in self.conferences if c.conference_id != conference_id)
        if len(remaining) == len(self.conferences):
            raise KeyError(f"no conference with id {conference_id}")
        return ConferenceSet(self.n_ports, remaining)

    def sizes(self) -> Sequence[int]:
        """Conference sizes, in set order."""
        return tuple(c.size for c in self.conferences)
