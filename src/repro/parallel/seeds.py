"""Deterministic seed streams for sharded Monte Carlo experiments.

The parallel engine's reproducibility contract rests on one rule: the
RNG stream of trial ``i`` is a pure function of ``(root seed, i)`` and
nothing else — not the worker that happens to execute the trial, not the
chunk it was batched into, not how many trials run before it.  NumPy's
:class:`~numpy.random.SeedSequence` gives exactly this: spawning ``n``
children off one root assigns child ``i`` the spawn key ``(i,)``, so the
children are stable under re-chunking and *prefix-stable* under growing
``n`` (trial 3 of a 10-trial run is trial 3 of a 1000-trial run).

Experiments may instead pass an explicit per-trial seed list (the legacy
benchmarks seed trial ``i`` with ``base + i``); the engine treats both
uniformly as "one seed value per trial".
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

import numpy as np

__all__ = [
    "spawn_seed_sequences",
    "trial_seeds",
    "seed_fingerprint",
    "chunk_slices",
    "chunk_tasks",
]

T = TypeVar("T")


def spawn_seed_sequences(seed: int, count: int) -> list[np.random.SeedSequence]:
    """``count`` child seed sequences of ``SeedSequence(seed)``.

    Child ``i`` depends only on ``(seed, i)``: two calls with the same
    root agree element-wise on any common prefix, regardless of
    ``count`` (the property the hypothesis suite checks).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count == 0:
        return []
    return np.random.SeedSequence(seed).spawn(count)


def trial_seeds(
    count: int,
    seed: "int | None" = None,
    seeds: "Sequence[int | np.random.SeedSequence] | None" = None,
) -> "list[int | np.random.SeedSequence]":
    """Resolve the per-trial seed values for a ``count``-trial run.

    Exactly one of ``seed`` (split via :func:`spawn_seed_sequences`) or
    ``seeds`` (explicit per-trial values, e.g. the legacy ``base + i``
    convention) selects the stream; ``seeds`` must then have length
    ``count``.
    """
    if seeds is not None:
        if seed is not None:
            raise ValueError("pass either seed or seeds, not both")
        seeds = list(seeds)
        if len(seeds) != count:
            raise ValueError(f"need {count} per-trial seeds, got {len(seeds)}")
        return seeds
    return list(spawn_seed_sequences(0 if seed is None else seed, count))


def seed_fingerprint(seed: "int | np.random.SeedSequence") -> tuple[int, ...]:
    """A 128-bit digest of the stream a seed value denotes.

    Two seed values with equal fingerprints initialize byte-identical
    PCG64 generators; the property tests use this to assert shard
    streams never collide.
    """
    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    return tuple(int(w) for w in seed.generate_state(4, np.uint64))


def chunk_slices(count: int, chunk_size: int) -> list[slice]:
    """Contiguous slices covering ``range(count)`` in chunks.

    The deterministic reduction concatenates chunk results in slice
    order, which by construction equals trial order — the chunking is
    therefore invisible in the output.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [slice(lo, min(lo + chunk_size, count)) for lo in range(0, count, chunk_size)]


def chunk_tasks(items: Sequence[T], chunk_size: int) -> list[list[T]]:
    """Split ``items`` into ordered chunks of at most ``chunk_size``."""
    return [list(items[s]) for s in chunk_slices(len(items), chunk_size)]
