"""Parallelized experiment kernels for the Monte Carlo sweeps.

Each public function here is an experiment family from the benchmark
suite re-expressed as sharded trials for
:class:`~repro.parallel.runner.ExperimentRunner`:

* :func:`random_load_arm` — one cell of the F1 random-traffic sweep
  (topology × workload × load), returning exact per-trial records;
* :func:`search_trials` / :func:`randomized_search_parallel` — the
  randomized worst-case search with per-trial seed streams;
* :func:`group_traffic_trial` — the E3 connection-shape comparison;
* :func:`traffic_arm` / :func:`availability_arm` — the F3 blocking and
  E5 availability sweeps, parallelized over their independent arms.

The module-level ``_*_trial`` functions are the units workers execute;
they resolve networks through the per-process registry
(:func:`~repro.parallel.cache.shared_network`) and route through the
shared :class:`~repro.parallel.cache.RouteCache`, so a warm worker
never rebuilds topology tables and reuses routes of recurring
placements.  Every kernel is a pure function of ``(seed, params)``;
the differential suite checks the serial and parallel engines agree
record-for-record.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

import numpy as np

from repro.core.conference import Conference, ConferenceSet
from repro.core.conflict import analyze_conflicts
from repro.core.network import ConferenceNetwork
from repro.obs.metrics import DEFAULT_OCCUPANCY_BUCKETS, maybe_registry
from repro.parallel.cache import shared_network, shared_route_cache
from repro.parallel.runner import ExperimentRunner, NetworkSpec
from repro.sim.scenarios import run_traffic
from repro.workloads.generators import clustered, interleaved, uniform_partition

__all__ = [
    "WORKLOAD_GENERATORS",
    "random_load_trial",
    "random_load_arm",
    "summarize_multiplicities",
    "search_trial",
    "search_trials",
    "reduce_search_records",
    "randomized_search_parallel",
    "group_traffic_trial",
    "traffic_arm",
    "availability_arm",
]

#: Workload name -> generator used by the random-load sweep.  The
#: generators take ``(n_ports, seed=..., **kwargs)``.
WORKLOAD_GENERATORS = {
    "uniform": uniform_partition,
    "clustered": clustered,
    "interleaved": interleaved,
}


def _runner(params: "dict | None" = None, **overrides) -> ExperimentRunner:
    opts = dict(params or {})
    opts.update(overrides)
    warm = ()
    if "topology" in opts and "n_ports" in opts:
        warm = (NetworkSpec(opts["topology"], opts["n_ports"]),)
    return ExperimentRunner(
        workers=opts.get("workers"),
        chunk_size=opts.get("chunk_size"),
        warm=warm,
        metrics=opts.get("metrics"),
    )


def _record_trial(kind: str, multiplicity: int) -> None:
    """Gated kernel telemetry: a no-op unless the chunk runs metered."""
    registry = maybe_registry()
    if registry is None:
        return
    registry.counter("repro_trials_total", "Experiment kernel trials executed").inc(
        kind=kind
    )
    registry.histogram(
        "repro_trial_multiplicity",
        "Peak conflict multiplicity found per kernel trial",
        buckets=DEFAULT_OCCUPANCY_BUCKETS,
    ).observe(multiplicity, kind=kind)


# -- F1: required dilation under random traffic ----------------------------


def random_load_trial(index: int, seed, params: dict) -> dict:
    """Route one random conference set; report its conflict pressure."""
    cache = shared_route_cache(params["topology"], params["n_ports"])
    generate = WORKLOAD_GENERATORS[params.get("workload", "uniform")]
    kwargs = dict(params.get("generator_kwargs") or {})
    conferences = generate(params["n_ports"], seed=seed, **kwargs)
    # Route the whole set through the columnar kernel in one pass; the
    # per-conference lookups below then hit the cache.  Records are
    # identical either way (primed routes are byte-identical).
    cache.prime(conferences)
    routes = [cache.route(conf) for conf in conferences]
    report = analyze_conflicts(routes, n_stages=cache.network.n_stages)
    _record_trial("random_load", int(report.max_multiplicity))
    return {
        "trial": index,
        "max_multiplicity": int(report.max_multiplicity),
        "n_conferences": len(conferences),
        "n_links": int(sum(route.n_links for route in routes)),
    }


def summarize_multiplicities(records: Sequence[dict]) -> dict:
    """The F1 summary statistics of an arm's per-trial records."""
    arr = np.asarray([r["max_multiplicity"] for r in records])
    return {
        "mean": float(arr.mean()),
        "p95": float(np.percentile(arr, 95)),
        "max": int(arr.max()),
    }


def random_load_arm(
    topology: str,
    n_ports: int,
    workload: str = "uniform",
    trials: int = 40,
    seed: "int | None" = None,
    seeds: "Sequence[int | np.random.SeedSequence] | None" = None,
    workers: "int | None" = None,
    chunk_size: "int | None" = None,
    metrics=None,
    **generator_kwargs,
) -> dict:
    """One sweep cell: ``trials`` random sets on one topology/workload.

    Returns ``{"records": [per-trial dicts], "summary": {mean, p95,
    max}}``.  Passing ``seeds=[base + i ...]`` reproduces the legacy
    serial benchmarks byte-for-byte; passing ``seed`` engages the
    spawned seed stream.  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) turns on worker-side
    collection; records are identical either way.
    """
    if workload not in WORKLOAD_GENERATORS:
        known = ", ".join(sorted(WORKLOAD_GENERATORS))
        raise KeyError(f"unknown workload {workload!r}; known: {known}")
    params = {
        "topology": topology,
        "n_ports": n_ports,
        "workload": workload,
        "generator_kwargs": generator_kwargs,
    }
    runner = _runner(params, workers=workers, chunk_size=chunk_size, metrics=metrics)
    records = runner.run_trials(random_load_trial, trials, params=params, seed=seed, seeds=seeds)
    return {"records": records, "summary": summarize_multiplicities(records)}


# -- randomized worst-case search ------------------------------------------


def search_trial(index: int, seed, params: dict) -> dict:
    """One hill-climbing trial of the randomized worst-case search.

    Mirrors one loop body of
    :func:`repro.analysis.worstcase.randomized_search`, but draws from a
    per-trial stream and routes through the worker's shared cache (pair
    routes recur heavily across trials, so the cache hits).
    """
    n = params["n_ports"]
    cache = shared_route_cache(params["topology"], n, params.get("policy"))
    rng = np.random.default_rng(seed)
    ports = rng.permutation(n)
    pairs = [
        (int(ports[2 * i]), int(ports[2 * i + 1]))
        for i in range(min(params.get("pool_size", 64), n // 2))
    ]
    # One columnar pass resolves the seed matching (see
    # ``randomized_search``); decisions and records are unchanged.
    cache.prime(pairs)
    loads: Counter = Counter()
    links_of: dict[tuple[int, int], frozenset] = {}
    for pair in pairs:
        links = cache.route(Conference.of(pair)).links
        links_of[pair] = links
        loads.update(links)
    if not loads:
        _record_trial("search", 0)
        return {"trial": index, "multiplicity": 0, "link": None, "groups": []}
    target, _ = max(loads.items(), key=lambda kv: kv[1])
    keep = [p for p in pairs if target in links_of[p]]
    used = {x for p in keep for x in p}
    free = [p for p in range(n) if p not in used]
    rng.shuffle(free)
    for i in range(len(free)):
        if free[i] in used:
            continue  # every inner pair would be skipped anyway
        primed_until = i + 1
        for j in range(i + 1, len(free)):
            a, b = free[i], free[j]
            if a in used or b in used:
                continue
            if j >= primed_until:
                block = []
                k = j
                while k < len(free) and len(block) < 64:
                    if free[k] not in used:
                        block.append((min(a, free[k]), max(a, free[k])))
                    k += 1
                primed_until = k
                cache.prime(block)
            pair = (min(a, b), max(a, b))
            if target in cache.route(Conference.of(pair)).links:
                keep.append(pair)
                used.update(pair)
    _record_trial("search", len(keep))
    return {
        "trial": index,
        "multiplicity": len(keep),
        "link": (int(target[0]), int(target[1])),
        "groups": [[a, b] for a, b in keep],
    }


def search_trials(
    topology: str,
    n_ports: int,
    trials: int = 200,
    pool_size: int = 64,
    policy=None,
    seed: "int | None" = 0,
    workers: "int | None" = None,
    chunk_size: "int | None" = None,
    metrics=None,
) -> list[dict]:
    """Per-trial records of the sharded randomized search, trial order."""
    params = {
        "topology": topology,
        "n_ports": n_ports,
        "pool_size": pool_size,
        "policy": policy,
    }
    runner = _runner(params, workers=workers, chunk_size=chunk_size, metrics=metrics)
    return runner.run_trials(search_trial, trials, params=params, seed=seed)


def reduce_search_records(records: Sequence[dict], n_ports: int):
    """Fold per-trial records into a ``SearchResult`` (first-best wins).

    Scans in trial order and keeps the earliest record that strictly
    improves the multiplicity — the same tie-breaking the serial loop
    applies, so the reduction is chunking-invariant.
    """
    from repro.analysis.worstcase import SearchResult

    best: "dict | None" = None
    for record in records:
        if best is None or record["multiplicity"] > best["multiplicity"]:
            best = record
    if best is None or not best["groups"]:
        return SearchResult(0, None, None, len(records), False)
    witness = ConferenceSet.of(n_ports, best["groups"])
    return SearchResult(
        best["multiplicity"], witness, tuple(best["link"]), len(records), False
    )


def randomized_search_parallel(
    topology: str,
    n_ports: int,
    trials: int = 200,
    pool_size: int = 64,
    policy=None,
    seed: "int | None" = 0,
    workers: "int | None" = None,
    chunk_size: "int | None" = None,
    metrics=None,
):
    """Sharded randomized worst-case search; see ``randomized_search``."""
    records = search_trials(
        topology,
        n_ports,
        trials=trials,
        pool_size=pool_size,
        policy=policy,
        seed=seed,
        workers=workers,
        chunk_size=chunk_size,
        metrics=metrics,
    )
    return reduce_search_records(records, n_ports)


# -- E3: group-communication traffic mixes ---------------------------------


def group_traffic_trial(index: int, seed, params: dict) -> dict:
    """Per-shape fabric load of one drawn family of port groups.

    Draws ``n_groups`` disjoint groups of ``group_size`` ports, routes
    them as full conference / panel / multicast, and returns the
    per-shape mean links, mean depth, and required dilation.
    """
    from repro.core.groupcast import GroupConnection, route_group

    n_ports = params["n_ports"]
    size = params["group_size"]
    net = shared_network(params["topology"], n_ports)
    rng = np.random.default_rng(seed)
    perm = [int(p) for p in rng.permutation(n_ports)]
    groups = [perm[i : i + size] for i in range(0, n_ports - size, size)]
    groups = groups[: params["n_groups"]]
    shapes = {
        "conference": [GroupConnection.conference(g, connection_id=c) for c, g in enumerate(groups)],
        "multicast": [
            GroupConnection.multicast(g[0], g[1:], connection_id=c) for c, g in enumerate(groups)
        ],
        "panel": [
            GroupConnection(senders=tuple(g[:2]), receivers=tuple(g), connection_id=c)
            for c, g in enumerate(groups)
        ],
    }
    record: dict = {"trial": index}
    for shape, connections in shapes.items():
        routes = [route_group(net, conn) for conn in connections]
        record[shape] = {
            "mean_links": float(np.mean([r.n_links for r in routes])),
            "mean_depth": float(np.mean([r.depth for r in routes])),
            "dilation": int(
                analyze_conflicts(routes, n_stages=net.n_stages).max_multiplicity
            ),
        }
    return record


# -- F3 / E5: arm-level parallelism ----------------------------------------


def traffic_arm(item: dict, params: "dict | None" = None) -> dict:
    """One stochastic-traffic run (an F3 sweep cell).

    ``item`` overrides ``params``; the merged dict needs ``topology``,
    ``n_ports``, ``dilation``, ``config``, ``duration`` and ``seed``.
    Returns the cell coordinates plus the run's summary statistics.
    """
    opts = {**(params or {}), **item}
    network = ConferenceNetwork.build(
        opts["topology"], opts["n_ports"], dilation=opts["dilation"]
    )
    stats = run_traffic(
        network, opts["config"], duration=opts["duration"], seed=opts["seed"]
    )
    return {
        "topology": opts["topology"],
        "dilation": opts["dilation"],
        "offered": stats.offered,
        "capacity_blocking": stats.capacity_blocking_probability,
        "port_blocking": stats.blocked["ports"] / stats.offered,
        "mean_occupancy": stats.mean_occupancy,
        "summary": stats.summary(),
    }


def availability_arm(item: dict, params: "dict | None" = None) -> list[dict]:
    """One topology's relay-on/relay-off availability comparison (E5)."""
    from repro.analysis.resilience import availability_over_time

    opts = {**(params or {}), **item}
    kwargs = {
        key: opts[key]
        for key in ("process", "duration", "retry", "seed", "load", "dilation")
        if key in opts
    }
    return availability_over_time(opts["topology"], opts["n_ports"], **kwargs)
