"""The work-sharded experiment runner.

:class:`ExperimentRunner` fans independent units of work out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and reduces the results
deterministically:

* **Sharding** — trials are chunked into contiguous batches (amortizing
  pickling and scheduling overhead) and submitted in order; results are
  reassembled by chunk index, so the output list is always in trial
  order no matter which worker finished first.
* **Seed discipline** — Monte Carlo trials get their RNG stream from
  :mod:`repro.parallel.seeds`: trial ``i``'s stream depends only on the
  root seed and ``i``.  Together with ordered reduction this makes the
  engine's output **byte-identical for any worker count and any chunk
  size**, including the inline serial path (``workers=None``) — the
  differential test suite enforces exactly this equality.
* **Warm workers** — each worker process prebuilds the experiment's
  networks (and route caches) once from the pool initializer, so trials
  only pay for their own work.

Trial functions must be module-level (they are pickled by reference)
with the signature ``fn(index, seed, params)``; task functions for
:meth:`ExperimentRunner.map` take ``fn(item, params)``.  Both must be
pure up to their arguments for the determinism contract to hold.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.obs.metrics import MetricsRegistry, collecting
from repro.parallel.cache import shared_network, shared_route_cache
from repro.parallel.seeds import chunk_tasks, trial_seeds
from repro.topology.builders import TOPOLOGY_BUILDERS
from repro.topology.network import MultistageNetwork

__all__ = ["NetworkSpec", "ExperimentRunner", "run_trials", "run_tasks"]


@dataclass(frozen=True)
class NetworkSpec:
    """A picklable recipe for a registry topology.

    Workers receive specs, not built networks: a spec is a few bytes on
    the wire and resolves against the per-process registry, so each
    worker builds the network exactly once.
    """

    topology: str
    n_ports: int

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGY_BUILDERS:
            known = ", ".join(sorted(TOPOLOGY_BUILDERS))
            raise KeyError(f"unknown topology {self.topology!r}; known: {known}")

    @staticmethod
    def of(net: "MultistageNetwork | NetworkSpec") -> "NetworkSpec":
        """Spec for a built network (its name must be a registry name)."""
        if isinstance(net, NetworkSpec):
            return net
        return NetworkSpec(net.name, net.n_ports)

    def build(self) -> MultistageNetwork:
        """The per-process shared instance."""
        return shared_network(self.topology, self.n_ports)


def _warm_worker(specs: tuple[NetworkSpec, ...]) -> None:
    """Pool initializer: prebuild networks and route caches once."""
    for spec in specs:
        spec.build()
        shared_route_cache(spec.topology, spec.n_ports)


def _run_trial_chunk(
    fn: Callable, chunk: "list[tuple[int, Any]]", params: "dict | None"
) -> list:
    """Execute one batch of ``(index, seed)`` tasks in index order."""
    return [fn(index, seed, params) for index, seed in chunk]


def _run_task_chunk(fn: Callable, chunk: list, params: "dict | None") -> list:
    """Execute one batch of opaque work items in order."""
    return [fn(item, params) for item in chunk]


def _run_metered_chunk(
    chunk_fn: Callable, fn: Callable, chunk: list, params: "dict | None"
) -> tuple:
    """Run one chunk with metrics collection on; ship back the delta.

    Executes in the worker process (or inline): :func:`collecting`
    swaps in a fresh per-process default registry for the duration of
    the chunk, so the returned snapshot is exactly this chunk's
    recordings — the reducer merges the snapshots in chunk-submission
    order, which keeps the combined registry identical for every worker
    count and chunk size.
    """
    with collecting() as registry:
        batch = chunk_fn(fn, chunk, params)
    return batch, registry.snapshot()


class ExperimentRunner:
    """Deterministic sharded execution of experiment workloads.

    Parameters
    ----------
    workers:
        ``None`` runs inline in this process (the serial engine); any
        integer ``>= 1`` runs a process pool of that width.  Results are
        identical either way.
    chunk_size:
        Trials per submitted batch; default splits the workload into
        roughly four chunks per worker.  Also result-invariant.
    warm:
        Network specs every worker prebuilds from its initializer.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When set,
        every chunk runs with process-wide collection enabled (so
        ``timed()`` hooks and kernel instrumentation record) and its
        delta snapshot is merged back here in chunk-submission order —
        the merged registry is identical for any worker count.  Trial
        *results* are unaffected either way.
    """

    def __init__(
        self,
        workers: "int | None" = None,
        chunk_size: "int | None" = None,
        warm: "Sequence[NetworkSpec] | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1 (or None for inline), got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.warm = tuple(warm or ())
        self.metrics = metrics

    def _resolve_chunk_size(self, n_tasks: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        shards = 4 * (self.workers or 1)
        return max(1, -(-n_tasks // shards))

    def _execute(self, chunk_fn: Callable, fn: Callable, tasks: list, params: "dict | None") -> list:
        if not tasks:
            return []
        chunks = chunk_tasks(tasks, self._resolve_chunk_size(len(tasks)))
        metered = self.metrics is not None
        if self.workers is None:
            if metered:
                outputs = [_run_metered_chunk(chunk_fn, fn, chunk, params) for chunk in chunks]
            else:
                batches = [chunk_fn(fn, chunk, params) for chunk in chunks]
        else:
            with ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_warm_worker if self.warm else None,
                initargs=(self.warm,) if self.warm else (),
            ) as pool:
                if metered:
                    futures = [
                        pool.submit(_run_metered_chunk, chunk_fn, fn, chunk, params)
                        for chunk in chunks
                    ]
                else:
                    futures = [pool.submit(chunk_fn, fn, chunk, params) for chunk in chunks]
                # Collect in submission order — the deterministic
                # reduction that makes worker scheduling invisible.
                outputs_or_batches = [f.result() for f in futures]
                if metered:
                    outputs = outputs_or_batches
                else:
                    batches = outputs_or_batches
        if metered:
            batches = []
            for batch, snapshot in outputs:
                batches.append(batch)
                self.metrics.merge(snapshot)
        return [result for batch in batches for result in batch]

    def run_trials(
        self,
        fn: Callable,
        n_trials: int,
        params: "dict | None" = None,
        seed: "int | None" = None,
        seeds: "Sequence[int | np.random.SeedSequence] | None" = None,
    ) -> list:
        """Run ``fn(i, seed_i, params)`` for ``i in range(n_trials)``.

        Per-trial seeds come from ``seeds`` verbatim or by splitting
        ``seed`` (see :func:`repro.parallel.seeds.trial_seeds`).
        Returns per-trial results in trial order.
        """
        values = trial_seeds(n_trials, seed=seed, seeds=seeds)
        return self._execute(_run_trial_chunk, fn, list(enumerate(values)), params)

    def map(self, fn: Callable, items: Sequence, params: "dict | None" = None) -> list:
        """Run ``fn(item, params)`` over ``items``, preserving order.

        For experiments whose natural unit is an *arm* (one topology ×
        dilation cell of a sweep) rather than a seeded trial; any
        randomness must already be encoded in the items.
        """
        return self._execute(_run_task_chunk, fn, list(items), params)


def run_trials(
    fn: Callable,
    n_trials: int,
    params: "dict | None" = None,
    seed: "int | None" = None,
    seeds: "Sequence[int | np.random.SeedSequence] | None" = None,
    workers: "int | None" = None,
    chunk_size: "int | None" = None,
    warm: "Sequence[NetworkSpec] | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> list:
    """One-shot form of :meth:`ExperimentRunner.run_trials`."""
    runner = ExperimentRunner(
        workers=workers, chunk_size=chunk_size, warm=warm, metrics=metrics
    )
    return runner.run_trials(fn, n_trials, params=params, seed=seed, seeds=seeds)


def run_tasks(
    fn: Callable,
    items: Sequence,
    params: "dict | None" = None,
    workers: "int | None" = None,
    chunk_size: "int | None" = None,
    warm: "Sequence[NetworkSpec] | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> list:
    """One-shot form of :meth:`ExperimentRunner.map`."""
    runner = ExperimentRunner(
        workers=workers, chunk_size=chunk_size, warm=warm, metrics=metrics
    )
    return runner.map(fn, items, params=params)
