"""Parallel sharded experiment engine.

Fan Monte Carlo trials out over worker processes with per-trial seed
streams and an ordered deterministic reduction, so results are
byte-identical for any worker count and chunking; memoize hot routing
work through the fault-aware :class:`RouteCache`.

See DESIGN.md ("Parallel experiment engine") for the determinism
contract and ``tests/parallel/`` for the differential suite enforcing
it.
"""

from repro.parallel.cache import (
    CacheStats,
    RouteCache,
    shared_network,
    shared_route_cache,
)
from repro.parallel.experiments import (
    random_load_arm,
    randomized_search_parallel,
    search_trials,
    summarize_multiplicities,
)
from repro.parallel.runner import ExperimentRunner, NetworkSpec, run_tasks, run_trials
from repro.parallel.seeds import (
    chunk_slices,
    chunk_tasks,
    seed_fingerprint,
    spawn_seed_sequences,
    trial_seeds,
)

__all__ = [
    "CacheStats",
    "RouteCache",
    "shared_network",
    "shared_route_cache",
    "random_load_arm",
    "randomized_search_parallel",
    "search_trials",
    "summarize_multiplicities",
    "ExperimentRunner",
    "NetworkSpec",
    "run_tasks",
    "run_trials",
    "chunk_slices",
    "chunk_tasks",
    "seed_fingerprint",
    "spawn_seed_sequences",
    "trial_seeds",
]
