"""Memoized routing: the LRU route cache and per-worker network registry.

Routing is a pure function of ``(topology, policy, conference members,
fault set)``, so repeated placements — retried admissions, healing
walks, the randomized search re-routing the same port pairs thousands
of times — can reuse earlier work verbatim.  :class:`RouteCache`
memoizes exactly that function.  Two design points matter:

* **Fault state is part of the key.**  A route computed on the healthy
  network is *never* served once a link has died: the lookup key
  includes the fault set in force, so pre-fault entries are bypassed by
  construction (and the cache can follow a live
  :class:`~repro.sim.faults.FaultInjector` to track the current set).
  This guards the self-healing controller against stale-route reuse.
* **Routes are cached by membership, not identity.**  The geometry of a
  route depends only on the member ports; the conference id is a label.
  Entries store ``(levels, taps)`` and the cache re-wraps them around
  the requesting conference, so a cache warmed by one workload serves
  later conferences with the same members but different ids.

``shared_network`` / ``shared_route_cache`` are the per-process
registry: a worker of the parallel engine builds each topology (and its
cache) once — typically from the pool initializer — and every trial it
executes reuses them.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING

from repro.core.conference import Conference
from repro.core.routing import Route, RoutingPolicy, UnroutableError, route_conference
from repro.topology.builders import build
from repro.topology.network import MultistageNetwork, Point

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.sim.engine import EventLoop
    from repro.sim.faults import FaultInjector, FaultTransition

__all__ = ["CacheStats", "RouteCache", "shared_network", "shared_route_cache"]

_NO_FAULTS: frozenset[Point] = frozenset()


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`RouteCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    unroutable: int = field(default=0)

    @property
    def requests(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """The combined accounting of two caches, as a new instance.

        Field-wise addition; ``hit_rate`` of the result is therefore the
        request-weighted aggregate, which is what a sharded sweep wants
        to report for its per-worker caches.
        """
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            unroutable=self.unroutable + other.unroutable,
        )

    @classmethod
    def merged(cls, many: "Iterable[CacheStats]") -> "CacheStats":
        """Fold any number of per-worker stats into one total."""
        total = cls()
        for stats in many:
            total = total.merge(stats)
        return total

    def as_dict(self) -> dict:
        """A plain-dict view (picklable; includes the derived fields)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "unroutable": self.unroutable,
            "requests": self.requests,
            "hit_rate": self.hit_rate,
        }


class RouteCache:
    """LRU memoization of :func:`~repro.core.routing.route_conference`.

    Bound to one network and one routing policy at construction; lookup
    keys are ``(member tuple, fault set)``.  Unroutable outcomes are
    cached too (a negative entry re-raises
    :class:`~repro.core.routing.UnroutableError`), which keeps repeated
    failing reroutes under a persistent fault cheap.
    """

    def __init__(
        self,
        network: MultistageNetwork,
        policy: "RoutingPolicy | None" = None,
        maxsize: int = 4096,
        tracer=None,
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._network = network
        self._policy = policy or RoutingPolicy()
        self._maxsize = maxsize
        self._entries: "OrderedDict[tuple, tuple | UnroutableError]" = OrderedDict()
        self._faults: frozenset[Point] = _NO_FAULTS
        self.stats = CacheStats()
        # Observation only (duck-typed repro.obs.trace.Tracer): lookups
        # emit cache.hit / cache.miss, context moves cache.invalidate.
        self.tracer = tracer

    # -- introspection -----------------------------------------------------

    @property
    def network(self) -> MultistageNetwork:
        """The network routes are computed on."""
        return self._network

    @property
    def policy(self) -> RoutingPolicy:
        """The routing policy baked into every entry."""
        return self._policy

    @property
    def maxsize(self) -> int:
        """Entry budget before LRU eviction."""
        return self._maxsize

    @property
    def current_faults(self) -> frozenset[Point]:
        """The fault set used when ``route`` is called without one."""
        return self._faults

    def __len__(self) -> int:
        return len(self._entries)

    # -- fault tracking ----------------------------------------------------

    def set_faults(self, faults: "frozenset[Point] | None") -> None:
        """Update the default fault context for keyless lookups.

        Entries under other fault sets stay resident (a repair that
        restores a previous set finds its routes warm) but can no longer
        be returned for the current one — the key namespace moved.
        """
        self._faults = frozenset(faults) if faults else _NO_FAULTS
        if self.tracer is not None:
            self.tracer.event("cache.invalidate", dead=len(self._faults))

    def attach(self, injector: "FaultInjector") -> None:
        """Follow a live fault injector's transitions."""
        injector.subscribe(self.handle_transition)

    def handle_transition(self, loop: "EventLoop", transition: "FaultTransition") -> None:
        """Injector callback: move the default fault context."""
        if transition.failed:
            self.set_faults(self._faults | {transition.point})
        else:
            self.set_faults(self._faults - {transition.point})

    # -- the memoized function ---------------------------------------------

    def route(
        self,
        conference: "Conference | list[int] | tuple[int, ...]",
        faults: "frozenset[Point] | None" = None,
    ) -> Route:
        """Route ``conference``, reusing a cached result when possible.

        ``faults`` defaults to the tracked fault context.  The returned
        route compares equal to a fresh
        :func:`~repro.core.routing.route_conference` call (the property
        suite checks this for arbitrary conferences and fault sets).
        """
        if not isinstance(conference, Conference):
            conference = Conference.of(conference)
        key_faults = self._faults if faults is None else (frozenset(faults) or _NO_FAULTS)
        key = (conference.members, key_faults)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            if self.tracer is not None:
                self.tracer.event(
                    "cache.hit", cid=conference.conference_id, faults=len(key_faults)
                )
            if isinstance(entry, UnroutableError):
                raise UnroutableError(*entry.args)
            levels, taps = entry
            return Route(
                conference=conference,
                n_ports=self._network.n_ports,
                n_stages=self._network.n_stages,
                levels=levels,
                taps=taps,
            )
        self.stats.misses += 1
        if self.tracer is not None:
            self.tracer.event(
                "cache.miss", cid=conference.conference_id, faults=len(key_faults)
            )
        try:
            route = route_conference(
                self._network, conference, self._policy, faults=key_faults or None
            )
        except UnroutableError as exc:
            self._store(key, UnroutableError(*exc.args))
            self.stats.unroutable += 1
            raise
        self._store(key, (route.levels, dict(route.taps)))
        return route

    def prime(
        self,
        conferences: "Iterable[Conference | list[int] | tuple[int, ...]]",
        faults: "frozenset[Point] | None" = None,
    ) -> int:
        """Batch-compute and store routes for every absent conference.

        The columnar kernel (:func:`repro.core.batch.route_batch`) routes
        all misses in one pass; present entries are left untouched, so a
        ``prime`` followed by ``route`` calls returns exactly the routes
        the sequential path would have computed — priming moves work, not
        decisions.  Hit/miss statistics and trace events are *not*
        recorded here (they belong to lookups); only evictions tick when
        the batch overflows ``maxsize``.  Returns the number of entries
        inserted.
        """
        from repro.core.batch import route_batch

        key_faults = self._faults if faults is None else (frozenset(faults) or _NO_FAULTS)
        todo: "OrderedDict[tuple, Conference]" = OrderedDict()
        for conference in conferences:
            if not isinstance(conference, Conference):
                conference = Conference.of(conference)
            key = (conference.members, key_faults)
            if key not in self._entries and key not in todo:
                todo[key] = conference
        if not todo:
            return 0
        outcomes = route_batch(
            self._network,
            list(todo.values()),
            self._policy,
            faults=key_faults or None,
        )
        stored = 0
        for key, outcome in zip(todo, outcomes):
            if outcome.ok:
                self._store(key, (outcome.route.levels, dict(outcome.route.taps)))
            elif isinstance(outcome.error, UnroutableError):
                self._store(key, UnroutableError(*outcome.error.args))
            else:
                # Out-of-range members: not cacheable — the sequential
                # lookup raises the same ValueError itself.
                continue
            stored += 1
        return stored

    def _store(self, key: tuple, entry: "tuple | UnroutableError") -> None:
        self._entries[key] = entry
        if len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate_links(self, links: "Iterable[Point]") -> int:
        """Evict exactly the entries whose stored route crosses ``links``.

        The scoped eviction membership churn uses: the cache memoizes a
        pure function, so resident entries are never *wrong* — but
        entries crossing just-reconfigured links were computed against a
        link occupancy that no longer holds, and serving them keeps
        admission re-discovering the same contention.  Dropping only the
        crossing entries (negative entries have no links and survive)
        keeps the rest of the working set warm.  Returns the eviction
        count.
        """
        touched = frozenset(links)
        if not touched:
            return 0
        doomed = []
        for key, entry in self._entries.items():
            if isinstance(entry, UnroutableError):
                continue
            levels, _taps = entry
            if any(
                (t, row) in touched
                for t in range(1, len(levels))
                for row in levels[t]
            ):
                doomed.append(key)
        for key in doomed:
            del self._entries[key]
        self.stats.evictions += len(doomed)
        if doomed and self.tracer is not None:
            self.tracer.event("cache.invalidate_links", evicted=len(doomed))
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        self._entries.clear()


# -- per-process registry --------------------------------------------------
#
# These module-level caches are what makes worker processes cheap: the
# pool initializer (or the first trial) builds each topology and its
# route cache once per process, and every subsequent trial in that
# worker reuses them.  They hold *shared mutable* caches — experiment
# code must not mutate the returned network, and determinism is
# preserved because cached routes equal freshly computed ones.


@lru_cache(maxsize=64)
def shared_network(topology: str, n_ports: int) -> MultistageNetwork:
    """The process-wide instance of a registry topology."""
    return build(topology, n_ports)


@lru_cache(maxsize=64)
def shared_route_cache(
    topology: str, n_ports: int, policy: "RoutingPolicy | None" = None, maxsize: int = 4096
) -> RouteCache:
    """The process-wide route cache of a registry topology.

    ``policy`` participates in the registry key (it is hashable and
    frozen), so relay-on and relay-off experiments get distinct caches.
    """
    return RouteCache(shared_network(topology, n_ports), policy=policy, maxsize=maxsize)
