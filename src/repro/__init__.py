"""repro — multistage conference switching networks for group communication.

A from-scratch reproduction of Yang & Wang, *A class of multistage
conference switching networks for group communication* (ICPP 2002):
multistage-network substrates (baseline, omega, indirect binary cube),
fan-in/fan-out switch fabrics with the per-stage output-multiplexer
relay, conference self-routing, routing-conflict multiplicity analysis,
hardware cost models, a dynamic-traffic simulator, and an online
conference service (:mod:`repro.serve`).

Quickstart::

    from repro import ConferenceNetwork

    net = ConferenceNetwork.build("indirect-binary-cube", 64, dilation=8)
    result = net.realize([[3, 17, 40], [5, 6, 7, 21]])
    print(result.conflicts.describe())
    assert result.ok  # every member heard the full mix

The supported surface is defined by :mod:`repro.api`; every name listed
there resolves through this package (``from repro import X``).  A few
pre-1.1 spellings keep working through deprecation shims that warn once
per process and point at the name's home module.

See DESIGN.md for the system inventory, EXPERIMENTS.md for the
reproduced evaluation, and docs/api.md for the stability policy.
"""

import warnings

from repro import api

__version__ = "1.4.0"

#: Pre-1.1 top-level names that are no longer part of the stable
#: surface: legacy name -> (home module, attribute).  Accessing them via
#: ``repro`` still works but emits one DeprecationWarning per process.
_LEGACY = {
    "BuddyAllocator": ("repro.core.admission", "BuddyAllocator"),
    "place_aligned": ("repro.core.admission", "place_aligned"),
    "GroupConnection": ("repro.core.groupcast", "GroupConnection"),
    "route_group": ("repro.core.groupcast", "route_group"),
}

__all__ = sorted([*api.__all__, "__version__"])


def __getattr__(name: str):
    # PEP 562: resolve the stable surface through repro.api and legacy
    # spellings through their home modules.  Either way the value is
    # cached in globals(), so this body — and any deprecation warning in
    # it — runs at most once per name per process.
    if name in _LEGACY:
        module_name, attr = _LEGACY[name]
        warnings.warn(
            f"importing {name!r} from 'repro' is deprecated; "
            f"use 'from {module_name} import {attr}'",
            DeprecationWarning,
            stacklevel=2,
        )
        from importlib import import_module

        value = getattr(import_module(module_name), attr)
        globals()[name] = value
        return value
    if name in api.__all__:
        value = getattr(api, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted({*__all__, *_LEGACY, "api"})
