"""repro — multistage conference switching networks for group communication.

A from-scratch reproduction of Yang & Wang, *A class of multistage
conference switching networks for group communication* (ICPP 2002):
multistage-network substrates (baseline, omega, indirect binary cube),
fan-in/fan-out switch fabrics with the per-stage output-multiplexer
relay, conference self-routing, routing-conflict multiplicity analysis,
hardware cost models, and a dynamic-traffic simulator.

Quickstart::

    from repro import ConferenceNetwork

    net = ConferenceNetwork.build("indirect-binary-cube", 64, dilation=8)
    result = net.realize([[3, 17, 40], [5, 6, 7, 21]])
    print(result.conflicts.describe())
    assert result.ok  # every member heard the full mix

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro.core import (
    AdmissionController,
    AdmissionDenied,
    BuddyAllocator,
    Conference,
    ConferenceNetwork,
    ConferenceSet,
    ConflictReport,
    RealizationResult,
    Route,
    RoutingPolicy,
    TapPolicy,
    UnroutableError,
    analyze_conflicts,
    place_aligned,
    route_conference,
)
from repro.core import GroupConnection, route_group
from repro.core import RetryPolicy, SelfHealingController
from repro.switching import CapacityExceeded, DeliveryReport, Fabric
from repro.topology import (
    PAPER_TOPOLOGIES,
    TOPOLOGY_BUILDERS,
    MultistageNetwork,
    build,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AdmissionDenied",
    "BuddyAllocator",
    "CapacityExceeded",
    "Conference",
    "ConferenceNetwork",
    "ConferenceSet",
    "ConflictReport",
    "DeliveryReport",
    "Fabric",
    "MultistageNetwork",
    "PAPER_TOPOLOGIES",
    "RealizationResult",
    "RetryPolicy",
    "Route",
    "GroupConnection",
    "RoutingPolicy",
    "SelfHealingController",
    "TOPOLOGY_BUILDERS",
    "TapPolicy",
    "UnroutableError",
    "analyze_conflicts",
    "build",
    "place_aligned",
    "route_conference",
    "route_group",
    "__version__",
]
