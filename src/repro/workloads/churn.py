"""Membership-churn timelines: generators and the service replay driver.

The static generators in :mod:`repro.workloads.generators` produce a
*snapshot* — a set of conferences to route once.  Churn workloads
produce a *timeline*: a sequence of :class:`ChurnEvent` values (open /
join / leave / close at integer ticks) that exercise the incremental
membership path (:mod:`repro.core.churn`) end to end through a running
service.

Shapes:

* ``flash_crowd`` — a venue conference floods with joins over a couple
  of ticks, then drains; the worst case for tap churn because the route
  repeatedly outgrows its enclosing block.
* ``diurnal_load`` — sinusoidal join/leave intensity over long-lived
  conferences, the steady-state regime where in-block (hitless) churn
  should dominate.
* ``lurker_joins`` — one long-lived conference accreting single members
  at a slow cadence: the long-tail audience pattern, and the workload
  where pin-induced conflict drift accrues if it is going to.
* ``zipf_sizes`` — heavy-tailed conference sizes (most conferences are
  tiny, a few are huge), the size mix the W1 benchmark churns over.

``replay_churn`` drives any session service exposing the submit/tick
protocol — :class:`repro.serve.FabricService` or the sharded
:class:`repro.cluster.ClusterService` — and returns one record per
event restricted to shard-invariant fields, so the same timeline
replayed at different shard counts must produce byte-identical records
(the churn-determinism CI gate).

Every generator allocates member ports from a single free pool, so the
conferences of one timeline are port-disjoint at every tick by
construction and admission never rejects on port clashes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.util.rng import ensure_rng
from repro.util.validation import check_network_size

__all__ = [
    "ChurnEvent",
    "diurnal_load",
    "flash_crowd",
    "lurker_joins",
    "replay_churn",
    "zipf_sizes",
]

_KINDS = ("open", "join", "leave", "close")


@dataclass(frozen=True)
class ChurnEvent:
    """One timestamped membership operation in a churn timeline.

    ``session`` is the *workload-local* conference index (0, 1, ...);
    :func:`replay_churn` maps it to whatever session id the service
    assigns.  ``ports`` is the full member set for ``open``, the ports
    being added/removed for ``join``/``leave``, and empty for
    ``close``.
    """

    tick: int
    kind: str
    session: int
    ports: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown churn event kind {self.kind!r}; known: {_KINDS}")
        if self.tick < 0:
            raise ValueError(f"tick must be >= 0, got {self.tick}")
        if self.session < 0:
            raise ValueError(f"session index must be >= 0, got {self.session}")
        if self.kind == "open" and len(self.ports) < 2:
            raise ValueError("open events need at least 2 ports")
        if self.kind in ("join", "leave") and not self.ports:
            raise ValueError(f"{self.kind} events need at least one port")

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view of the event."""
        return {
            "tick": self.tick,
            "kind": self.kind,
            "session": self.session,
            "ports": list(self.ports),
        }


class _Timeline:
    """Internal builder: a port ledger plus the growing event list.

    Keeps every live conference port-disjoint (ports return to the free
    pool on leave/close) and session membership consistent, so the
    emitted timeline is valid by construction.
    """

    def __init__(self, n_ports: int, rng: np.random.Generator) -> None:
        self.n_ports = n_ports
        self.rng = rng
        self.free = list(range(n_ports))
        self.members: dict[int, list[int]] = {}
        self.events: list[ChurnEvent] = []
        self._next_session = 0

    def grab(self, count: int) -> "tuple[int, ...] | None":
        if count > len(self.free):
            return None
        idx = self.rng.choice(len(self.free), size=count, replace=False)
        chosen = tuple(sorted(self.free[int(i)] for i in idx))
        taken = set(chosen)
        self.free = [p for p in self.free if p not in taken]
        return chosen

    def open(self, tick: int, size: int) -> "int | None":
        ports = self.grab(size)
        if ports is None:
            return None
        session = self._next_session
        self._next_session += 1
        self.members[session] = list(ports)
        self.events.append(ChurnEvent(tick, "open", session, ports))
        return session

    def join(self, tick: int, session: int, count: int = 1) -> "tuple[int, ...] | None":
        ports = self.grab(count)
        if ports is None:
            return None
        self.members[session].extend(ports)
        self.events.append(ChurnEvent(tick, "join", session, ports))
        return ports

    def leave(self, tick: int, session: int, count: int = 1) -> "tuple[int, ...] | None":
        pool = self.members[session]
        if len(pool) - count < 2:  # keep every conference a conference
            return None
        idx = self.rng.choice(len(pool), size=count, replace=False)
        chosen = tuple(sorted(pool[int(i)] for i in idx))
        for port in chosen:
            pool.remove(port)
        self.free = sorted(set(self.free) | set(chosen))
        self.events.append(ChurnEvent(tick, "leave", session, chosen))
        return chosen

    def close(self, tick: int, session: int) -> None:
        self.free = sorted(set(self.free) | set(self.members.pop(session)))
        self.events.append(ChurnEvent(tick, "close", session))


def zipf_sizes(
    count: int,
    alpha: float = 1.8,
    min_size: int = 2,
    max_size: int = 32,
    seed: "int | np.random.Generator | None" = None,
) -> list[int]:
    """Heavy-tailed conference sizes: ``min_size - 1 + Zipf(alpha)``.

    Most draws land at ``min_size`` (the two-party call) while the tail
    produces the occasional large assembly, clamped to ``max_size``.
    Smaller ``alpha`` means a heavier tail.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1, got {alpha}")
    if min_size < 2:
        raise ValueError(f"min_size must be >= 2, got {min_size}")
    if max_size < min_size:
        raise ValueError(f"max_size {max_size} below min_size {min_size}")
    if count == 0:
        return []
    rng = ensure_rng(seed)
    draws = rng.zipf(alpha, size=count)
    return [min(min_size - 1 + int(d), max_size) for d in draws]


def flash_crowd(
    n_ports: int,
    *,
    base_conferences: int = 3,
    base_size: int = 3,
    crowd: "int | None" = None,
    burst_start: int = 2,
    burst_ticks: int = 2,
    drain_after: int = 4,
    drain_per_tick: int = 4,
    seed: "int | np.random.Generator | None" = None,
) -> list[ChurnEvent]:
    """A venue conference floods with joins, then the crowd drains.

    Tick 0 opens the venue (2 members) plus ``base_conferences``
    bystander conferences; ``crowd`` single-port joins (default: a
    quarter of the network) hit the venue over ``burst_ticks`` ticks
    starting at ``burst_start``; ``drain_after`` ticks past the burst,
    the crowd leaves again at ``drain_per_tick`` per tick.  The repeated
    block-outgrowing joins make this the stress shape for tap movement
    and the fallback path.
    """
    check_network_size(n_ports)
    if burst_start < 2:
        raise ValueError(f"burst_start must be >= 2 (opens need to settle), got {burst_start}")
    if burst_ticks < 1:
        raise ValueError(f"burst_ticks must be >= 1, got {burst_ticks}")
    if drain_per_tick < 1:
        raise ValueError(f"drain_per_tick must be >= 1, got {drain_per_tick}")
    rng = ensure_rng(seed)
    timeline = _Timeline(n_ports, rng)
    venue = timeline.open(0, 2)
    for _ in range(base_conferences):
        timeline.open(0, base_size)
    if crowd is None:
        crowd = max(1, n_ports // 4)
    per_tick = math.ceil(crowd / burst_ticks)
    joined: list[int] = []
    for tick in range(burst_start, burst_start + burst_ticks):
        for _ in range(per_tick):
            if len(joined) >= crowd:
                break
            ports = timeline.join(tick, venue)
            if ports is None:
                break
            joined.extend(ports)
    drain_tick = burst_start + burst_ticks + drain_after
    while joined:
        batch, joined = joined[:drain_per_tick], joined[drain_per_tick:]
        for port in batch:
            timeline.members[venue].remove(port)
            timeline.free = sorted(set(timeline.free) | {port})
            timeline.events.append(ChurnEvent(drain_tick, "leave", venue, (port,)))
        drain_tick += 1
    return timeline.events


def diurnal_load(
    n_ports: int,
    *,
    conferences: int = 4,
    size: int = 3,
    period: int = 12,
    cycles: int = 2,
    intensity: "int | None" = None,
    seed: "int | np.random.Generator | None" = None,
) -> list[ChurnEvent]:
    """Sinusoidal join/leave pressure over long-lived conferences.

    ``conferences`` conferences of ``size`` members open at tick 0;
    then for ``cycles`` periods of ``period`` ticks, joins peak at the
    top of the sine wave and leaves at the bottom, each up to
    ``intensity`` single-port operations per tick spread over uniformly
    random conferences.  The steady-state regime: most churn lands
    inside the current block and should be hitless.
    """
    check_network_size(n_ports)
    if conferences < 1:
        raise ValueError(f"conferences must be >= 1, got {conferences}")
    if period < 2:
        raise ValueError(f"period must be >= 2, got {period}")
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    rng = ensure_rng(seed)
    timeline = _Timeline(n_ports, rng)
    sessions = [s for _ in range(conferences) if (s := timeline.open(0, size)) is not None]
    if not sessions:
        return timeline.events
    if intensity is None:
        intensity = max(1, n_ports // 16)
    for step in range(period * cycles):
        tick = 2 + step
        phase = math.sin(2.0 * math.pi * step / period)
        joins = int(round(max(0.0, phase) * intensity))
        leaves = int(round(max(0.0, -phase) * intensity))
        for _ in range(joins):
            timeline.join(tick, sessions[int(rng.integers(len(sessions)))])
        for _ in range(leaves):
            timeline.leave(tick, sessions[int(rng.integers(len(sessions)))])
    return timeline.events


def lurker_joins(
    n_ports: int,
    *,
    core_size: int = 4,
    lurkers: "int | None" = None,
    gap: int = 2,
    seed: "int | np.random.Generator | None" = None,
) -> list[ChurnEvent]:
    """One long-lived conference accreting single members at a slow cadence.

    A ``core_size``-member conference opens at tick 0 and then a new
    lurker joins every ``gap`` ticks (default: an eighth of the network
    joins, one at a time).  Nobody leaves.  This is the workload where a
    route carrying fault-era tap pins keeps getting extended — exactly
    where conflict-multiplicity drift accrues if it is going to.
    """
    check_network_size(n_ports)
    if core_size < 2:
        raise ValueError(f"core_size must be >= 2, got {core_size}")
    if gap < 1:
        raise ValueError(f"gap must be >= 1, got {gap}")
    rng = ensure_rng(seed)
    timeline = _Timeline(n_ports, rng)
    session = timeline.open(0, core_size)
    if lurkers is None:
        lurkers = max(1, n_ports // 8)
    tick = 2
    for _ in range(lurkers):
        if timeline.join(tick, session) is None:
            break
        tick += gap
    return timeline.events


#: Detail keys that are identical across shard counts (the cluster adds
#: a ``shard`` key, and ids/latencies shift with sharding — stripped).
_INVARIANT_DETAIL = (
    "members",
    "links",
    "links_reconfigured",
    "hitless",
    "mode",
    "taps_moved",
    "drift_links",
)


def _record(index: int, event: ChurnEvent, response) -> dict[str, Any]:
    detail = {k: response.detail[k] for k in _INVARIANT_DETAIL if k in response.detail}
    record: dict[str, Any] = {
        "event": index,
        "tick": event.tick,
        "kind": event.kind,
        "session": event.session,
        "ports": list(event.ports),
        "ok": response.ok,
        "status": response.status,
        "reason": response.reason,
    }
    if detail:
        record["detail"] = detail
    return record


def replay_churn(service, events, *, settle_ticks: int = 64) -> list[dict[str, Any]]:
    """Drive a session service through a churn timeline, one tick at a time.

    ``service`` is anything exposing the submit/tick protocol —
    :class:`repro.serve.FabricService` or
    :class:`repro.cluster.ClusterService` (whose lockstep ``tick``
    advances every shard).  Events are submitted in timeline order
    (stable-sorted by tick), one ``tick()`` per virtual tick, then up to
    ``settle_ticks`` extra ticks drain the queues.

    Returns one record per event, in submission order, restricted to
    shard-invariant fields — replaying the same timeline at different
    shard counts must produce byte-identical records, which is what the
    churn-determinism CI gate diffs.  Raises ``RuntimeError`` if any
    event never completes within the settle budget.
    """
    events = sorted(events, key=lambda e: e.tick)  # stable: keeps intra-tick order
    records: "list[dict[str, Any] | None]" = [None] * len(events)
    if not events:
        return []
    session_ids: dict[int, int] = {}

    def completion(index: int, event: ChurnEvent):
        def callback(response) -> None:
            records[index] = _record(index, event, response)

        return callback

    cursor = 0
    for tick in range(events[-1].tick + 1):
        while cursor < len(events) and events[cursor].tick == tick:
            event = events[cursor]
            callback = completion(cursor, event)
            if event.kind == "open":
                session_ids[event.session] = service.submit_open(
                    event.ports, on_complete=callback
                )
            else:
                if event.session not in session_ids:
                    raise ValueError(
                        f"event {cursor}: {event.kind} on session {event.session} "
                        "before its open"
                    )
                sid = session_ids[event.session]
                if event.kind == "join":
                    service.submit_join(sid, event.ports, on_complete=callback)
                elif event.kind == "leave":
                    service.submit_leave(sid, event.ports, on_complete=callback)
                else:
                    service.submit_close(sid, on_complete=callback)
            cursor += 1
        service.tick()
    for _ in range(settle_ticks):
        if all(r is not None for r in records):
            break
        service.tick()
    pending = [i for i, r in enumerate(records) if r is None]
    if pending:
        raise RuntimeError(
            f"{len(pending)} churn events never completed within "
            f"{settle_ticks} settle ticks (first: event {pending[0]})"
        )
    return records  # type: ignore[return-value]
