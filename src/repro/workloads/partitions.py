"""Exact enumeration of conference-set configurations.

The exhaustive worst-case experiments at small ``N`` need every way to
form pairwise-disjoint conferences on the port set.  Formally these are
*partial partitions*: partitions of an arbitrary subset of ports into
blocks, here restricted to blocks of at least 2 members (singleton
conferences occupy no inter-stage links, so they never affect conflict
multiplicity).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.core.conference import ConferenceSet

__all__ = [
    "partial_partitions",
    "conference_sets",
    "count_partial_partitions",
    "pair_families",
]


def partial_partitions(
    items: Sequence[int], min_block: int = 2, max_blocks: "int | None" = None
) -> Iterator[tuple[tuple[int, ...], ...]]:
    """Yield every family of disjoint blocks (size >= ``min_block``).

    Blocks need not cover ``items``.  The enumeration is canonical —
    each family appears exactly once, with blocks listed in order of
    their smallest element — and lazy, so callers can stream through
    large spaces with early termination.
    """
    items = tuple(items)
    if min_block < 1:
        raise ValueError(f"min_block must be >= 1, got {min_block}")

    def rec(remaining: tuple[int, ...], blocks: list[tuple[int, ...]]) -> Iterator:
        yield tuple(blocks)
        if max_blocks is not None and len(blocks) >= max_blocks:
            return
        if not remaining:
            return
        # The next block must contain the smallest remaining item that we
        # choose to cover; iterate over which item anchors the new block.
        for anchor_idx in range(len(remaining)):
            anchor = remaining[anchor_idx]
            rest = remaining[anchor_idx + 1 :]
            for extra in _subsets_of_size_at_least(rest, min_block - 1):
                block = (anchor, *extra)
                leftover = tuple(x for x in rest if x not in set(extra))
                blocks.append(block)
                yield from rec(leftover, blocks)
                blocks.pop()

    yield from rec(items, [])


def _subsets_of_size_at_least(items: tuple[int, ...], k: int) -> Iterator[tuple[int, ...]]:
    """All subsets of ``items`` with at least ``k`` elements, lazily."""
    n = len(items)
    for mask in range(1 << n):
        if mask.bit_count() >= k:
            yield tuple(items[i] for i in range(n) if (mask >> i) & 1)


def conference_sets(
    n_ports: int, min_size: int = 2, min_conferences: int = 1, max_conferences: "int | None" = None
) -> Iterator[ConferenceSet]:
    """All valid :class:`ConferenceSet` values on an ``n_ports`` network.

    Feasible only for small networks (``N <= 8``; the space is
    Bell-number sized); the exhaustive experiments use exactly that.
    """
    for family in partial_partitions(range(n_ports), min_block=min_size, max_blocks=max_conferences):
        if len(family) < min_conferences:
            continue
        yield ConferenceSet.of(n_ports, family)


def count_partial_partitions(n: int, min_block: int = 2) -> int:
    """Count the families :func:`partial_partitions` yields for ``n`` items.

    Computed by the same recursion in counting form; used to sanity-check
    the enumerator and to report search-space sizes in experiment logs.
    """
    from math import comb

    # d[k] = partitions of k labelled items into blocks of size >= min_block.
    d = [0] * (n + 1)
    d[0] = 1
    for k in range(1, n + 1):
        total = 0
        # Block containing item 1 has size s.
        for s in range(min_block, k + 1):
            total += comb(k - 1, s - 1) * d[k - s]
        d[k] = total
    return sum(comb(n, k) * d[k] for k in range(n + 1))


def pair_families(ports: Sequence[int]) -> Iterator[tuple[tuple[int, int], ...]]:
    """All families of disjoint 2-member conferences (partial matchings).

    Two-member conferences are the extremal case for link conflicts —
    every port spent beyond two per conference is wasted for an
    adversary — so matching-only enumeration reaches much larger ``N``
    than the full space.
    """
    ports = tuple(ports)

    def rec(remaining: tuple[int, ...]) -> Iterator[tuple[tuple[int, int], ...]]:
        yield ()
        if len(remaining) < 2:
            return
        a = remaining[0]
        for j in range(1, len(remaining)):
            b = remaining[j]
            rest = remaining[1:j] + remaining[j + 1 :]
            for fam in rec(rest):
                yield ((a, b), *fam)
        # Families not using `a` at all.
        for fam in rec(remaining[1:]):
            if fam:
                yield fam

    yield from rec(ports)
