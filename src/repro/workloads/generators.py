"""Random conference-set generators.

The statistical experiments (F1, F3) and the randomized worst-case
search need families of disjoint conferences drawn from controllable
distributions.  Each generator takes a seed (or Generator) and network
size and yields validated :class:`ConferenceSet` values.

Distributions:

* ``uniform_partition`` — occupy a target fraction of ports, split into
  conferences of i.i.d. sizes; membership uniformly random.  The
  arbitrary-placement model of this paper.
* ``clustered`` — members of each conference drawn near a random centre,
  modelling geographically-correlated attendees (locality *reduces*
  cube-network conflicts, which experiment F1 quantifies).
* ``interleaved`` — the adversarial flavour: conferences deliberately
  straddle large aligned blocks, stressing the low stages.
* ``aligned_sets`` — the Yang-2001 discipline via the buddy allocator.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.admission import place_aligned
from repro.core.conference import ConferenceSet
from repro.util.rng import ensure_rng
from repro.util.validation import check_network_size, check_probability

__all__ = [
    "draw_sizes",
    "uniform_partition",
    "clustered",
    "interleaved",
    "aligned_sets",
    "sample_stream",
]


def draw_sizes(
    rng: np.random.Generator,
    n_available: int,
    mean_size: float,
    min_size: int = 2,
    max_size: "int | None" = None,
) -> list[int]:
    """Draw conference sizes until the available ports are (nearly) used.

    Sizes are ``min_size + Poisson(mean_size - min_size)``, truncated to
    ``max_size`` and to the ports remaining; generation stops when fewer
    than ``min_size`` ports remain.
    """
    if mean_size < min_size:
        raise ValueError(f"mean size {mean_size} below minimum size {min_size}")
    sizes: list[int] = []
    remaining = n_available
    while remaining >= min_size:
        s = min_size + int(rng.poisson(mean_size - min_size))
        if max_size is not None:
            s = min(s, max_size)
        s = min(s, remaining)
        if s < min_size:
            break
        sizes.append(s)
        remaining -= s
    return sizes


def uniform_partition(
    n_ports: int,
    load: float = 0.75,
    mean_size: float = 4.0,
    min_size: int = 2,
    max_size: "int | None" = None,
    seed: "int | np.random.Generator | None" = None,
) -> ConferenceSet:
    """Disjoint conferences over uniformly-random member ports.

    ``load`` is the target fraction of occupied ports.  This is the
    paper's arbitrary-placement regime: member addresses carry no
    structure at all.
    """
    check_network_size(n_ports)
    check_probability(load, "load")
    rng = ensure_rng(seed)
    budget = int(round(load * n_ports))
    sizes = draw_sizes(rng, budget, mean_size, min_size=min_size, max_size=max_size)
    perm = rng.permutation(n_ports)
    groups, cursor = [], 0
    for s in sizes:
        groups.append([int(p) for p in perm[cursor : cursor + s]])
        cursor += s
    return ConferenceSet.of(n_ports, groups)


def clustered(
    n_ports: int,
    load: float = 0.75,
    mean_size: float = 4.0,
    spread: int = 8,
    seed: "int | np.random.Generator | None" = None,
) -> ConferenceSet:
    """Conferences whose members cluster around random centres.

    Each conference picks a centre port and draws members from the
    ``spread`` free ports nearest to it (by address distance), modelling
    locality of attachment.  Falls back to global draws when a
    neighbourhood is exhausted.
    """
    check_network_size(n_ports)
    check_probability(load, "load")
    if spread < 1:
        raise ValueError(f"spread must be >= 1, got {spread}")
    rng = ensure_rng(seed)
    budget = int(round(load * n_ports))
    sizes = draw_sizes(rng, budget, mean_size)
    free = set(range(n_ports))
    groups = []
    for s in sizes:
        if len(free) < s:
            break
        centre = int(rng.choice(sorted(free)))
        near = sorted(free, key=lambda p: (abs(p - centre), p))
        pool = near[: max(s, spread)]
        chosen = [int(p) for p in rng.choice(pool, size=s, replace=False)]
        free.difference_update(chosen)
        groups.append(chosen)
    return ConferenceSet.of(n_ports, groups)


def interleaved(
    n_ports: int,
    n_conferences: "int | None" = None,
    seed: "int | np.random.Generator | None" = None,
) -> ConferenceSet:
    """Adversarially interleaved 2-member conferences.

    Pairs each low-address port ``i`` with a partner in the opposite
    half whose low bits are zeroed — the pattern the cube worst case is
    made of — then shuffles residual choices randomly.  Useful as a
    stress workload that random sampling essentially never finds.
    """
    n = check_network_size(n_ports)
    rng = ensure_rng(seed)
    t = n // 2
    limit = (1 << min(t, n - t)) - 1
    if n_conferences is None:
        n_conferences = limit
    if not 1 <= n_conferences <= limit:
        raise ValueError(f"n_conferences must be in [1, {limit}]")
    ids = rng.permutation(np.arange(1, limit + 1))[:n_conferences]
    groups = [[int(i), int(i) << t] for i in ids]
    return ConferenceSet.of(n_ports, groups)


def aligned_sets(
    n_ports: int,
    load: float = 0.75,
    mean_size: float = 4.0,
    seed: "int | np.random.Generator | None" = None,
) -> ConferenceSet:
    """Random sizes placed by the Yang-2001 aligned-block discipline.

    Size distribution matches :func:`uniform_partition` so the two
    placement policies are directly comparable; placement goes through
    the buddy allocator.  Sizes that no longer fit are dropped (the
    static analogue of call blocking).
    """
    check_network_size(n_ports)
    check_probability(load, "load")
    rng = ensure_rng(seed)
    budget = int(round(load * n_ports))
    sizes = draw_sizes(rng, budget, mean_size)
    while sizes:
        try:
            return place_aligned(n_ports, sizes)
        except MemoryError:
            sizes.pop()  # shed the last conference and retry
    return ConferenceSet.of(n_ports, [])


def sample_stream(
    generator: str,
    n_ports: int,
    count: int,
    seed: "int | np.random.Generator | None" = None,
    **kwargs,
) -> Iterator[ConferenceSet]:
    """Yield ``count`` independent samples from a named generator.

    ``generator`` is one of ``uniform``, ``clustered``, ``interleaved``,
    ``aligned``.  Each sample gets its own child RNG stream, so the
    stream is reproducible and order-independent.
    """
    table = {
        "uniform": uniform_partition,
        "clustered": clustered,
        "interleaved": interleaved,
        "aligned": aligned_sets,
    }
    try:
        fn = table[generator]
    except KeyError:
        raise KeyError(f"unknown generator {generator!r}; known: {sorted(table)}") from None
    rng = ensure_rng(seed)
    for child in rng.spawn(count):
        yield fn(n_ports, seed=child, **kwargs)
