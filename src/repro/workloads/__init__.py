"""Workload generation: conference sets, churn timelines, enumerations."""

from repro.workloads.churn import (
    ChurnEvent,
    diurnal_load,
    flash_crowd,
    lurker_joins,
    replay_churn,
    zipf_sizes,
)
from repro.workloads.generators import (
    aligned_sets,
    clustered,
    draw_sizes,
    interleaved,
    sample_stream,
    uniform_partition,
)
from repro.workloads.partitions import (
    conference_sets,
    count_partial_partitions,
    pair_families,
    partial_partitions,
)

__all__ = [
    "ChurnEvent",
    "aligned_sets",
    "clustered",
    "conference_sets",
    "count_partial_partitions",
    "diurnal_load",
    "draw_sizes",
    "flash_crowd",
    "interleaved",
    "lurker_joins",
    "pair_families",
    "partial_partitions",
    "replay_churn",
    "sample_stream",
    "uniform_partition",
    "zipf_sizes",
]
