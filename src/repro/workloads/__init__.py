"""Workload generation: random conference sets and exact enumerations."""

from repro.workloads.generators import (
    aligned_sets,
    clustered,
    draw_sizes,
    interleaved,
    sample_stream,
    uniform_partition,
)
from repro.workloads.partitions import (
    conference_sets,
    count_partial_partitions,
    pair_families,
    partial_partitions,
)

__all__ = [
    "aligned_sets",
    "clustered",
    "conference_sets",
    "count_partial_partitions",
    "draw_sizes",
    "interleaved",
    "pair_families",
    "partial_partitions",
    "sample_stream",
    "uniform_partition",
]
