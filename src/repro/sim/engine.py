"""A minimal, deterministic discrete-event simulation engine.

Events are (time, sequence, action) triples on a heap; ties in time are
broken by insertion order, so runs are exactly reproducible for a given
seed.  The engine is deliberately generic — the conference traffic model
in ``repro.sim.traffic`` schedules arrival and departure events on it —
and supports stopping either at a horizon or after an event budget.

An optional :class:`~repro.obs.trace.Tracer` (duck-typed; any object
with an ``event`` method) can be attached to observe the loop itself:
every ``schedule`` emits a ``loop.schedule`` event and every executed
event a ``loop.fire`` event.  Tracing is pure observation — the heap
order, the clock, and every action are identical with and without it.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.obs.trace import Tracer

__all__ = ["Event", "EventLoop"]

Action = Callable[["EventLoop"], None]


@dataclass(order=True)
class Event:
    """One scheduled action.  Ordering is (time, seq) so FIFO among ties."""

    time: float
    seq: int
    action: Action = field(compare=False)


class EventLoop:
    """The simulation clock and pending-event heap."""

    def __init__(self, tracer: "Tracer | None" = None) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        self._running = False
        self.tracer = tracer

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed(self) -> int:
        """Events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Events still scheduled."""
        return len(self._heap)

    def schedule(self, delay: float, action: Action) -> None:
        """Run ``action`` ``delay`` time units from now (``delay >= 0``)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, Event(self._now + delay, self._seq, action))
        if self.tracer is not None:
            self.tracer.event(
                "loop.schedule", t=self._now, at=self._now + delay, ev=self._seq
            )
        self._seq += 1

    def schedule_at(self, time: float, action: Action) -> None:
        """Run ``action`` at absolute simulation time ``time``."""
        self.schedule(time - self._now, action)

    def run(self, until: "float | None" = None, max_events: "int | None" = None) -> None:
        """Drain events until the horizon, the budget, or an empty heap.

        Events scheduled exactly at the horizon still run; later ones
        stay pending so the loop can be resumed.  When a horizon is
        given, the clock always ends at it (unless the event budget
        stopped the loop with work still pending) — time-weighted
        statistics must account for an idle tail after the last event.
        """
        if self._running:
            raise RuntimeError("event loop is already running (re-entrant run())")
        self._running = True
        try:
            while self._heap:
                if max_events is not None and self._processed >= max_events:
                    break
                if until is not None and self._heap[0].time > until:
                    break
                ev = heapq.heappop(self._heap)
                self._now = ev.time
                self._processed += 1
                if self.tracer is not None:
                    self.tracer.event("loop.fire", t=ev.time, ev=ev.seq)
                ev.action(self)
        finally:
            self._running = False
        if until is not None and until > self._now and not (
            max_events is not None and self._processed >= max_events and self._heap
        ):
            self._now = until
