"""Live fault injection for the discrete-event simulator.

The resilience analysis in ``repro.analysis.resilience`` evaluates
*static* fault sets against *fresh* routings; this module puts faults on
the simulation clock instead.  A :class:`FaultInjector` schedules
failure/repair transitions of individual inter-stage links (and
optionally level-0 injection wires) on the :class:`~repro.sim.engine.EventLoop`
and maintains the currently-dead point set as simulation state.
Subscribers — chiefly the
:class:`~repro.core.healing.SelfHealingController` — react to each
transition while conferences are live.

Two timeline sources, one execution path:

* **scripted** — an explicit sequence of :class:`FaultTransition`
  records, used by tests and by experiments that must subject several
  designs to the *identical* fault process; and
* **stochastic** — :func:`generate_fault_timeline` pre-draws an
  alternating exponential time-to-failure / time-to-repair renewal
  process per link (one spawned RNG stream each, so the timeline is a
  pure function of the seed) and feeds it through the scripted path.

Pre-generating the stochastic timeline is what makes the engine's
determinism contract trivial to keep: the fault process can never be
perturbed by how admission decisions reorder the traffic events around
it, and relay-on/relay-off ablations face byte-identical fault histories.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.sim.engine import EventLoop
from repro.topology.network import MultistageNetwork, Point
from repro.util.rng import spawn_rngs
from repro.util.validation import check_positive

__all__ = [
    "FaultTransition",
    "FaultProcessConfig",
    "FaultInjector",
    "fault_universe",
    "generate_fault_timeline",
]


@dataclass(frozen=True)
class FaultTransition:
    """One scheduled link state change: ``failed=True`` kills the point
    ``(level, row)`` at ``time``; ``failed=False`` repairs it."""

    time: float
    point: Point
    failed: bool

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"transition time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class FaultProcessConfig:
    """Parameters of the per-link failure/repair renewal process.

    Each link independently alternates exponential up-times (mean
    ``mean_time_to_failure``) and down-times (mean
    ``mean_time_to_repair``); ``include_injections`` lets the level-0
    input wires fail too, cutting members off entirely.
    """

    mean_time_to_failure: float = 200.0
    mean_time_to_repair: float = 10.0
    include_injections: bool = False

    def __post_init__(self) -> None:
        check_positive(self.mean_time_to_failure, "mean_time_to_failure")
        check_positive(self.mean_time_to_repair, "mean_time_to_repair")


def fault_universe(net: MultistageNetwork, include_injections: bool = False) -> list[Point]:
    """All points that can fail, in deterministic (level, row) order."""
    first = 0 if include_injections else 1
    return [(t, r) for t in range(first, net.n_stages + 1) for r in range(net.n_ports)]


def generate_fault_timeline(
    net: MultistageNetwork,
    process: "FaultProcessConfig | None" = None,
    horizon: float = 1000.0,
    seed: "int | np.random.Generator | None" = None,
) -> tuple[FaultTransition, ...]:
    """Pre-draw a per-link failure/repair timeline up to ``horizon``.

    Every link gets its own spawned RNG stream, so the timeline is a
    pure function of ``(net, process, horizon, seed)`` — independent of
    whatever traffic later shares the event loop.  Transitions are
    returned sorted by ``(time, point)``.
    """
    process = process or FaultProcessConfig()
    check_positive(horizon, "horizon")
    universe = fault_universe(net, process.include_injections)
    rngs = spawn_rngs(seed, len(universe))
    transitions: list[FaultTransition] = []
    for point, rng in zip(universe, rngs):
        t, up = 0.0, True
        while True:
            mean = process.mean_time_to_failure if up else process.mean_time_to_repair
            t += float(rng.exponential(mean))
            if t >= horizon:
                break
            transitions.append(FaultTransition(time=t, point=point, failed=up))
            up = not up
    transitions.sort(key=lambda tr: (tr.time, tr.point, tr.failed))
    return tuple(transitions)


FaultListener = Callable[[EventLoop, FaultTransition], None]


class FaultInjector:
    """Replays a fault timeline on the event loop as live network state.

    Construct either from an explicit ``script`` (any iterable of
    :class:`FaultTransition`) or from a stochastic ``process`` plus
    ``horizon``/``seed`` (pre-generated via
    :func:`generate_fault_timeline`).  The timeline must be consistent:
    per point, strictly alternating fail/repair starting with a fail.

    Subscribers registered with :meth:`subscribe` are invoked *after*
    the injector's own fault-set update, in registration order, for
    every transition — the hook the self-healing controller hangs its
    degradation ladder on.
    """

    def __init__(
        self,
        net: MultistageNetwork,
        script: "Iterable[FaultTransition] | None" = None,
        process: "FaultProcessConfig | None" = None,
        horizon: "float | None" = None,
        seed: "int | np.random.Generator | None" = None,
        tracer=None,
    ):
        if script is not None and process is not None:
            raise ValueError("pass either a script or a stochastic process, not both")
        if script is None:
            if horizon is None:
                raise ValueError("stochastic fault injection needs a horizon to pre-generate")
            script = generate_fault_timeline(net, process, horizon, seed)
        self._net = net
        self._timeline = self._validate(script)
        self._current: set[Point] = set()
        self._history: list[FaultTransition] = []
        self._listeners: list[FaultListener] = []
        self._started = False
        # Observation only (duck-typed repro.obs.trace.Tracer): every
        # executed transition emits a fault.fail / fault.repair event.
        self.tracer = tracer

    @staticmethod
    def _validate(script: Iterable[FaultTransition]) -> tuple[FaultTransition, ...]:
        timeline = tuple(script)
        if any(timeline[i].time > timeline[i + 1].time for i in range(len(timeline) - 1)):
            raise ValueError("fault script must be sorted by time")
        state: dict[Point, bool] = {}
        for tr in timeline:
            if state.get(tr.point, False) == tr.failed:
                kind = "fail" if tr.failed else "repair"
                raise ValueError(
                    f"inconsistent fault script: {kind} of {tr.point} at t={tr.time} "
                    f"but the point is already {'dead' if tr.failed else 'alive'}"
                )
            state[tr.point] = tr.failed
        return timeline

    @property
    def timeline(self) -> tuple[FaultTransition, ...]:
        """The full (pre-validated) transition script."""
        return self._timeline

    @property
    def current_faults(self) -> frozenset[Point]:
        """The points dead right now."""
        return frozenset(self._current)

    @property
    def history(self) -> tuple[FaultTransition, ...]:
        """Transitions already executed, in firing order."""
        return tuple(self._history)

    def faults_at(self, time: float) -> frozenset[Point]:
        """Replay the script: the fault set in force at ``time``.

        This is the reference semantics the live state is property-tested
        against — the union of all fail transitions at or before ``time``
        minus the repairs at or before it.
        """
        dead: set[Point] = set()
        for tr in self._timeline:
            if tr.time > time:
                break
            (dead.add if tr.failed else dead.discard)(tr.point)
        return frozenset(dead)

    def subscribe(self, listener: FaultListener) -> None:
        """Register a callback invoked on every executed transition."""
        self._listeners.append(listener)

    def start(self, loop: EventLoop) -> None:
        """Schedule every transition on ``loop`` (call exactly once)."""
        if self._started:
            raise RuntimeError("fault injector already started")
        self._started = True
        for tr in self._timeline:
            loop.schedule_at(tr.time, lambda lp, tr=tr: self._fire(lp, tr))

    def _fire(self, loop: EventLoop, transition: FaultTransition) -> None:
        (self._current.add if transition.failed else self._current.discard)(transition.point)
        self._history.append(transition)
        if self.tracer is not None:
            self.tracer.event(
                "fault.fail" if transition.failed else "fault.repair",
                t=transition.time,
                level=transition.point[0],
                row=transition.point[1],
                dead=len(self._current),
            )
        for listener in self._listeners:
            listener(loop, transition)
