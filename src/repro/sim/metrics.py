"""Statistics accumulated by the traffic simulation."""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

__all__ = ["TrafficStats", "AvailabilityStats"]


@dataclass
class TrafficStats:
    """Counters and time-weighted occupancy for one simulation run.

    ``blocked`` is split by reason (``"capacity"`` for link exhaustion,
    ``"ports"`` for member-port exhaustion) because only capacity
    blocking reflects the network design; port blocking is an offered-
    load artifact reported separately.
    """

    offered: int = 0
    admitted: int = 0
    completed: int = 0
    admitted_members: int = 0
    blocked: Counter = field(default_factory=Counter)
    _occ_time: float = 0.0
    _occ_area: float = 0.0
    _occ_last_t: float = 0.0
    _occ_last_v: int = 0
    peak_occupancy: int = 0

    def block(self, reason: str) -> None:
        """Record a blocked call."""
        self.blocked[reason] += 1

    @property
    def blocked_total(self) -> int:
        """All blocked calls regardless of reason."""
        return sum(self.blocked.values())

    @property
    def blocking_probability(self) -> float:
        """Fraction of offered calls blocked (any reason)."""
        return self.blocked_total / self.offered if self.offered else 0.0

    @property
    def capacity_blocking_probability(self) -> float:
        """Fraction of offered calls blocked by link capacity — the
        design-relevant number in experiment F3."""
        return self.blocked["capacity"] / self.offered if self.offered else 0.0

    def observe_occupancy(self, now: float, live: int) -> None:
        """Update the time-weighted live-conference average."""
        dt = now - self._occ_last_t
        if dt < 0:
            raise ValueError("occupancy observations must be time-ordered")
        self._occ_area += self._occ_last_v * dt
        self._occ_time += dt
        self._occ_last_t = now
        self._occ_last_v = live
        self.peak_occupancy = max(self.peak_occupancy, live)

    @property
    def mean_occupancy(self) -> float:
        """Time-averaged number of live conferences."""
        return self._occ_area / self._occ_time if self._occ_time > 0 else 0.0

    def summary(self) -> dict[str, float | int]:
        """Flat dict for tables/CSV.

        Every blocked reason in the counter gets its own
        ``blocked_<reason>`` column (``capacity`` and ``ports`` always
        appear, even at zero, for stable CSV schemas); new reasons such
        as ``"fault"`` or ``"retry-exhausted"`` are never silently
        dropped.
        """
        out: dict[str, float | int] = {
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
        }
        for reason in sorted({"capacity", "ports"} | set(self.blocked)):
            out[f"blocked_{reason}"] = self.blocked[reason]
        out.update(
            {
                "blocking_probability": round(self.blocking_probability, 6),
                "capacity_blocking_probability": round(self.capacity_blocking_probability, 6),
                "mean_occupancy": round(self.mean_occupancy, 3),
                "peak_occupancy": self.peak_occupancy,
            }
        )
        return out


@dataclass
class AvailabilityStats:
    """Availability accounting for the live fault-injection simulation.

    Tracks three clocks at once:

    * **link level** — failure/repair transitions reported by the fault
      injector, giving the realized link MTTR;
    * **conference level** — outage windows of admitted calls that a
      fault (or a failed heal) knocked down, each capped at the call's
      natural deadline so a call lost near its end is not charged an
      infinite outage; and
    * **population level** — time-weighted integrals of how many calls
      are live, degraded (running on a fault-detour route), and down
      (dropped, awaiting a retry).

    ``availability`` is served conference-time over demanded
    conference-time: ``area_live / (area_live + outage_time)``.
    """

    # -- link transitions --------------------------------------------------
    link_failures: int = 0
    link_repairs: int = 0
    _link_down_since: dict = field(default_factory=dict)
    _link_repair_time: float = 0.0

    # -- healing actions ---------------------------------------------------
    tap_move_events: int = 0
    taps_moved_total: int = 0
    reroutes: int = 0
    reroute_links_touched: int = 0
    drops: Counter = field(default_factory=Counter)
    restores: int = 0
    lost_calls: int = 0  # dropped and never restored (retries exhausted / no retry)

    # -- retry queue -------------------------------------------------------
    retries_scheduled: int = 0
    retries_succeeded: int = 0
    retries_exhausted: int = 0

    # -- protection fast path ----------------------------------------------
    plan_hits: int = 0  # failovers served from a stored backup plan
    plan_misses: int = 0  # unprotected link: reactive reroute search
    plan_stale: int = 0  # plan invalidated by churn/overlap: reactive
    _recovery_samples: list = field(default_factory=list)

    # -- conference outage windows ----------------------------------------
    _open_outages: dict = field(default_factory=dict)  # cid -> (start, deadline)
    outage_time: float = 0.0
    _closed_outage_time: float = 0.0
    _closed_outages: int = 0

    # -- time-weighted population integrals -------------------------------
    _last_t: float = 0.0
    _last_live: int = 0
    _last_degraded: int = 0
    _last_down: int = 0
    _area_live: float = 0.0
    _area_degraded: float = 0.0
    _area_down: float = 0.0

    # -- link level --------------------------------------------------------

    def record_link_failed(self, now: float, point: tuple) -> None:
        """A fault transition took ``point`` down."""
        self.link_failures += 1
        self._link_down_since[point] = now

    def record_link_repaired(self, now: float, point: tuple) -> None:
        """A repair transition brought ``point`` back."""
        self.link_repairs += 1
        down_since = self._link_down_since.pop(point, None)
        if down_since is not None:
            self._link_repair_time += now - down_since

    @property
    def link_mttr(self) -> float:
        """Realized mean time-to-repair over completed link outages."""
        return self._link_repair_time / self.link_repairs if self.link_repairs else 0.0

    # -- healing actions ---------------------------------------------------

    def record_tap_move(self, taps_moved: int) -> None:
        """A conference survived a transition by mux re-selection alone."""
        self.tap_move_events += 1
        self.taps_moved_total += taps_moved

    def record_reroute(self, links_touched: int) -> None:
        """A conference survived by claiming a new path through the fabric."""
        self.reroutes += 1
        self.reroute_links_touched += links_touched

    def record_drop(self, cause: str) -> None:
        """A live conference was torn down (``cause``: fault/capacity)."""
        self.drops[cause] += 1

    @property
    def dropped_total(self) -> int:
        """All mid-call drops regardless of cause."""
        return sum(self.drops.values())

    # -- protection fast path ----------------------------------------------

    def record_plan_lookup(self, outcome: str) -> None:
        """One backup-plan failover lookup: ``hit``, ``miss``, or ``stale``."""
        if outcome == "hit":
            self.plan_hits += 1
        elif outcome == "stale":
            self.plan_stale += 1
        else:
            self.plan_misses += 1

    def record_recovery(self, ticks: float) -> None:
        """Controller work spent deciding one disrupted conference's fate.

        The cost model behind the protected-vs-unprotected comparison:
        a failover served from a stored backup plan is an O(1) switch
        (0 ticks); a reactive route search costs 1 tick.  Every
        conference a ``fail`` transition disrupts records exactly one
        sample — survivors and drops alike — so the distribution covers
        all disruptions, while a drop's *outage* is charged separately
        through the outage windows.
        """
        self._recovery_samples.append(float(ticks))

    @property
    def recovery_samples(self) -> tuple[float, ...]:
        """Per-disruption recovery-tick samples, in event order."""
        return tuple(self._recovery_samples)

    @staticmethod
    def summarize_recovery(samples) -> dict[str, float | int]:
        """Count / mean / p50 / p95 / max of a recovery-tick sample set.

        Nearest-rank percentiles on the sorted samples (deterministic,
        no interpolation); all zeros for an empty set.  A static method
        so sharded runs can fold per-shard samples into one table.
        """
        ordered = sorted(float(s) for s in samples)
        n = len(ordered)

        def nearest(q: float) -> float:
            if not n:
                return 0.0
            return ordered[min(n - 1, max(0, math.ceil(q * n) - 1))]

        return {
            "recovery_events": n,
            "recovery_ticks_mean": round(sum(ordered) / n, 6) if n else 0.0,
            "recovery_ticks_p50": nearest(0.50),
            "recovery_ticks_p95": nearest(0.95),
            "recovery_ticks_max": ordered[-1] if n else 0.0,
        }

    # -- conference outage windows ----------------------------------------

    def open_outage(self, cid: int, now: float, deadline: float) -> None:
        """A dropped call starts its outage clock (capped at ``deadline``)."""
        self._open_outages[cid] = (now, max(deadline, now))

    def close_outage(self, cid: int, now: float) -> None:
        """A retried call came back; charge the realized downtime.

        Tolerates an unknown ``cid`` (no window was opened — the healing
        controller is being driven without a traffic source): the
        restore is still counted, with no downtime to charge.
        """
        window = self._open_outages.pop(cid, None)
        if window is not None:
            start, deadline = window
            downtime = min(now, deadline) - start
            self.outage_time += downtime
            self._closed_outage_time += downtime
            self._closed_outages += 1
        self.restores += 1

    def abandon_outage(self, cid: int) -> None:
        """The call will never come back; charge the full remaining time."""
        window = self._open_outages.pop(cid, None)
        if window is not None:
            start, deadline = window
            self.outage_time += deadline - start
        self.lost_calls += 1

    @property
    def conference_mttr(self) -> float:
        """Mean downtime of calls that were dropped and later restored."""
        return self._closed_outage_time / self._closed_outages if self._closed_outages else 0.0

    # -- population integrals ---------------------------------------------

    def observe(self, now: float, live: int, degraded: int, down: int) -> None:
        """Advance the time-weighted live/degraded/down integrals."""
        dt = now - self._last_t
        if dt < 0:
            raise ValueError("availability observations must be time-ordered")
        self._area_live += self._last_live * dt
        self._area_degraded += self._last_degraded * dt
        self._area_down += self._last_down * dt
        self._last_t = now
        self._last_live = live
        self._last_degraded = degraded
        self._last_down = down

    def finalize(self, now: float) -> None:
        """Close all integrals and still-open outages at the horizon."""
        self.observe(now, self._last_live, self._last_degraded, self._last_down)
        for cid in sorted(self._open_outages):
            start, deadline = self._open_outages.pop(cid)
            self.outage_time += min(now, deadline) - start

    @property
    def availability(self) -> float:
        """Served conference-time over demanded conference-time."""
        demanded = self._area_live + self.outage_time
        return self._area_live / demanded if demanded > 0 else 1.0

    @property
    def degraded_fraction(self) -> float:
        """Time-weighted fraction of live conference-time on detour routes."""
        return self._area_degraded / self._area_live if self._area_live > 0 else 0.0

    def summary(self) -> dict[str, float | int]:
        """Flat dict for tables/CSV (deterministic key order and rounding)."""
        out: dict[str, float | int] = {
            "availability": round(self.availability, 6),
            "degraded_fraction": round(self.degraded_fraction, 6),
            "outage_time": round(self.outage_time, 6),
            "conference_mttr": round(self.conference_mttr, 6),
            "link_failures": self.link_failures,
            "link_repairs": self.link_repairs,
            "link_mttr": round(self.link_mttr, 6),
            "tap_move_events": self.tap_move_events,
            "taps_moved_total": self.taps_moved_total,
            "reroutes": self.reroutes,
            "dropped": self.dropped_total,
            "restored": self.restores,
            "lost_calls": self.lost_calls,
            "retries_scheduled": self.retries_scheduled,
            "retries_succeeded": self.retries_succeeded,
            "retries_exhausted": self.retries_exhausted,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_stale": self.plan_stale,
        }
        out.update(self.summarize_recovery(self._recovery_samples))
        return out
