"""Statistics accumulated by the traffic simulation."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["TrafficStats"]


@dataclass
class TrafficStats:
    """Counters and time-weighted occupancy for one simulation run.

    ``blocked`` is split by reason (``"capacity"`` for link exhaustion,
    ``"ports"`` for member-port exhaustion) because only capacity
    blocking reflects the network design; port blocking is an offered-
    load artifact reported separately.
    """

    offered: int = 0
    admitted: int = 0
    completed: int = 0
    admitted_members: int = 0
    blocked: Counter = field(default_factory=Counter)
    _occ_time: float = 0.0
    _occ_area: float = 0.0
    _occ_last_t: float = 0.0
    _occ_last_v: int = 0
    peak_occupancy: int = 0

    def block(self, reason: str) -> None:
        """Record a blocked call."""
        self.blocked[reason] += 1

    @property
    def blocked_total(self) -> int:
        """All blocked calls regardless of reason."""
        return sum(self.blocked.values())

    @property
    def blocking_probability(self) -> float:
        """Fraction of offered calls blocked (any reason)."""
        return self.blocked_total / self.offered if self.offered else 0.0

    @property
    def capacity_blocking_probability(self) -> float:
        """Fraction of offered calls blocked by link capacity — the
        design-relevant number in experiment F3."""
        return self.blocked["capacity"] / self.offered if self.offered else 0.0

    def observe_occupancy(self, now: float, live: int) -> None:
        """Update the time-weighted live-conference average."""
        dt = now - self._occ_last_t
        if dt < 0:
            raise ValueError("occupancy observations must be time-ordered")
        self._occ_area += self._occ_last_v * dt
        self._occ_time += dt
        self._occ_last_t = now
        self._occ_last_v = live
        self.peak_occupancy = max(self.peak_occupancy, live)

    @property
    def mean_occupancy(self) -> float:
        """Time-averaged number of live conferences."""
        return self._occ_area / self._occ_time if self._occ_time > 0 else 0.0

    def summary(self) -> dict[str, float | int]:
        """Flat dict for tables/CSV."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "blocked_capacity": self.blocked["capacity"],
            "blocked_ports": self.blocked["ports"],
            "blocking_probability": round(self.blocking_probability, 6),
            "capacity_blocking_probability": round(self.capacity_blocking_probability, 6),
            "mean_occupancy": round(self.mean_occupancy, 3),
            "peak_occupancy": self.peak_occupancy,
        }
