"""Stochastic conference traffic model.

Conference calls arrive as a Poisson process; each call requests a
random member set (size from a shifted-Poisson distribution, members
either uniformly random over free ports or buddy-aligned) and, if
admitted, holds for an exponential time before leaving.  This is the
classical teletraffic model specialized to conference switching, and the
workload of the blocking-probability experiment (F3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.admission import AdmissionController, AdmissionDenied, BuddyAllocator
from repro.core.conference import Conference
from repro.sim.engine import EventLoop
from repro.sim.metrics import TrafficStats
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.validation import check_positive

__all__ = ["TrafficConfig", "ConferenceTrafficSource", "ResilientTrafficSource"]


@dataclass(frozen=True)
class TrafficConfig:
    """Parameters of the stochastic conference workload.

    ``arrival_rate`` is calls per unit time; ``mean_holding`` the mean
    call duration; sizes are ``min_size + Poisson(mean_size -
    min_size)``.  ``placement`` selects arbitrary (``"uniform"``) or
    Yang-2001 (``"aligned"``) member assignment.
    """

    arrival_rate: float = 1.0
    mean_holding: float = 10.0
    mean_size: float = 4.0
    min_size: int = 2
    max_size: "int | None" = None
    placement: str = "uniform"

    def __post_init__(self) -> None:
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.mean_holding, "mean_holding")
        if self.min_size < 1:
            raise ValueError(f"min_size must be >= 1, got {self.min_size}")
        if self.mean_size < self.min_size:
            raise ValueError("mean_size must be >= min_size")
        if self.placement not in ("uniform", "aligned"):
            raise ValueError(f"placement must be 'uniform' or 'aligned', got {self.placement!r}")

    @property
    def offered_erlangs(self) -> float:
        """Offered load in erlangs (arrival rate x holding time)."""
        return self.arrival_rate * self.mean_holding


@dataclass
class _LiveCall:
    conference: Conference
    block_base: "int | None" = None  # aligned placement bookkeeping


class ConferenceTrafficSource:
    """Drives an :class:`AdmissionController` with stochastic call traffic.

    Attach to an event loop with :meth:`start`; statistics accumulate in
    :attr:`stats`.  Port selection and admission interact: a call whose
    member request cannot even find free ports counts as blocked with
    reason ``"ports"``, matching how a real conference bridge would
    refuse the dial-in.
    """

    def __init__(
        self,
        controller: AdmissionController,
        config: TrafficConfig,
        seed: "int | np.random.Generator | None" = None,
    ):
        self._controller = controller
        self._config = config
        self._rng = ensure_rng(seed)
        self._stats = TrafficStats()
        self._live: dict[int, _LiveCall] = {}
        self._next_id = 0
        self._free_ports = set(range(controller.network.n_ports))
        self._buddy = (
            BuddyAllocator(controller.network.n_ports)
            if config.placement == "aligned"
            else None
        )

    @property
    def stats(self) -> TrafficStats:
        """Accumulated counters (live view)."""
        return self._stats

    @property
    def live_calls(self) -> int:
        """Number of conferences currently in progress."""
        return len(self._live)

    # -- event-loop wiring -------------------------------------------------

    def start(self, loop: EventLoop) -> None:
        """Schedule the first arrival."""
        loop.schedule(self._interarrival(), self._arrival)

    def _interarrival(self) -> float:
        return float(self._rng.exponential(1.0 / self._config.arrival_rate))

    def _holding(self) -> float:
        return float(self._rng.exponential(self._config.mean_holding))

    def _draw_size(self) -> int:
        cfg = self._config
        s = cfg.min_size + int(self._rng.poisson(cfg.mean_size - cfg.min_size))
        if cfg.max_size is not None:
            s = min(s, cfg.max_size)
        return s

    def _arrival(self, loop: EventLoop) -> None:
        self._stats.offered += 1
        size = self._draw_size()
        call = self._admit(size)
        if call is not None:
            cid = call.conference.conference_id
            self._live[cid] = call
            self._stats.admitted += 1
            self._stats.admitted_members += size
            loop.schedule(self._holding(), lambda lp, cid=cid: self._departure(lp, cid))
        self._stats.observe_occupancy(loop.now, len(self._live))
        loop.schedule(self._interarrival(), self._arrival)

    def _departure(self, loop: EventLoop, cid: int) -> None:
        call = self._live.pop(cid)
        self._controller.leave(cid)
        self._free_ports.update(call.conference.members)
        if self._buddy is not None and call.block_base is not None:
            self._buddy.release(call.block_base)
        self._stats.completed += 1
        self._stats.observe_occupancy(loop.now, len(self._live))

    # -- admission ----------------------------------------------------------

    def _admit(self, size: int) -> "_LiveCall | None":
        members, block_base = self._pick_members(size)
        if members is None:
            self._stats.block("ports")
            return None
        conference = Conference.of(members, conference_id=self._next_id)
        try:
            self._controller.try_join(conference)
        except AdmissionDenied as denial:
            if self._buddy is not None and block_base is not None:
                self._buddy.release(block_base)
            self._stats.block(denial.reason)
            return None
        self._next_id += 1
        self._free_ports.difference_update(members)
        return _LiveCall(conference=conference, block_base=block_base)

    def _pick_members(self, size: int) -> "tuple[list[int] | None, int | None]":
        if self._buddy is not None:
            try:
                block = self._buddy.allocate(size)
            except MemoryError:
                return None, None
            return list(block)[:size], block.start
        if len(self._free_ports) < size:
            return None, None
        chosen = self._rng.choice(sorted(self._free_ports), size=size, replace=False)
        return [int(p) for p in chosen], None


class ResilientTrafficSource(ConferenceTrafficSource):
    """Traffic source wired to a self-healing controller.

    The ``controller`` must be a
    :class:`~repro.core.healing.SelfHealingController`; admissions go
    through its retry queue, and its drop/restore/lost hooks keep this
    source's port pool and departure schedule consistent with healing
    decisions:

    * a call the healer **drops** releases its ports immediately (they
      may be snapped up by new arrivals — the redial then contends like
      anyone else) and opens its outage window;
    * a **restored** call resumes for the *remainder* of its original
      holding time;
    * a blocked arrival is only counted against the blocked table when
      its retry budget is exhausted (reason ``"retry-exhausted"``) or
      retries are disabled.

    Placement must be ``"uniform"``: buddy-aligned blocks cannot be
    meaningfully re-acquired by a redial after strangers took part of
    the block.

    The arrival process (interarrival times, requested sizes) runs on
    its own spawned RNG stream, so two runs differing only in retry or
    relay policy face the byte-identical offered-call sequence — the
    common-random-numbers discipline the ablation experiments rely on.
    """

    def __init__(self, controller, config: TrafficConfig, seed=None):
        if config.placement != "uniform":
            raise ValueError("ResilientTrafficSource requires uniform placement")
        arrival_rng, body_rng = spawn_rngs(seed, 2)
        super().__init__(controller, config, seed=body_rng)
        self._arrival_rng = arrival_rng
        self._healing = controller
        self._end_time: dict[int, float] = {}
        self._epoch: dict[int, int] = {}
        controller.on_drop = self._on_drop
        controller.on_restore = self._on_restore
        controller.on_lost = self._on_restore_lost

    # -- arrivals through the retry queue ----------------------------------

    def _interarrival(self) -> float:
        return float(self._arrival_rng.exponential(1.0 / self._config.arrival_rate))

    def _draw_size(self) -> int:
        cfg = self._config
        s = cfg.min_size + int(self._arrival_rng.poisson(cfg.mean_size - cfg.min_size))
        if cfg.max_size is not None:
            s = min(s, cfg.max_size)
        return s

    def _arrival(self, loop: EventLoop) -> None:
        self._stats.offered += 1
        size = self._draw_size()
        members, _ = self._pick_members(size)
        if members is None:
            self._stats.block("ports")
        else:
            conference = Conference.of(members, conference_id=self._next_id)
            self._next_id += 1
            self._healing.submit(
                loop, conference, on_admitted=self._on_admitted, on_lost=self._on_arrival_lost
            )
        self._stats.observe_occupancy(loop.now, len(self._live))
        loop.schedule(self._interarrival(), self._arrival)

    def _on_admitted(self, loop: EventLoop, route) -> None:
        conference = route.conference
        cid = conference.conference_id
        holding = self._holding()
        self._live[cid] = _LiveCall(conference=conference)
        self._end_time[cid] = loop.now + holding
        self._free_ports.difference_update(conference.members)
        self._stats.admitted += 1
        self._stats.admitted_members += len(conference.members)
        self._schedule_departure(loop, cid, holding)
        self._stats.observe_occupancy(loop.now, len(self._live))

    def _on_arrival_lost(self, loop: EventLoop, conference: Conference, reason: str) -> None:
        self._stats.block(reason)

    # -- departures with cancellation --------------------------------------

    def _schedule_departure(self, loop: EventLoop, cid: int, delay: float) -> None:
        epoch = self._epoch.get(cid, 0) + 1
        self._epoch[cid] = epoch
        loop.schedule(delay, lambda lp: self._checked_departure(lp, cid, epoch))

    def _checked_departure(self, loop: EventLoop, cid: int, epoch: int) -> None:
        if self._epoch.get(cid) != epoch or cid not in self._live:
            return  # the call was dropped (and possibly restored) meanwhile
        call = self._live.pop(cid)
        self._healing.leave(cid, now=loop.now)
        self._free_ports.update(call.conference.members)
        self._end_time.pop(cid, None)
        self._epoch.pop(cid, None)
        self._stats.completed += 1
        self._stats.observe_occupancy(loop.now, len(self._live))

    # -- healing hooks ------------------------------------------------------

    def _on_drop(self, loop: EventLoop, conference: Conference) -> None:
        cid = conference.conference_id
        if self._live.pop(cid, None) is None:
            return
        self._epoch[cid] = self._epoch.get(cid, 0) + 1  # cancel the departure
        self._free_ports.update(conference.members)
        deadline = self._end_time.get(cid, loop.now)
        self._healing.stats.open_outage(cid, loop.now, deadline)
        self._stats.observe_occupancy(loop.now, len(self._live))

    def _on_restore(self, loop: EventLoop, route) -> None:
        conference = route.conference
        cid = conference.conference_id
        remaining = self._end_time.get(cid, loop.now) - loop.now
        if remaining <= 0:
            # The call's natural end passed while it was down.
            self._healing.leave(cid, now=loop.now)
            self._end_time.pop(cid, None)
            self._epoch.pop(cid, None)
            self._stats.completed += 1
            return
        self._live[cid] = _LiveCall(conference=conference)
        self._free_ports.difference_update(conference.members)
        self._schedule_departure(loop, cid, remaining)
        self._stats.observe_occupancy(loop.now, len(self._live))

    def _on_restore_lost(self, loop: EventLoop, conference: Conference, reason: str) -> None:
        cid = conference.conference_id
        self._end_time.pop(cid, None)
        self._epoch.pop(cid, None)
