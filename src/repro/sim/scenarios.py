"""Canned simulation scenarios used by experiments and examples.

Each scenario wires a conference network, an admission controller, a
traffic source and an event loop, runs to a horizon, and returns the
statistics.  Scenarios are pure functions of (parameters, seed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.admission import AdmissionController
from repro.core.healing import RetryPolicy, SelfHealingController
from repro.core.network import ConferenceNetwork
from repro.sim.engine import EventLoop
from repro.sim.faults import (
    FaultInjector,
    FaultProcessConfig,
    FaultTransition,
    generate_fault_timeline,
)
from repro.sim.metrics import AvailabilityStats, TrafficStats
from repro.sim.traffic import ConferenceTrafficSource, ResilientTrafficSource, TrafficConfig
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.validation import check_positive

__all__ = [
    "run_traffic",
    "blocking_vs_dilation",
    "placement_comparison",
    "AvailabilityRun",
    "run_availability",
]


def run_traffic(
    network: ConferenceNetwork,
    config: TrafficConfig,
    duration: float = 1000.0,
    seed: "int | np.random.Generator | None" = None,
) -> TrafficStats:
    """Run one stochastic-traffic simulation and return its statistics."""
    check_positive(duration, "duration")
    controller = AdmissionController(network)
    source = ConferenceTrafficSource(controller, config, seed=ensure_rng(seed))
    loop = EventLoop()
    source.start(loop)
    loop.run(until=duration)
    return source.stats


@dataclass(frozen=True)
class AvailabilityRun:
    """Everything one live fault-injection run produced."""

    traffic: TrafficStats
    availability: AvailabilityStats
    timeline: tuple[FaultTransition, ...]

    def summary(self) -> dict[str, float | int]:
        """Traffic and availability counters merged into one flat dict."""
        out: dict[str, float | int] = dict(self.traffic.summary())
        out.update(self.availability.summary())
        return out


def run_availability(
    topology: str,
    n_ports: int,
    dilation: int = 2,
    relay_enabled: bool = True,
    config: "TrafficConfig | None" = None,
    process: "FaultProcessConfig | None" = None,
    script: "tuple[FaultTransition, ...] | list[FaultTransition] | None" = None,
    retry: "RetryPolicy | None" = None,
    duration: float = 1000.0,
    seed: int = 0,
    protection: int = 0,
    tracer=None,
    metrics=None,
) -> AvailabilityRun:
    """One live availability run: traffic + fault injection + self-healing.

    The fault timeline is either the explicit ``script`` (pass the same
    timeline to several runs to subject different designs to the
    *identical* fault process) or pre-generated from ``process`` and the
    seed.  Traffic, fault, and retry-jitter randomness come from three
    independent child streams of ``seed``, so the whole run — every
    transition, retry, and metric — is exactly reproducible.
    ``protection`` (plan budget F) precomputes per-link backup routings
    so protected failovers are O(1) — decisions stay bit-identical to
    the reactive run, only the recovery-tick accounting moves.
    ``tracer`` / ``metrics`` (see :mod:`repro.obs`) observe the run
    without perturbing it.
    """
    check_positive(duration, "duration")
    config = config or TrafficConfig()
    traffic_rng, fault_rng, jitter_rng = spawn_rngs(seed, 3)
    network = ConferenceNetwork.build(
        topology, n_ports, dilation=dilation, relay_enabled=relay_enabled
    )
    if script is None:
        script = generate_fault_timeline(
            network.topology, process or FaultProcessConfig(), duration, seed=fault_rng
        )
    if tracer is not None:
        tracer.event(
            "experiment.run",
            t=0.0,
            experiment="faults",
            topology=topology,
            relay="on" if relay_enabled else "off",
        )
    healing = SelfHealingController(
        network,
        retry=retry,
        rng=jitter_rng,
        protection=protection,
        tracer=tracer,
        metrics=metrics,
    )
    injector = FaultInjector(network.topology, script=script, tracer=tracer)
    healing.attach(injector)
    source = ResilientTrafficSource(healing, config, seed=traffic_rng)
    loop = EventLoop(tracer=tracer)
    injector.start(loop)
    source.start(loop)
    loop.run(until=duration)
    healing.finalize(loop.now)
    return AvailabilityRun(
        traffic=source.stats,
        availability=healing.stats,
        timeline=tuple(script),
    )


def blocking_vs_dilation(
    topology: str,
    n_ports: int,
    dilations: "list[int] | tuple[int, ...]",
    config: "TrafficConfig | None" = None,
    duration: float = 2000.0,
    seed: int = 0,
) -> list[dict[str, float | int | str]]:
    """Experiment F3: capacity-blocking probability as dilation grows.

    Every dilation value runs with the same seed and parameters (the
    realized streams still diverge once admission decisions differ, as
    in any admission-coupled simulation).  Returns one summary dict per
    dilation.
    """
    config = config or TrafficConfig()
    rows = []
    for dilation in dilations:
        network = ConferenceNetwork.build(topology, n_ports, dilation=dilation)
        stats = run_traffic(network, config, duration=duration, seed=seed)
        row: dict[str, float | int | str] = {"topology": topology, "dilation": dilation}
        row.update(stats.summary())
        rows.append(row)
    return rows


def placement_comparison(
    topology: str,
    n_ports: int,
    dilation: int = 1,
    config: "TrafficConfig | None" = None,
    duration: float = 2000.0,
    seed: int = 0,
) -> dict[str, TrafficStats]:
    """Uniform vs aligned placement under identical traffic parameters.

    The aligned run uses buddy-allocated member blocks (Yang 2001); the
    uniform run scatters members arbitrarily (this paper's regime).
    At dilation 1 the aligned cube should admit essentially every call
    the ports allow, while uniform placement is throttled by link
    capacity — experiment T4's dynamic counterpart.
    """
    base = config or TrafficConfig()
    out: dict[str, TrafficStats] = {}
    for placement in ("uniform", "aligned"):
        cfg = TrafficConfig(
            arrival_rate=base.arrival_rate,
            mean_holding=base.mean_holding,
            mean_size=base.mean_size,
            min_size=base.min_size,
            max_size=base.max_size,
            placement=placement,
        )
        network = ConferenceNetwork.build(topology, n_ports, dilation=dilation)
        out[placement] = run_traffic(network, cfg, duration=duration, seed=seed)
    return out
