"""Discrete-event simulation of dynamic conference traffic and faults."""

from repro.sim.engine import Event, EventLoop
from repro.sim.faults import (
    FaultInjector,
    FaultProcessConfig,
    FaultTransition,
    fault_universe,
    generate_fault_timeline,
)
from repro.sim.metrics import AvailabilityStats, TrafficStats
from repro.sim.scenarios import (
    AvailabilityRun,
    blocking_vs_dilation,
    placement_comparison,
    run_availability,
    run_traffic,
)
from repro.sim.traffic import ConferenceTrafficSource, ResilientTrafficSource, TrafficConfig

__all__ = [
    "AvailabilityRun",
    "AvailabilityStats",
    "ConferenceTrafficSource",
    "Event",
    "EventLoop",
    "FaultInjector",
    "FaultProcessConfig",
    "FaultTransition",
    "ResilientTrafficSource",
    "TrafficConfig",
    "TrafficStats",
    "blocking_vs_dilation",
    "fault_universe",
    "generate_fault_timeline",
    "placement_comparison",
    "run_availability",
    "run_traffic",
]
