"""Discrete-event simulation of dynamic conference traffic and faults.

Exports are resolved lazily (PEP 562): importing a leaf module such as
``repro.sim.metrics`` must not drag in ``repro.sim.scenarios`` — the
scenarios import :mod:`repro.core.healing`, which itself imports
:mod:`repro.sim.metrics` at module level, and an eager package
``__init__`` would turn that into an import cycle.  ``from repro.sim
import EventLoop`` and friends behave exactly as before.
"""

from importlib import import_module

_EXPORTS = {
    "Event": "repro.sim.engine",
    "EventLoop": "repro.sim.engine",
    "FaultInjector": "repro.sim.faults",
    "FaultProcessConfig": "repro.sim.faults",
    "FaultTransition": "repro.sim.faults",
    "fault_universe": "repro.sim.faults",
    "generate_fault_timeline": "repro.sim.faults",
    "AvailabilityStats": "repro.sim.metrics",
    "TrafficStats": "repro.sim.metrics",
    "AvailabilityRun": "repro.sim.scenarios",
    "blocking_vs_dilation": "repro.sim.scenarios",
    "placement_comparison": "repro.sim.scenarios",
    "run_availability": "repro.sim.scenarios",
    "run_traffic": "repro.sim.scenarios",
    "ConferenceTrafficSource": "repro.sim.traffic",
    "ResilientTrafficSource": "repro.sim.traffic",
    "TrafficConfig": "repro.sim.traffic",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache so the lookup runs once
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
