"""Discrete-event simulation of dynamic conference traffic."""

from repro.sim.engine import Event, EventLoop
from repro.sim.metrics import TrafficStats
from repro.sim.scenarios import blocking_vs_dilation, placement_comparison, run_traffic
from repro.sim.traffic import ConferenceTrafficSource, TrafficConfig

__all__ = [
    "ConferenceTrafficSource",
    "Event",
    "EventLoop",
    "TrafficConfig",
    "TrafficStats",
    "blocking_vs_dilation",
    "placement_comparison",
    "run_traffic",
]
