"""Summaries of a cycle-level delivery run (the ``PerfReport`` verdict).

A :class:`~repro.perfmodel.model.CycleSim` condenses into one
:class:`PerfReport` satisfying the library-wide :class:`repro.api.Result`
contract (``ok`` / ``reason`` / ``as_dict`` with a ``"kind"`` key), so
the CLI and benchmarks serialize it through the same
:func:`repro.report.serialize.result_to_dict` path as every other
verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["PerfReport"]


@dataclass(frozen=True)
class PerfReport:
    """Delivered-performance summary of a buffered-switch simulation.

    Throughput figures are flit-conserving totals over the whole run;
    ``latency`` holds aggregate packet p50/p95/p99 in cycles (offer to
    last-flit drain), ``per_conference`` the same per conference plus
    offered/delivered packet counts.  ``stalls`` tallies blocked worm
    advances by cause (``lane_busy`` — wormhole serialization on a
    shared lane, ``buffer_full`` — backpressure, ``tdm_gate`` —
    off-slot cycles); ``lane_stall_busy``/``lane_stall_full`` are the
    finer per-lane tallies summed.  ``ok`` is the model's own sanity
    verdict: flits conserved and delivery monotone — load-induced
    congestion never makes a report not-ok, it just shows up in the
    numbers.
    """

    cycles: int
    config: dict[str, Any]
    n_conferences: int
    n_links: int
    n_slots: int
    offered_packets: int
    delivered_packets: int
    offered_flits: int
    injected_flits: int
    delivered_flits: int
    in_fabric_flits: int
    latency: "dict[str, float | None]" = field(default_factory=dict)
    per_conference: dict[int, dict[str, Any]] = field(default_factory=dict)
    stalls: dict[str, int] = field(default_factory=dict)
    lane_stall_busy: int = 0
    lane_stall_full: int = 0
    peak_lane_occupancy: int = 0
    conserved: bool = True

    @property
    def ok(self) -> bool:
        """Model self-consistency: conservation held, counts monotone."""
        return self.conserved and self.delivered_flits <= self.injected_flits <= self.offered_flits

    @property
    def reason(self) -> "str | None":
        """Why the model verdict failed (``None`` when ok)."""
        if not self.conserved:
            return "flit conservation violated"
        if not self.delivered_flits <= self.injected_flits <= self.offered_flits:
            return (
                f"non-monotone flit counts: offered {self.offered_flits}, "
                f"injected {self.injected_flits}, delivered {self.delivered_flits}"
            )
        return None

    @property
    def delivered_throughput(self) -> float:
        """Delivered packets per cycle, across all conferences."""
        return self.delivered_packets / self.cycles if self.cycles else 0.0

    @property
    def offered_throughput(self) -> float:
        """Offered packets per cycle, across all conferences."""
        return self.offered_packets / self.cycles if self.cycles else 0.0

    @property
    def delivery_ratio(self) -> float:
        """Delivered / offered packets (1.0 on an empty offer)."""
        return (
            self.delivered_packets / self.offered_packets
            if self.offered_packets
            else 1.0
        )

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view (the shared result-serializer contract)."""
        return {
            "kind": "perf_report",
            "ok": self.ok,
            "reason": self.reason,
            "cycles": self.cycles,
            "config": dict(self.config),
            "n_conferences": self.n_conferences,
            "n_links": self.n_links,
            "n_slots": self.n_slots,
            "offered_packets": self.offered_packets,
            "delivered_packets": self.delivered_packets,
            "offered_flits": self.offered_flits,
            "injected_flits": self.injected_flits,
            "delivered_flits": self.delivered_flits,
            "in_fabric_flits": self.in_fabric_flits,
            "delivered_throughput": self.delivered_throughput,
            "offered_throughput": self.offered_throughput,
            "delivery_ratio": self.delivery_ratio,
            "latency": dict(self.latency),
            "per_conference": {
                str(cid): {
                    "offered": entry["offered"],
                    "delivered": entry["delivered"],
                    "latency": dict(entry["latency"]),
                }
                for cid, entry in self.per_conference.items()
            },
            "stalls": dict(self.stalls),
            "lane_stall_busy": self.lane_stall_busy,
            "lane_stall_full": self.lane_stall_full,
            "peak_lane_occupancy": self.peak_lane_occupancy,
        }
