"""The serve-layer attachment of the buffered-switch model.

:class:`DeliveryModel` is the ``capacity_model="buffered"`` engine
behind :class:`~repro.serve.service.FabricService`: once per service
tick it simulates delivery over the *currently live* routes — a fresh
:class:`~repro.perfmodel.model.CycleSim` per tick, ``cycles_per_tick``
fabric cycles, ``packets_per_tick`` packets offered per live session —
and folds the results into cross-tick aggregates (flit totals, stall
causes, a merged latency histogram).

It is an **observation overlay**, not an admission input: the service's
admission decisions, RNG draws, session lifecycle and every existing
metric stay byte-identical whether the model is attached or not (the
abstract capacity model — the admission ledger's dilation bound — keeps
making the decisions either way).  What the overlay adds is the answer
to "what would a concrete L-lane buffered fabric have delivered for the
load we admitted?", per tick, against live faults and churn.

A fresh sim per tick means queue state does not carry across ticks —
each tick measures the steady push of ``packets_per_tick`` through the
current route set from idle, which keeps the model independent of tick
history (and therefore byte-stable under replay/resume).  The
cross-tick aggregates are where sustained trends show up.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from repro.core.routing import Route
from repro.perfmodel.model import STALL_CAUSES, CycleSim, PerfModelConfig

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["DeliveryModel", "CAPACITY_MODELS"]

#: Valid ``capacity_model=`` spellings on the serving layer.
CAPACITY_MODELS = ("abstract", "buffered")


def validate_capacity_model(value: str) -> str:
    """Normalize and validate a ``capacity_model=`` argument."""
    if value not in CAPACITY_MODELS:
        raise ValueError(
            f"capacity_model must be one of {CAPACITY_MODELS}, got {value!r}"
        )
    return value


class DeliveryModel:
    """Cross-tick aggregator driving one :class:`CycleSim` per tick."""

    def __init__(
        self,
        config: "PerfModelConfig | None" = None,
        *,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.config = config or PerfModelConfig()
        self._metrics = metrics
        self.ticks = 0
        self.idle_ticks = 0  # ticks with no live routes to simulate
        self.offered_packets = 0
        self.delivered_packets = 0
        self.offered_flits = 0
        self.delivered_flits = 0
        self.undelivered_packets = 0  # left pending at tick horizons
        self.stalls = dict.fromkeys(STALL_CAUSES, 0)
        self.peak_lane_occupancy = 0
        self._latency = CycleSim._make_histogram()

    def on_tick(self, routes: Sequence[Route]) -> "dict[str, Any] | None":
        """Simulate one service tick over the live ``routes``.

        Returns the tick's own summary (``None`` on an idle tick — no
        live sessions, nothing to simulate) and folds it into the
        cross-tick aggregates either way.
        """
        self.ticks += 1
        routes = [r for r in routes if r is not None]
        if not routes:
            self.idle_ticks += 1
            return None
        cfg = self.config
        sim = CycleSim(routes, cfg, metrics=self._metrics)
        for cid in sim.conference_ids:
            sim.inject(cid, cfg.packets_per_tick)
        sim.run(cfg.cycles_per_tick)
        sim.observe_metrics()
        self.offered_packets += sim.offered_packets
        self.delivered_packets += sim.delivered_packets
        self.offered_flits += sim.offered_flits
        self.delivered_flits += sim.delivered_flits
        self.undelivered_packets += sim.pending_packets
        for cause, count in sim.stalls.items():
            self.stalls[cause] += count
        peak = max(
            (link.peak_occupancy for link in sim.links.values()), default=0
        )
        if peak > self.peak_lane_occupancy:
            self.peak_lane_occupancy = peak
        self._latency.merge(sim.latency_histogram.snapshot())
        return {
            "conferences": len(routes),
            "offered_packets": sim.offered_packets,
            "delivered_packets": sim.delivered_packets,
            "pending_packets": sim.pending_packets,
            "latency": sim.latency_percentiles(),
        }

    @property
    def delivery_ratio(self) -> float:
        """Delivered / offered packets across all ticks (1.0 when idle)."""
        return (
            self.delivered_packets / self.offered_packets
            if self.offered_packets
            else 1.0
        )

    def latency_percentiles(self) -> "dict[str, float | None]":
        """Cross-tick packet-latency p50/p95/p99 in cycles."""
        return self._latency.percentiles()

    def summary(self) -> dict[str, Any]:
        """The ``"delivery"`` block buffered-mode bench reports carry."""
        return {
            "capacity_model": "buffered",
            "config": self.config.as_dict(),
            "ticks": self.ticks,
            "idle_ticks": self.idle_ticks,
            "offered_packets": self.offered_packets,
            "delivered_packets": self.delivered_packets,
            "undelivered_packets": self.undelivered_packets,
            "delivery_ratio": self.delivery_ratio,
            "offered_flits": self.offered_flits,
            "delivered_flits": self.delivered_flits,
            "latency": self.latency_percentiles(),
            "stalls": dict(self.stalls),
            "peak_lane_occupancy": self.peak_lane_occupancy,
        }

    def merge_summary(self, other: dict[str, Any]) -> None:
        """Fold a shard's :meth:`summary` into this aggregate.

        The cluster layer keeps one :class:`DeliveryModel` per shard and
        merges their summaries into a cluster-wide delivery block; counts
        add, percentiles cannot be merged from summaries and are taken
        from the per-shard histograms via :meth:`merge_histogram`.
        """
        self.ticks += other["ticks"]
        self.idle_ticks += other["idle_ticks"]
        self.offered_packets += other["offered_packets"]
        self.delivered_packets += other["delivered_packets"]
        self.undelivered_packets += other["undelivered_packets"]
        self.offered_flits += other["offered_flits"]
        self.delivered_flits += other["delivered_flits"]
        for cause, count in other["stalls"].items():
            self.stalls[cause] = self.stalls.get(cause, 0) + count
        if other["peak_lane_occupancy"] > self.peak_lane_occupancy:
            self.peak_lane_occupancy = other["peak_lane_occupancy"]

    def merge_histogram(self, other: "DeliveryModel") -> None:
        """Fold another model's latency histogram into this one
        (commutative, order-independent across shards)."""
        self._latency.merge(other._latency.snapshot())
