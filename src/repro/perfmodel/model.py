"""Cycle-level buffered-switch performance model: wormhole lanes + queues.

The paper's conflict analysis bounds what a conference fabric *needs* —
a link shared by ``m`` conferences requires dilation (or a TDM frame) of
``m`` to carry them all at once.  This module measures what a concrete
*buffered* fabric **delivers**: every inter-stage link carries ``L``
lanes (:class:`LinkModel`), each lane a bounded flit FIFO
(:class:`LaneQueue`), and admitted conference routes send *worms* —
packets of ``F`` flits — through their multicast trees under wormhole
switching, one flit per lane per cycle, with backpressure
(:class:`CycleSim`).

The switching discipline mirrors multi-lane wormhole MINs (Stergiou):

* **Lane exclusivity** — a worm acquires the lane of every route link at
  a level atomically when its head first enters that level, and holds
  the lanes until its tail drains past; conferences mapped to the same
  lane of a shared link serialize, which is exactly where contention
  shows up as stall cycles.
* **Broadcast waves** — a conference's route is a tree; one flit at
  level ``t`` occupies a buffer slot in the assigned lane of *every*
  route link entering level ``t`` (fan-out replication and fan-in
  combining happen switch-internally, as in the paper's signal model),
  and the wave advances only when every level-``t+1`` lane has space.
* **Deadlock freedom by level ordering** — worms only wait for lanes at
  the level above their head while holding lanes at or below it, so the
  wait-for graph is ordered by level and can never cycle; the deepest
  worm can always deliver.  The property suite leans on this: a sim with
  pending work always makes progress within a bounded horizon.
* **TDM frames** — with ``tdm=True`` the slot colouring of
  :func:`repro.analysis.scheduling.schedule_slots` gates each
  conference: its worms advance only on cycles of its slot, and its lane
  index is derived from the slot colour.  This is the time-division
  alternative the scheduling ablation (bench_a4) prices statically,
  now measured dynamically.

Saturation arithmetic the benchmark checks: a lane serves one flit per
cycle, a packet holds its lane for ``F`` cycles, and a link shared by
``m`` conferences over ``L`` lanes serves each conference at
``L / (m * F)`` packets per cycle — delivered throughput must track the
offered load below that bound and plateau at it above, never before.

Everything is deterministic: worm order is global packet id (injection
order), lane arbitration is oldest-worm-first within a cycle, and no
randomness is drawn anywhere — two sims over the same routes and
injection sequence are byte-identical, which the test suite asserts.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.routing import Route
from repro.obs.slo import WindowedHistogram
from repro.perfmodel.report import PerfReport
from repro.topology.network import Point
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["PerfModelConfig", "LaneQueue", "LinkModel", "CycleSim", "simulate_delivery"]

#: Stall causes tallied per cycle; keys of ``CycleSim.stalls``.
STALL_CAUSES = ("lane_busy", "buffer_full", "tdm_gate")


@dataclass(frozen=True)
class PerfModelConfig:
    """Knobs of the buffered-switch model.

    ``lanes`` is the per-link lane count ``L`` (the *space* dilation a
    buffered fabric actually implements), ``buffer_depth`` the flit
    capacity of each lane FIFO, ``flits_per_packet`` the worm length
    ``F``.  ``tdm`` switches from space-division lanes to time-division
    frames driven by the conflict colouring.  ``cycles_per_tick`` and
    ``packets_per_tick`` only matter when the model is attached to the
    serve layer (see :mod:`repro.perfmodel.capacity`): each service tick
    runs that many fabric cycles and injects that many packets per live
    session.
    """

    lanes: int = 1
    buffer_depth: int = 4
    flits_per_packet: int = 4
    tdm: bool = False
    cycles_per_tick: int = 64
    packets_per_tick: int = 1

    def __post_init__(self) -> None:
        for name in ("lanes", "buffer_depth", "flits_per_packet", "cycles_per_tick"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if not isinstance(self.packets_per_tick, int) or self.packets_per_tick < 0:
            raise ValueError(
                f"packets_per_tick must be a non-negative integer, "
                f"got {self.packets_per_tick!r}"
            )

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view for reports and benchmarks."""
        return {
            "lanes": self.lanes,
            "buffer_depth": self.buffer_depth,
            "flits_per_packet": self.flits_per_packet,
            "tdm": self.tdm,
            "cycles_per_tick": self.cycles_per_tick,
            "packets_per_tick": self.packets_per_tick,
        }


class LaneQueue:
    """One bounded flit FIFO of one lane of one inter-stage link.

    Wormhole switching keeps a lane exclusive to the worm currently
    crossing it, so the queue state is the owning worm plus a flit
    count bounded by ``depth``; the FIFO order within the lane is the
    worm's own flit order.  Counters (``pushes``, ``pops``,
    ``peak_occupancy``, ``stall_busy``, ``stall_full``) are the raw
    material of the queue-occupancy and stall telemetry.
    """

    __slots__ = (
        "lane",
        "depth",
        "owner",
        "occupancy",
        "pushes",
        "pops",
        "peak_occupancy",
        "stall_busy",
        "stall_full",
        "_pushed_cycle",
    )

    def __init__(self, lane: int, depth: int):
        check_positive(depth, "depth")
        self.lane = lane
        self.depth = depth
        self.owner: "int | None" = None  # packet id of the worm holding the lane
        self.occupancy = 0
        self.pushes = 0
        self.pops = 0
        self.peak_occupancy = 0
        self.stall_busy = 0
        self.stall_full = 0
        self._pushed_cycle = -1  # lane bandwidth: one flit accepted per cycle

    def can_accept(self, pid: int, cycle: int) -> bool:
        """Would a push by worm ``pid`` succeed this cycle?  Tallies the
        stall cause when not (exactly one cause per query)."""
        if self.owner is not None and self.owner != pid:
            self.stall_busy += 1
            return False
        if self.occupancy >= self.depth or self._pushed_cycle == cycle:
            self.stall_full += 1
            return False
        return True

    def push(self, pid: int, cycle: int) -> None:
        """Accept one flit of worm ``pid`` (caller checked ``can_accept``)."""
        if self.owner is None:
            self.owner = pid
        elif self.owner != pid:
            raise AssertionError(f"lane {self.lane} owned by {self.owner}, push by {pid}")
        if self.occupancy >= self.depth:
            raise AssertionError(f"lane {self.lane} over depth {self.depth}")
        self.occupancy += 1
        self.pushes += 1
        self._pushed_cycle = cycle
        if self.occupancy > self.peak_occupancy:
            self.peak_occupancy = self.occupancy

    def pop(self, *, release: bool) -> None:
        """Drain one flit; ``release`` frees the lane after the tail."""
        if self.occupancy <= 0:
            raise AssertionError(f"pop from empty lane {self.lane}")
        self.occupancy -= 1
        self.pops += 1
        if release and self.occupancy == 0:
            self.owner = None


class LinkModel:
    """One inter-stage link: ``L`` parallel lanes with their queues.

    ``link`` is the downstream point ``(level, row)`` — the same
    identity :attr:`repro.core.routing.Route.links` uses, so the model
    composes directly with the conflict accounting.
    """

    __slots__ = ("link", "lanes")

    def __init__(self, link: Point, n_lanes: int, depth: int):
        self.link = link
        self.lanes = tuple(LaneQueue(i, depth) for i in range(n_lanes))

    @property
    def occupancy(self) -> int:
        """Buffered flits across all lanes of this link."""
        return sum(q.occupancy for q in self.lanes)

    @property
    def peak_occupancy(self) -> int:
        """Worst single-lane occupancy seen on this link."""
        return max(q.peak_occupancy for q in self.lanes)


class _Worm:
    """One in-flight packet: ``F`` flits crossing a conference's tree."""

    __slots__ = ("pid", "cid", "offered_cycle", "to_inject", "occ", "delivered", "frontier")

    def __init__(self, pid: int, cid: int, offered_cycle: int, flits: int, depth: int):
        self.pid = pid
        self.cid = cid
        self.offered_cycle = offered_cycle
        self.to_inject = flits  # flits still at the source ports
        self.occ = [0] * (depth + 1)  # occ[t] = flits buffered at level t (1-based)
        self.delivered = 0  # flits drained past the deepest tap
        self.frontier = 0  # deepest level whose lanes this worm holds

    @property
    def in_fabric(self) -> int:
        return sum(self.occ)


class _ConfState:
    """Per-conference routing geometry and lane map, fixed at build time."""

    __slots__ = ("cid", "route", "depth", "level_links", "lane_of", "slot", "queue", "active")

    def __init__(self, cid: int, route: Route, depth: int):
        self.cid = cid
        self.route = route
        self.depth = depth
        # level -> tuple of link points the route uses entering that level
        # (row order matches the route dict's insertion order).
        self.level_links: list[tuple[Point, ...]] = [
            tuple((t, r) for r in route.levels[t]) if 1 <= t <= depth else ()
            for t in range(len(route.levels))
        ]
        self.lane_of: dict[Point, int] = {}
        self.slot = 0
        self.queue: list[_Worm] = []  # offered packets awaiting injection, FIFO
        self.active: list[_Worm] = []  # worms with at least one flit in fabric


class CycleSim:
    """Cycle-accurate delivery simulation over a set of admitted routes.

    Build it from the :class:`~repro.core.routing.Route` objects the
    routing core admitted (any iterable; conference ids must be unique),
    offer packets with :meth:`inject`, and advance the clock with
    :meth:`step` / :meth:`run`.  :meth:`report` summarizes delivered
    throughput, latency percentiles and queue/stall telemetry as a
    :class:`~repro.perfmodel.report.PerfReport`.

    ``schedule`` (a ``conference id -> slot`` mapping plus frame length
    via ``n_slots``) is derived from
    :func:`repro.analysis.scheduling.schedule_slots` when ``tdm`` is on
    and no explicit assignment is passed.  ``metrics`` (an optional
    :class:`~repro.obs.metrics.MetricsRegistry`) receives flit/stall
    counters and occupancy gauges; passing ``None`` draws nothing.

    The optional ``clock`` offset only labels metrics — the sim keeps
    its own cycle counter so ticks composed by the serve layer stay
    independent.
    """

    def __init__(
        self,
        routes: Sequence[Route],
        config: "PerfModelConfig | None" = None,
        *,
        schedule: "Mapping[int, int] | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.config = config or PerfModelConfig()
        self._metrics = metrics
        routes = list(routes)
        self._confs: dict[int, _ConfState] = {}
        for route in routes:
            cid = route.conference.conference_id
            if cid in self._confs:
                raise ValueError(f"duplicate conference id {cid} in route set")
            depth = max(route.taps.values()) if route.taps else 0
            self._confs[cid] = _ConfState(cid, route, depth)
        self.n_slots = 1
        if self.config.tdm:
            self._assign_tdm_slots(routes, schedule)
        self._links: dict[Point, LinkModel] = {}
        self._assign_lanes()
        self.cycle = 0
        self.offered_packets = 0
        self.offered_flits = 0
        self.injected_flits = 0
        self.delivered_flits = 0
        self.delivered_packets = 0
        self.stalls = dict.fromkeys(STALL_CAUSES, 0)
        self._next_pid = 0
        self._published: dict[tuple, int] = {}
        # Per-packet latency (offer -> last flit drained), log-bucketed;
        # one aggregate histogram plus one per conference.  The window is
        # sized so a whole benchmark run stays live — callers measuring
        # "recent" behaviour can pass their own sized histograms instead.
        self._latency = self._make_histogram()
        self._conf_latency: dict[int, WindowedHistogram] = {
            cid: self._make_histogram() for cid in self._confs
        }
        self._delivered_by_conf = dict.fromkeys(self._confs, 0)
        self._offered_by_conf = dict.fromkeys(self._confs, 0)

    def _publish_delta(self, counter: Any, key: tuple, total: int, **labels: Any) -> None:
        """Publish a counter as the delta since this sim's last publish.

        Registries can outlive sims (the serve layer builds a fresh sim
        per tick against one long-lived registry), so totals must be
        added as per-sim contributions, never overwritten.
        """
        delta = total - self._published.get(key, 0)
        if delta:
            counter.inc(delta, **labels)
            self._published[key] = total

    @staticmethod
    def _make_histogram() -> WindowedHistogram:
        return WindowedHistogram(
            low=1.0, high=float(1 << 20), growth=2.0 ** 0.25,
            window=float(1 << 62), windows=1,
        )

    # -- construction ------------------------------------------------------

    def _assign_tdm_slots(
        self, routes: list[Route], schedule: "Mapping[int, int] | None"
    ) -> None:
        if schedule is None:
            # Imported lazily: scheduling pulls in networkx, which the
            # space-division model never needs.
            from repro.analysis.scheduling import schedule_slots

            result = schedule_slots(routes)
            schedule, self.n_slots = result.slots, max(result.n_slots, 1)
        else:
            self.n_slots = max((int(s) for s in schedule.values()), default=0) + 1
        for cid, state in self._confs.items():
            try:
                state.slot = int(schedule[cid])
            except KeyError:
                raise ValueError(f"TDM schedule is missing conference {cid}") from None

    def _assign_lanes(self) -> None:
        """Map each (conference, link) to a lane index.

        Space mode balances sharers round-robin over the ``L`` lanes in
        conference-id order (deterministic, and even whenever ``L``
        divides the sharer count).  TDM mode uses the slot colour as the
        lane index — one *virtual* lane per frame slot (links carry
        ``max(L, n_slots)`` lanes), so a worm parked between its slots
        never blocks another colour's buffer; bandwidth division comes
        from the slot gating alone.  Because the colouring is proper, a
        link's sharers all have distinct slots, i.e. TDM gives every
        sharer a private virtual lane at 1/n_slots of the cycle rate.
        """
        cfg = self.config
        n_lanes = max(cfg.lanes, self.n_slots) if cfg.tdm else cfg.lanes
        sharers: dict[Point, list[int]] = {}
        for cid in sorted(self._confs):
            state = self._confs[cid]
            for links in state.level_links:
                for link in links:
                    sharers.setdefault(link, []).append(cid)
        for link, cids in sorted(sharers.items()):
            self._links[link] = LinkModel(link, n_lanes, cfg.buffer_depth)
            for idx, cid in enumerate(cids):
                state = self._confs[cid]
                lane = (state.slot if cfg.tdm else idx) % n_lanes
                state.lane_of[link] = lane

    # -- introspection -----------------------------------------------------

    @property
    def links(self) -> dict[Point, LinkModel]:
        """The modelled links (every link some route uses)."""
        return self._links

    @property
    def conference_ids(self) -> tuple[int, ...]:
        """Conferences the sim carries, in id order."""
        return tuple(sorted(self._confs))

    @property
    def in_fabric_flits(self) -> int:
        """Flits currently buffered in some lane (tree-replicated copies
        count once per wave, matching injection accounting)."""
        return sum(
            w.in_fabric
            for state in self._confs.values()
            for w in state.active
        )

    @property
    def pending_packets(self) -> int:
        """Offered packets that have not yet finished delivery."""
        return self.offered_packets - self.delivered_packets

    def check_conservation(self) -> None:
        """Assert no flit was created or lost (the Hypothesis invariant).

        Offered flits split exactly into: not yet injected (source
        queues), buffered in the fabric, and delivered.  Raises
        ``AssertionError`` on any imbalance.
        """
        waiting = sum(
            w.to_inject
            for state in self._confs.values()
            for w in state.queue + state.active
        )
        total = waiting + self.in_fabric_flits + self.delivered_flits
        if total != self.offered_flits:
            raise AssertionError(
                f"flit conservation violated: offered {self.offered_flits} != "
                f"waiting {waiting} + in-fabric {self.in_fabric_flits} + "
                f"delivered {self.delivered_flits}"
            )

    # -- injection ---------------------------------------------------------

    def inject(self, conference_id: int, packets: int = 1) -> None:
        """Offer ``packets`` packets on a conference's source ports.

        Offered packets queue at the sources and enter the fabric as
        lane capacity allows (open-loop: the queue is unbounded, so
        overload shows up as waiting time, not drops).
        """
        if packets < 0:
            raise ValueError(f"packets must be >= 0, got {packets}")
        try:
            state = self._confs[conference_id]
        except KeyError:
            raise KeyError(f"no route for conference {conference_id}") from None
        for _ in range(packets):
            worm = _Worm(
                self._next_pid, conference_id, self.cycle,
                self.config.flits_per_packet, state.depth,
            )
            self._next_pid += 1
            state.queue.append(worm)
            self.offered_packets += 1
            self.offered_flits += self.config.flits_per_packet
            self._offered_by_conf[conference_id] += 1

    # -- the cycle ---------------------------------------------------------

    def step(self) -> None:
        """Advance one fabric cycle: every worm shifts where it can.

        Worms act oldest-first (global packet id order); within a worm,
        levels are swept deepest-first so the whole worm shifts one
        level per cycle like a hardware pipeline — a slot freed at level
        ``t+1`` this cycle is usable at level ``t`` this same cycle.
        """
        cycle = self.cycle
        worms: list[tuple[_ConfState, _Worm, bool]] = []
        for cid in sorted(self._confs):
            state = self._confs[cid]
            for w in state.active:
                worms.append((state, w, False))
            if state.queue:
                worms.append((state, state.queue[0], True))
        worms.sort(key=lambda item: item[1].pid)
        for state, worm, queued in worms:
            if self.config.tdm and cycle % self.n_slots != state.slot:
                self.stalls["tdm_gate"] += 1
                continue
            self._advance(state, worm, cycle)
            if queued and worm.in_fabric:
                # First flit entered the fabric: the worm goes active.
                state.queue.pop(0)
                state.active.append(worm)
        self.cycle += 1

    def _advance(self, state: _ConfState, worm: _Worm, cycle: int) -> None:
        depth = state.depth
        # Deliver: one flit drains past the deepest taps per cycle (the
        # output muxes tap without contention).
        if depth > 0 and worm.occ[depth] > 0:
            worm.occ[depth] -= 1
            self._drain_level(state, worm, depth)
            self._deliver_flit(state, worm, cycle)
        # Shift buffered flits up one level where space allows.
        for t in range(depth - 1, 0, -1):
            if worm.occ[t] > 0 and self._try_move(state, worm, t + 1, cycle):
                worm.occ[t] -= 1
                worm.occ[t + 1] += 1
                self._drain_level(state, worm, t)
        # Inject the next flit from the source ports.
        if worm.to_inject > 0:
            if depth == 0:
                # Degenerate route (tap at level 0): delivery is direct.
                worm.to_inject -= 1
                self.injected_flits += 1
                self._deliver_flit(state, worm, cycle)
            elif self._try_move(state, worm, 1, cycle):
                worm.to_inject -= 1
                worm.occ[1] += 1
                self.injected_flits += 1

    def _try_move(self, state: _ConfState, worm: _Worm, level: int, cycle: int) -> bool:
        """Can (and does) the worm push one flit into every route link
        entering ``level`` this cycle?  All-or-nothing across the tree
        breadth; acquisition extends the frontier atomically."""
        links = state.level_links[level]
        lanes = [self._links[link].lanes[state.lane_of[link]] for link in links]
        ok = True
        for lane in lanes:
            # Query every lane (not short-circuit) so stall counters see
            # each blocked lane once per cycle.
            if not lane.can_accept(worm.pid, cycle):
                ok = False
        if not ok:
            if worm.frontier < level:
                self.stalls["lane_busy"] += 1
            else:
                self.stalls["buffer_full"] += 1
            return False
        for lane in lanes:
            lane.push(worm.pid, cycle)
        if worm.frontier < level:
            worm.frontier = level
        return True

    def _drain_level(self, state: _ConfState, worm: _Worm, level: int) -> None:
        """Pop one flit from every route link at ``level``; release the
        lanes once no flit of this worm will enter the level again."""
        upstream = worm.to_inject + sum(worm.occ[1:level])
        release = upstream == 0 and worm.occ[level] == 0
        for link in state.level_links[level]:
            self._links[link].lanes[state.lane_of[link]].pop(release=release)

    def _deliver_flit(self, state: _ConfState, worm: _Worm, cycle: int) -> None:
        worm.delivered += 1
        self.delivered_flits += 1
        if worm.delivered == self.config.flits_per_packet:
            self.delivered_packets += 1
            self._delivered_by_conf[worm.cid] += 1
            latency = float(cycle + 1 - worm.offered_cycle)
            self._latency.observe(latency, now=float(cycle))
            self._conf_latency[worm.cid].observe(latency, now=float(cycle))
            if worm in state.active:
                state.active.remove(worm)
            else:  # delivered straight from the source queue (depth 0)
                state.queue.remove(worm)

    def run(self, cycles: int) -> None:
        """Advance the sim ``cycles`` cycles."""
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        for _ in range(cycles):
            self.step()

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Run until every offered packet is delivered; returns cycles
        spent.  ``RuntimeError`` if the horizon is hit (would indicate a
        progress bug — level-ordered waiting cannot deadlock)."""
        spent = 0
        while self.pending_packets:
            if spent >= max_cycles:
                raise RuntimeError(
                    f"drain did not settle within {max_cycles} cycles "
                    f"({self.pending_packets} packets pending)"
                )
            self.step()
            spent += 1
        return spent

    # -- reporting ---------------------------------------------------------

    def observe_metrics(self) -> None:
        """Publish counters/gauges to the attached metrics registry.

        Call at any cadence (the serve layer does once per tick); all
        series are monotone counters or last-write gauges, so cadence
        only affects resolution, never totals.
        """
        reg = self._metrics
        if reg is None:
            return
        flits = reg.counter("repro_perf_flits_total", "Flits by lifecycle event")
        for event, total in (
            ("offered", self.offered_flits),
            ("injected", self.injected_flits),
            ("delivered", self.delivered_flits),
        ):
            self._publish_delta(flits, ("flits", event), total, event=event)
        stalls = reg.counter("repro_perf_stalls_total", "Stalled worm advances by cause")
        for cause, count in self.stalls.items():
            self._publish_delta(stalls, ("stalls", cause), count, cause=cause)
        occ = reg.gauge("repro_perf_queue_occupancy", "Buffered flits per link level")
        by_level: dict[int, int] = {}
        peak = 0
        for (level, _row), link in self._links.items():
            by_level[level] = by_level.get(level, 0) + link.occupancy
            peak = max(peak, link.peak_occupancy)
        for level in sorted(by_level):
            occ.set(by_level[level], level=str(level))
        reg.gauge(
            "repro_perf_lane_peak_occupancy", "Worst single-lane flit occupancy"
        ).set_max(peak)

    def latency_percentiles(self) -> "dict[str, float | None]":
        """Aggregate packet-latency p50/p95/p99 (cycles, offer to drain)."""
        return self._latency.percentiles()

    @property
    def latency_histogram(self) -> WindowedHistogram:
        """The aggregate packet-latency histogram (snapshot/merge into
        longer-lived aggregates — the serve layer folds per-tick sims
        into one cross-tick histogram this way)."""
        return self._latency

    def report(self) -> PerfReport:
        """Summarize the run so far as a :class:`PerfReport`."""
        peak = 0
        stall_busy = stall_full = 0
        for link in self._links.values():
            peak = max(peak, link.peak_occupancy)
            for lane in link.lanes:
                stall_busy += lane.stall_busy
                stall_full += lane.stall_full
        per_conference = {
            cid: {
                "offered": self._offered_by_conf[cid],
                "delivered": self._delivered_by_conf[cid],
                "latency": self._conf_latency[cid].percentiles(),
            }
            for cid in sorted(self._confs)
        }
        try:
            self.check_conservation()
            conserved = True
        except AssertionError:
            conserved = False  # pragma: no cover - would be a model bug
        return PerfReport(
            cycles=self.cycle,
            config=self.config.as_dict(),
            n_conferences=len(self._confs),
            n_links=len(self._links),
            n_slots=self.n_slots,
            offered_packets=self.offered_packets,
            delivered_packets=self.delivered_packets,
            offered_flits=self.offered_flits,
            injected_flits=self.injected_flits,
            delivered_flits=self.delivered_flits,
            in_fabric_flits=self.in_fabric_flits,
            latency=self.latency_percentiles(),
            per_conference=per_conference,
            stalls=dict(self.stalls),
            lane_stall_busy=stall_busy,
            lane_stall_full=stall_full,
            peak_lane_occupancy=peak,
            conserved=conserved,
        )


@dataclass
class _TokenBucket:
    """Deterministic fractional-rate injection accumulator."""

    rate: float
    acc: float = field(default=0.0)

    def due(self) -> int:
        self.acc += self.rate
        whole = int(self.acc)
        self.acc -= whole
        return whole


def simulate_delivery(
    routes: Sequence[Route],
    *,
    config: "PerfModelConfig | None" = None,
    cycles: int = 4096,
    offered_load: float = 0.1,
    schedule: "Mapping[int, int] | None" = None,
    metrics: "MetricsRegistry | None" = None,
    drain: bool = False,
) -> PerfReport:
    """Drive a :class:`CycleSim` open-loop and return its report.

    Every conference is offered ``offered_load`` packets per cycle
    through a deterministic token-bucket accumulator (no randomness: the
    same arguments always produce the same report).  ``drain=True`` runs
    the sim past the horizon until every offered packet delivers —
    closed-form totals for conservation checks; leave it off to measure
    steady-state delivered throughput under sustained load.
    """
    check_positive(cycles, "cycles")
    if offered_load < 0:
        raise ValueError(f"offered_load must be >= 0, got {offered_load}")
    sim = CycleSim(routes, config, schedule=schedule, metrics=metrics)
    buckets = {cid: _TokenBucket(offered_load) for cid in sim.conference_ids}
    for _ in range(cycles):
        for cid in sim.conference_ids:
            due = buckets[cid].due()
            if due:
                sim.inject(cid, due)
        sim.step()
    if drain:
        sim.drain()
    sim.observe_metrics()
    return sim.report()
