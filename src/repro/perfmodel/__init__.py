"""Cycle-level buffered-switch performance model.

What the routing core *admits*, this package *delivers*: wormhole lanes
per inter-stage link, bounded per-lane flit queues with backpressure,
and an optional TDM frame mode driven by the conflict colouring.  See
:mod:`repro.perfmodel.model` for the switching discipline and
:mod:`repro.perfmodel.capacity` for the serve-layer attachment.
"""

from repro.perfmodel.capacity import DeliveryModel
from repro.perfmodel.model import (
    CycleSim,
    LaneQueue,
    LinkModel,
    PerfModelConfig,
    simulate_delivery,
)
from repro.perfmodel.report import PerfReport

__all__ = [
    "PerfModelConfig",
    "LaneQueue",
    "LinkModel",
    "CycleSim",
    "PerfReport",
    "DeliveryModel",
    "simulate_delivery",
]
