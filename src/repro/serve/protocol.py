"""Wire-level request/response types of the conference service.

The service speaks a small session-oriented protocol: a client opens a
conference (a member set), may grow or shrink it while it runs, and
eventually closes it.  Every operation is a :class:`SessionRequest`
dropped into the admission queue and answered — possibly several ticks
later — by a :class:`ServiceResponse`.

Responses implement the shared result contract (``ok`` / ``reason`` /
``as_dict``) declared by :data:`repro.api.Result`, so the CLI renders
them through the same serializer as
:class:`~repro.core.network.RealizationResult` and healing
:class:`~repro.core.healing.SubmitOutcome` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any

__all__ = ["Priority", "RequestKind", "SessionRequest", "ServiceResponse"]


class Priority(IntEnum):
    """Admission-queue lane of a request (higher drains first)."""

    BULK = 0
    NORMAL = 1
    INTERACTIVE = 2


class RequestKind:
    """The four session-lifecycle operations (plain string constants)."""

    OPEN = "open"
    JOIN = "join"
    LEAVE = "leave"
    CLOSE = "close"

    #: Operations that only ever release or reshape held resources; the
    #: backpressure layer never sheds these (dropping a close would leak
    #: the very capacity the queue is starved for).
    CONTROL = frozenset({LEAVE, CLOSE})
    ALL = frozenset({OPEN, JOIN, LEAVE, CLOSE})


@dataclass(frozen=True)
class SessionRequest:
    """One queued session operation.

    ``members`` is the full member set for ``open``, and the ports being
    added/removed for ``join``/``leave``; ``close`` ignores it.
    ``session_id`` is ``None`` only for ``open`` (the service assigns
    one).  ``submitted_at`` is service (virtual) time — admission
    latency is measured against it.
    """

    kind: str
    request_id: int
    members: tuple[int, ...] = ()
    session_id: "int | None" = None
    priority: Priority = Priority.NORMAL
    submitted_at: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in RequestKind.ALL:
            raise ValueError(f"unknown request kind {self.kind!r}")
        if self.kind == RequestKind.OPEN:
            if self.session_id is not None:
                raise ValueError("open requests must not carry a session id")
            if len(self.members) < 2:
                raise ValueError("a conference needs at least 2 members")
        elif self.session_id is None:
            raise ValueError(f"{self.kind} requests need a session id")
        if self.kind in (RequestKind.JOIN, RequestKind.LEAVE) and not self.members:
            raise ValueError(f"{self.kind} requests need at least one port")

    @property
    def size(self) -> int:
        """Number of ports the request touches (shed-largest's yardstick)."""
        return len(self.members)


@dataclass(frozen=True)
class ServiceResponse:
    """The service's answer to one :class:`SessionRequest`.

    ``status`` is the terminal disposition: ``"admitted"``, ``"applied"``
    (membership change), ``"closed"``, ``"rejected"`` (admission denied
    after routing), ``"shed"`` (load-shedding evicted it before
    routing), or ``"error"`` (malformed request, e.g. unknown session).
    ``reason`` is ``None`` exactly when ``ok`` is true.
    """

    ok: bool
    status: str
    kind: str
    request_id: int
    session_id: "int | None" = None
    reason: "str | None" = None
    submitted_at: float = 0.0
    completed_at: float = 0.0
    batch_seq: "int | None" = None
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        """Queue + admission latency in service (virtual) time units."""
        return self.completed_at - self.submitted_at

    def __bool__(self) -> bool:
        return self.ok

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view (the shared result-serializer contract)."""
        return {
            "kind": "service_response",
            "ok": self.ok,
            "status": self.status,
            "request": self.kind,
            "request_id": self.request_id,
            "session_id": self.session_id,
            "reason": self.reason,
            "latency": self.latency,
            **({"detail": dict(self.detail)} if self.detail else {}),
        }
