"""The online conference service layer.

Everything needed to run a fabric as a long-lived server: the
session-oriented protocol (:mod:`repro.serve.protocol`), session
lifecycle tracking (:mod:`repro.serve.session`), bounded admission
queueing with load shedding (:mod:`repro.serve.backpressure`), per-tick
batching (:mod:`repro.serve.batcher`), the service itself
(:mod:`repro.serve.service`), and the seeded churn benchmark
(:mod:`repro.serve.bench`).
"""

from repro.serve.backpressure import AdmissionQueue, QueueStats, ShedPolicy
from repro.serve.batcher import Batcher, BatchReport
from repro.serve.bench import ServeBenchReport, run_serve_bench
from repro.serve.protocol import Priority, RequestKind, ServiceResponse, SessionRequest
from repro.serve.service import FabricService, ServiceStats
from repro.serve.session import Session, SessionState, SessionTable

__all__ = [
    "AdmissionQueue",
    "QueueStats",
    "ShedPolicy",
    "Batcher",
    "BatchReport",
    "ServeBenchReport",
    "run_serve_bench",
    "Priority",
    "RequestKind",
    "ServiceResponse",
    "SessionRequest",
    "FabricService",
    "ServiceStats",
    "Session",
    "SessionState",
    "SessionTable",
]
