"""Per-tick batching of queued session requests.

Admitting requests one at a time pays the full routing overhead —
fault-set snapshot, cache lookup, ledger bookkeeping — per request.
The service instead accumulates arrivals between ticks and admits each
tick's backlog in **one pass**: the batch is drained from the queue in
service order (control first, then priority lanes), executed back to
back against a single fault-set snapshot and a shared
:class:`~repro.parallel.cache.RouteCache`, and answered together.  One
pass per tick amortizes the fixed cost across the whole batch and keeps
admission decisions deterministic — batch composition depends only on
what was queued when the tick fired, never on wall-clock races.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.serve.backpressure import AdmissionQueue
from repro.serve.protocol import RequestKind, ServiceResponse, SessionRequest

__all__ = ["BatchReport", "Batcher"]


@dataclass
class BatchReport:
    """What one admission pass did."""

    seq: int
    time: float
    size: int
    outcomes: "Counter[str]" = field(default_factory=Counter)
    latencies: list[float] = field(default_factory=list)

    @property
    def admitted(self) -> int:
        """Requests that ended in a successful status this pass."""
        return self.outcomes["admitted"] + self.outcomes["applied"] + self.outcomes["closed"]

    def as_dict(self) -> dict:
        """A JSON-ready view of the pass."""
        return {
            "seq": self.seq,
            "time": self.time,
            "size": self.size,
            "outcomes": dict(sorted(self.outcomes.items())),
            "mean_latency": (
                sum(self.latencies) / len(self.latencies) if self.latencies else 0.0
            ),
        }


class Batcher:
    """Drains the queue into bounded batches and runs the admission pass."""

    def __init__(self, *, max_batch: int = 64):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._max_batch = max_batch
        self._seq = 0

    @property
    def max_batch(self) -> int:
        """Upper bound on requests admitted per tick."""
        return self._max_batch

    @property
    def batches_run(self) -> int:
        """Admission passes executed so far."""
        return self._seq

    def next_batch(self, queue: AdmissionQueue) -> list[SessionRequest]:
        """This tick's workload, in service order (may be empty)."""
        return queue.take(self._max_batch)

    @staticmethod
    def open_requests(batch: list[SessionRequest]) -> list[SessionRequest]:
        """The OPEN requests of one batch, in service order.

        This is the prefetch set of the admission pass: every one of
        these will ask the routing engine for a route, so the service
        primes them through the columnar kernel in one
        ``route_batch`` call before :meth:`execute` replays the
        per-request decisions.
        """
        return [request for request in batch if request.kind == RequestKind.OPEN]

    def execute(
        self,
        batch: list[SessionRequest],
        handler: "Callable[[SessionRequest, int], ServiceResponse]",
        now: float,
    ) -> "tuple[BatchReport, list[ServiceResponse]]":
        """Run one admission pass over ``batch``.

        ``handler`` maps each request (plus the batch sequence number)
        to its response; the report aggregates outcomes and latencies.
        """
        seq = self._seq
        self._seq += 1
        report = BatchReport(seq=seq, time=now, size=len(batch))
        responses: list[ServiceResponse] = []
        for request in batch:
            response = handler(request, seq)
            report.outcomes[response.status] += 1
            report.latencies.append(response.latency)
            responses.append(response)
        return report, responses
