"""The online conference service: batched admission over a healing fabric.

:class:`FabricService` turns the batch-experiment stack into a
long-running server.  It wraps one
:class:`~repro.core.healing.SelfHealingController` and layers on top of
it:

* **Session lifecycle** — ``open_conference`` / ``join`` / ``leave`` /
  ``close`` (async coroutines; ``submit_*`` are the synchronous
  tick-driven equivalents), tracked by a
  :class:`~repro.serve.session.SessionTable`.
* **Batched admission** — requests accumulate in the bounded
  :class:`~repro.serve.backpressure.AdmissionQueue` between ticks and
  are admitted by the :class:`~repro.serve.batcher.Batcher` in one pass
  per tick, amortizing routing cost and keeping decisions independent
  of wall-clock races.
* **Backpressure** — a full queue sheds load by policy
  (:class:`~repro.serve.backpressure.ShedPolicy`); denied opens retry
  through the same queue with the
  :class:`~repro.core.healing.RetryPolicy` backoff.
* **Self-healing under live faults** — a fault timeline attached via
  :meth:`attach_faults` drives the healing ladder mid-session; sessions
  dropped by a fault are restored by the controller's retry queue and,
  if that gives up, *re-queued* by the service at interactive priority —
  a session is never lost while the service runs (the churn acceptance
  test asserts exactly this).
* **Graceful drain** — :meth:`drain` stops new work and ticks until the
  backlog and every in-flight restore settles; :meth:`shutdown` then
  closes the remaining sessions.

Time is **virtual**: the service owns a deterministic
:class:`~repro.sim.engine.EventLoop` advanced ``tick_interval`` per
tick, so a seeded workload produces byte-identical metrics on every
run.  The asyncio facade only paces ticks and parks callers on
futures — it never influences admission decisions.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.core.admission import AdmissionDenied
from repro.core.churn import ChurnLimitExceeded, ChurnPolicy
from repro.core.conference import Conference
from repro.core.healing import RetryPolicy, SelfHealingController
from repro.core.network import ConferenceNetwork
from repro.core.routing import UnroutableError
from repro.perfmodel.capacity import DeliveryModel, validate_capacity_model
from repro.serve.backpressure import AdmissionQueue, ShedPolicy
from repro.serve.batcher import Batcher, BatchReport
from repro.serve.protocol import Priority, RequestKind, ServiceResponse, SessionRequest
from repro.serve.session import SessionState, SessionTable
from repro.sim.engine import EventLoop
from repro.sim.faults import FaultInjector
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - annotations only
    import numpy as np

    from repro.obs.flight import FlightRecorder
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.slo import SLOEvaluator
    from repro.obs.trace import Tracer
    from repro.parallel.cache import RouteCache
    from repro.perfmodel.model import PerfModelConfig
    from repro.sim.faults import FaultTransition

__all__ = ["ServiceStats", "FabricService"]

#: Admission-latency buckets in virtual-time units (ticks by default).
SERVE_LATENCY_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)
#: Batch-size buckets for the per-tick admission pass.
SERVE_BATCH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

CompletionCallback = Callable[[ServiceResponse], None]


@dataclass
class ServiceStats:
    """Lifetime accounting of one :class:`FabricService`."""

    ticks: int = 0
    offered: int = 0
    admitted: int = 0
    applied: int = 0
    closed: int = 0
    rejected: int = 0
    shed: int = 0
    requeues: int = 0
    lost_sessions: int = 0
    latency_sum: float = 0.0
    latency_max: float = 0.0
    outcomes: dict[str, int] = field(default_factory=dict)

    def record(self, response: ServiceResponse) -> None:
        """Fold one terminal response into the tallies."""
        self.outcomes[response.status] = self.outcomes.get(response.status, 0) + 1
        if response.status == "admitted":
            self.admitted += 1
            self.latency_sum += response.latency
            self.latency_max = max(self.latency_max, response.latency)
        elif response.status == "applied":
            self.applied += 1
        elif response.status == "closed":
            self.closed += 1
        elif response.status == "shed":
            self.shed += 1
        elif response.status in ("rejected", "error"):
            self.rejected += 1

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view for reports and the CLI."""
        return {
            "ticks": self.ticks,
            "offered": self.offered,
            "admitted": self.admitted,
            "applied": self.applied,
            "closed": self.closed,
            "rejected": self.rejected,
            "shed": self.shed,
            "requeues": self.requeues,
            "lost_sessions": self.lost_sessions,
            "mean_admission_latency": (
                self.latency_sum / self.admitted if self.admitted else 0.0
            ),
            "max_admission_latency": self.latency_max,
            "outcomes": dict(sorted(self.outcomes.items())),
        }


class FabricService:
    """A long-running conference service over one fabric.

    All configuration is keyword-only and uses the library-wide spelling
    (``route_cache=``, ``tracer=``, ``metrics=``, ``rng=``).  ``retry``
    governs both the healing controller's restore backoff and the
    service's own re-admission backoff for denied opens.  ``protection``
    (plan budget F, default 0 = reactive) turns on the healing
    controller's precomputed fast failover: faults on protected links
    switch sessions to stored backup plans in O(1) inside the same tick,
    with decisions bit-identical to the reactive service.  ``churn`` (a
    :class:`~repro.core.churn.ChurnPolicy`) governs how ``join`` /
    ``leave`` reshape live routes — incrementally by default, with
    full reroute as the configured fallback — and the applied
    response's ``detail`` carries the disruption diff.
    """

    def __init__(
        self,
        network: ConferenceNetwork,
        *,
        retry: "RetryPolicy | None" = None,
        rng: "int | np.random.Generator | None" = None,
        route_cache: "RouteCache | None" = None,
        protection: int = 0,
        churn: "ChurnPolicy | None" = None,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        slo: "SLOEvaluator | None" = None,
        flight: "FlightRecorder | None" = None,
        queue_capacity: int = 1024,
        shed_policy: "ShedPolicy | str" = ShedPolicy.REJECT_NEWEST,
        max_batch: int = 64,
        tick_interval: float = 1.0,
        capacity_model: str = "abstract",
        perf: "PerfModelConfig | None" = None,
    ):
        check_positive(tick_interval, "tick_interval")
        validate_capacity_model(capacity_model)
        base = ensure_rng(rng)
        healing_rng, self._rng = base.spawn(2)
        self._network = network
        self._healing = SelfHealingController(
            network,
            retry=retry,
            rng=healing_rng,
            route_cache=route_cache,
            protection=protection,
            churn=churn,
            tracer=tracer,
            metrics=metrics,
        )
        self._retry = retry
        self._loop = EventLoop(tracer=tracer)
        self._queue = AdmissionQueue(queue_capacity, shed_policy)
        self._batcher = Batcher(max_batch=max_batch)
        self._sessions = SessionTable()
        self._tick_interval = tick_interval
        self.tracer = tracer
        self._metrics = metrics
        # Live-health observation (see repro.obs.slo / repro.obs.flight):
        # both default to None and every touch point is gated on that, so
        # the SLO engine is bit-transparent to admission and routing.
        self._slo = slo
        self._flight = flight
        self._slo_recovery_seen = 0  # healing recovery samples consumed
        # Causal parents captured at submission time (cluster spans), so
        # spans opened when the queued request finally executes still
        # link into the submitting operation's trace.
        self._trace_parent: dict[int, int] = {}
        self._slo_prev: dict[str, int] = {"offered": 0, "shed": 0, "rejected": 0}
        self.stats = ServiceStats()
        self._state = "running"  # running -> draining -> closed
        self._next_request_id = 0
        self._session_of_request: dict[int, int] = {}
        self._attempts: dict[int, int] = {}  # open request -> denials so far
        self._restores: set[int] = set()  # request ids re-queued after a drop
        self._completions: dict[int, CompletionCallback] = {}
        self._inflight: set[int] = set()  # queued or backoff-scheduled requests
        self._injector: "FaultInjector | None" = None
        # The buffered capacity model is a per-tick observation overlay
        # (see repro.perfmodel.capacity): in the default "abstract" mode
        # nothing is built and no tick-path branch is taken beyond one
        # None check, keeping behaviour byte-identical.
        self._capacity_model = capacity_model
        self._delivery = (
            DeliveryModel(perf, metrics=metrics)
            if capacity_model == "buffered"
            else None
        )
        self._healing.on_drop = self._on_drop
        self._healing.on_restore = self._on_restore
        self._healing.on_lost = self._on_lost

    # -- introspection -----------------------------------------------------

    @property
    def network(self) -> ConferenceNetwork:
        """The conference network being served."""
        return self._network

    @property
    def healing(self) -> SelfHealingController:
        """The fault-reactive controller underneath the service."""
        return self._healing

    @property
    def protection(self) -> int:
        """The healing controller's backup-plan budget F (0 = reactive)."""
        return self._healing.protection

    @property
    def churn_policy(self) -> ChurnPolicy:
        """How join/leave reshape live routes (incremental vs full)."""
        return self._healing.churn_policy

    @property
    def capacity_model(self) -> str:
        """``"abstract"`` (admission ledger only) or ``"buffered"``."""
        return self._capacity_model

    @property
    def delivery(self) -> "DeliveryModel | None":
        """The buffered-switch delivery overlay (``None`` in abstract mode)."""
        return self._delivery

    @property
    def slo(self) -> "SLOEvaluator | None":
        """The attached SLO evaluator, or ``None``."""
        return self._slo

    @property
    def flight(self) -> "FlightRecorder | None":
        """The attached flight recorder, or ``None``."""
        return self._flight

    @property
    def sessions(self) -> SessionTable:
        """The session registry (read-only use, please)."""
        return self._sessions

    @property
    def queue(self) -> AdmissionQueue:
        """The bounded admission queue."""
        return self._queue

    @property
    def now(self) -> float:
        """Current service (virtual) time."""
        return self._loop.now

    @property
    def state(self) -> str:
        """``running``, ``draining``, or ``closed``."""
        return self._state

    @property
    def tick_interval(self) -> float:
        """Virtual time advanced per tick."""
        return self._tick_interval

    # -- fault wiring ------------------------------------------------------

    def attach_faults(
        self, timeline: "tuple[FaultTransition, ...] | list[FaultTransition]"
    ) -> FaultInjector:
        """Schedule a fault timeline against the service's clock.

        Transitions fire during the tick whose window covers their time;
        the healing ladder (and, for unlucky sessions, the requeue path)
        reacts inside the same tick.
        """
        if self._injector is not None:
            raise RuntimeError("a fault timeline is already attached")
        injector = FaultInjector(self._network.topology, script=timeline, tracer=self.tracer)
        self._healing.attach(injector)
        injector.start(self._loop)
        self._injector = injector
        return injector

    # -- synchronous submission (tick-driven mode) -------------------------

    def submit_open(
        self,
        members,
        *,
        priority: Priority = Priority.NORMAL,
        on_complete: "CompletionCallback | None" = None,
    ) -> int:
        """Queue a conference open; returns the session id.

        The terminal :class:`ServiceResponse` arrives via ``on_complete``
        (immediately when backpressure bounces the request, otherwise
        after the admitting tick).
        """
        members = tuple(int(p) for p in members)
        session = self._sessions.create(members, priority, self.now)
        request = self._make_request(
            RequestKind.OPEN, members=members, priority=priority
        )
        self._session_of_request[request.request_id] = session.session_id
        self._submit(request, session.session_id, on_complete)
        return session.session_id

    def submit_join(
        self,
        session_id: int,
        ports,
        *,
        priority: Priority = Priority.NORMAL,
        on_complete: "CompletionCallback | None" = None,
    ) -> int:
        """Queue a membership grow; returns the request id."""
        request = self._make_request(
            RequestKind.JOIN,
            members=tuple(int(p) for p in ports),
            session_id=session_id,
            priority=priority,
        )
        self._submit(request, session_id, on_complete)
        return request.request_id

    def submit_leave(
        self,
        session_id: int,
        ports,
        *,
        on_complete: "CompletionCallback | None" = None,
    ) -> int:
        """Queue a membership shrink (control lane; never shed)."""
        request = self._make_request(
            RequestKind.LEAVE,
            members=tuple(int(p) for p in ports),
            session_id=session_id,
        )
        self._submit(request, session_id, on_complete)
        return request.request_id

    def submit_close(
        self, session_id: int, *, on_complete: "CompletionCallback | None" = None
    ) -> int:
        """Queue a session close (control lane; never shed)."""
        request = self._make_request(RequestKind.CLOSE, session_id=session_id)
        self._submit(request, session_id, on_complete)
        return request.request_id

    def _make_request(self, kind: str, **fields) -> SessionRequest:
        request = SessionRequest(
            kind=kind,
            request_id=self._next_request_id,
            submitted_at=self.now,
            **fields,
        )
        self._next_request_id += 1
        return request

    def _submit(
        self,
        request: SessionRequest,
        session_id: "int | None",
        on_complete: "CompletionCallback | None",
    ) -> "ServiceResponse | None":
        if on_complete is not None:
            self._completions[request.request_id] = on_complete
        self.stats.offered += 1
        self._count_request(request.kind, "offered")
        if self._state == "closed":
            return self._reject(request, session_id, reason="service-closed")
        if self._state == "draining" and request.kind not in RequestKind.CONTROL:
            return self._reject(request, session_id, reason="draining")
        accepted, shed = self._queue.offer(request)
        for victim in shed:
            self._shed(victim)
        if not accepted:
            return self._reject(request, session_id, reason="backpressure")
        self._inflight.add(request.request_id)
        if self.tracer is not None:
            parent = self.tracer.current_parent()
            if parent is not None:
                self._trace_parent[request.request_id] = parent
        if self.tracer is not None:
            self.tracer.event(
                "serve.enqueue",
                t=self.now,
                rid=request.request_id,
                op=request.kind,
                depth=self._queue.depth,
            )
        return None

    def _reject(
        self, request: SessionRequest, session_id: "int | None", reason: str
    ) -> ServiceResponse:
        if request.kind == RequestKind.OPEN and session_id is not None:
            self._sessions.require(session_id).transition(SessionState.REJECTED, self.now)
        return self._complete(request, "rejected", session_id, reason=reason)

    def _shed(self, victim: SessionRequest) -> None:
        """A queued request evicted by the shedding policy."""
        sid = self._session_of_request.get(victim.request_id, victim.session_id)
        self._inflight.discard(victim.request_id)
        self._count_shed()
        if victim.request_id in self._restores:
            # Never lose a fault-dropped session to load shedding: put
            # the restore back on backoff instead of a terminal verdict.
            self._backoff_restore(victim)
            return
        if victim.kind == RequestKind.OPEN and sid is not None:
            self._sessions.require(sid).transition(SessionState.REJECTED, self.now)
        self._complete(victim, "shed", sid, reason=f"shed:{self._queue.policy.value}")

    # -- the tick ----------------------------------------------------------

    def tick(self) -> BatchReport:
        """Advance one service interval and run its admission pass.

        Order within a tick: the virtual clock advances (firing fault
        transitions and healing/backoff retries that came due), then the
        queued batch is admitted in one pass, then gauges are observed.
        """
        if self._state == "closed":
            raise RuntimeError("cannot tick a closed service")
        self._loop.run(until=self.now + self._tick_interval)
        batch = self._batcher.next_batch(self._queue)
        sid = None
        if self.tracer is not None and batch:
            sid = self.tracer.span_open("serve.batch", t=self.now, size=len(batch))
        self._prime_batch(batch)
        report, _ = self._batcher.execute(batch, self._handle, self.now)
        if sid is not None:
            self.tracer.span_close(
                sid, t=self.now, admitted=report.admitted, outcomes=dict(report.outcomes)
            )
        self._reconcile_degraded()
        self.stats.ticks += 1
        self._observe(report)
        if self._delivery is not None:
            healing = self._healing
            self._delivery.on_tick(
                [healing.route_of(cid) for cid in healing.live_conferences]
            )
        if self._slo is not None:
            self._slo_tick()
        return report

    def _prime_batch(self, batch: "list[SessionRequest]") -> None:
        """Route this tick's OPEN backlog in one columnar kernel pass.

        The per-request admission walk in ``_handle`` then consumes the
        precomputed routes instead of routing one conference at a time;
        decisions are unchanged (the kernel is byte-identical to the
        sequential path) — only the routing work is batched.
        """
        conferences = []
        for request in self._batcher.open_requests(batch):
            session = self._sessions.get(self._session_of_request[request.request_id])
            if session is None or session.state is SessionState.CLOSED:
                continue  # cancelled while queued: _handle_open rejects it
            conferences.append(
                Conference.of(session.members, conference_id=session.conference_id)
            )
        if conferences:
            self._healing.prime_batch(conferences, include_healthy=True)

    def _handle(self, request: SessionRequest, batch_seq: int) -> ServiceResponse:
        self._inflight.discard(request.request_id)
        handler = {
            RequestKind.OPEN: self._handle_open,
            RequestKind.JOIN: self._handle_resize,
            RequestKind.LEAVE: self._handle_resize,
            RequestKind.CLOSE: self._handle_close,
        }[request.kind]
        if self.tracer is not None:
            # Re-establish the causal parent captured at submission so
            # the admission spans parent to the cluster-level operation.
            with self.tracer.context(self._trace_parent.get(request.request_id)):
                return handler(request, batch_seq)
        return handler(request, batch_seq)

    def _handle_open(self, request: SessionRequest, batch_seq: int) -> ServiceResponse:
        session = self._sessions.require(self._session_of_request[request.request_id])
        if session.state is SessionState.CLOSED:
            # Client closed while the open (or a restore) was queued.
            return self._complete(
                request, "rejected", session.session_id,
                reason="cancelled", batch_seq=batch_seq,
            )
        conference = Conference.of(session.members, conference_id=session.conference_id)
        try:
            route = self._healing.try_join(conference, now=self.now)
        except AdmissionDenied as denial:
            return self._denied_open(request, session, denial, batch_seq)
        restored = request.request_id in self._restores
        self._restores.discard(request.request_id)
        self._attempts.pop(request.request_id, None)
        session.transition(SessionState.ACTIVE, self.now)
        if session.conference_id in self._healing.degraded_conferences:
            session.transition(SessionState.DEGRADED, self.now)
        if restored:
            session.generation += 1
        return self._complete(
            request,
            "admitted",
            session.session_id,
            batch_seq=batch_seq,
            detail={"links": route.n_links, "restored": restored},
        )

    def _denied_open(self, request, session, denial, batch_seq) -> ServiceResponse:
        if request.request_id in self._restores:
            # Restores never give up; back off and try again.
            self._backoff_restore(request)
            self._inflight.add(request.request_id)
            return ServiceResponse(
                ok=False, status="requeued", kind=request.kind,
                request_id=request.request_id, session_id=session.session_id,
                reason=denial.reason, submitted_at=request.submitted_at,
                completed_at=self.now, batch_seq=batch_seq,
            )
        attempt = self._attempts.get(request.request_id, 0)
        if self._retry is not None and attempt < self._retry.max_retries:
            self._attempts[request.request_id] = attempt + 1
            delay = self._retry.delay(attempt, self._rng)
            self._inflight.add(request.request_id)
            self._loop.schedule(delay, lambda lp, r=request: self._reoffer(r))
            self._count_request(request.kind, "retry")
            return ServiceResponse(
                ok=False, status="requeued", kind=request.kind,
                request_id=request.request_id, session_id=session.session_id,
                reason=denial.reason, submitted_at=request.submitted_at,
                completed_at=self.now, batch_seq=batch_seq,
            )
        self._attempts.pop(request.request_id, None)
        session.transition(SessionState.REJECTED, self.now)
        return self._complete(
            request, "rejected", session.session_id,
            reason=denial.reason, batch_seq=batch_seq,
        )

    def _reoffer(self, request: SessionRequest) -> None:
        """A backoff re-admission coming due: rejoin the queue."""
        self._inflight.discard(request.request_id)
        accepted, shed = self._queue.offer(request)
        for victim in shed:
            self._shed(victim)
        if accepted:
            self._inflight.add(request.request_id)
            return
        if request.request_id in self._restores:
            self._backoff_restore(request)  # keep trying, never lose it
            return
        sid = self._session_of_request.get(request.request_id)
        self._reject(request, sid, reason="backpressure")

    def _backoff_restore(self, request: SessionRequest) -> None:
        self._inflight.add(request.request_id)
        self._loop.schedule(
            self._tick_interval, lambda lp, r=request: self._reoffer(r)
        )

    def _handle_resize(self, request: SessionRequest, batch_seq: int) -> ServiceResponse:
        session = self._sessions.get(request.session_id)
        if session is None:
            return self._complete(
                request, "error", request.session_id,
                reason="unknown-session", batch_seq=batch_seq,
            )
        if session.state not in (SessionState.ACTIVE, SessionState.DEGRADED):
            return self._complete(
                request, "rejected", session.session_id,
                reason=f"session-{session.state.value}", batch_seq=batch_seq,
            )
        current = set(session.members)
        ports = set(request.members)
        if request.kind == RequestKind.JOIN:
            clash = current & ports
            if clash:
                return self._complete(
                    request, "error", session.session_id,
                    reason="already-a-member", batch_seq=batch_seq,
                )
            wanted = current | ports
        else:
            missing = ports - current
            if missing:
                return self._complete(
                    request, "error", session.session_id,
                    reason="not-a-member", batch_seq=batch_seq,
                )
            wanted = current - ports
            if len(wanted) < 2:
                return self._complete(
                    request, "rejected", session.session_id,
                    reason="too-few-members", batch_seq=batch_seq,
                )
        try:
            churn = self._healing.resize(
                session.conference_id, sorted(wanted), now=self.now
            )
        except (AdmissionDenied, UnroutableError, ChurnLimitExceeded) as exc:
            reason = getattr(exc, "reason", "fault")
            return self._complete(
                request, "rejected", session.session_id,
                reason=reason, batch_seq=batch_seq,
            )
        if request.kind == RequestKind.JOIN:
            for port in sorted(ports):
                session.add_member(port, self.now)
        else:
            for port in sorted(ports):
                session.remove_member(port, self.now)
        if session.conference_id in self._healing.degraded_conferences:
            session.transition(SessionState.DEGRADED, self.now)
        else:
            session.transition(SessionState.ACTIVE, self.now)
        return self._complete(
            request, "applied", session.session_id,
            batch_seq=batch_seq,
            detail={
                "members": len(session.members),
                "links": churn.after.n_links,
                "links_reconfigured": churn.reconfigured_links,
                "hitless": churn.hitless,
                "mode": churn.mode,
                "taps_moved": len(churn.taps_moved),
                "drift_links": churn.drift_links,
            },
        )

    def _handle_close(self, request: SessionRequest, batch_seq: int) -> ServiceResponse:
        session = self._sessions.get(request.session_id)
        if session is None:
            return self._complete(
                request, "error", request.session_id,
                reason="unknown-session", batch_seq=batch_seq,
            )
        if session.state in (SessionState.CLOSED, SessionState.REJECTED, SessionState.LOST):
            return self._complete(
                request, "error", session.session_id,
                reason="already-closed", batch_seq=batch_seq,
            )
        if session.state in (SessionState.ACTIVE, SessionState.DEGRADED):
            self._healing.leave(session.conference_id, now=self.now)
        # QUEUED and DOWN hold no fabric resources; the pending open (or
        # in-flight restore) sees CLOSED when it surfaces and cancels.
        session.transition(SessionState.CLOSED, self.now)
        return self._complete(request, "closed", session.session_id, batch_seq=batch_seq)

    # -- healing hooks -----------------------------------------------------

    def _on_drop(self, loop, conference) -> None:
        session = self._sessions.get(conference.conference_id)
        if session is not None and session.live:
            session.transition(SessionState.DOWN, loop.now)

    def _on_restore(self, loop, route) -> None:
        session = self._sessions.get(route.conference.conference_id)
        if session is None:
            return
        if session.state is SessionState.CLOSED:
            # Closed while down: the controller restored a conference
            # nobody wants any more — tear it straight back down.
            self._healing.leave(session.conference_id)
            return
        session.transition(SessionState.ACTIVE, loop.now)
        if session.conference_id in self._healing.degraded_conferences:
            session.transition(SessionState.DEGRADED, loop.now)
        session.generation += 1

    def _on_lost(self, loop, conference, cause: str) -> None:
        """The controller gave up on a dropped conference: requeue it."""
        session = self._sessions.get(conference.conference_id)
        if session is None or session.state is not SessionState.DOWN:
            return
        session.requeues += 1
        self.stats.requeues += 1
        self._count_request(RequestKind.OPEN, "requeued")
        request = self._make_request(
            RequestKind.OPEN, members=session.members, priority=Priority.INTERACTIVE
        )
        self._session_of_request[request.request_id] = session.session_id
        self._restores.add(request.request_id)
        if self.tracer is not None:
            self.tracer.event(
                "serve.requeue", t=loop.now, session=session.session_id, cause=cause
            )
        self._reoffer(request)

    # -- completion plumbing -----------------------------------------------

    def _complete(
        self,
        request: SessionRequest,
        status: str,
        session_id: "int | None",
        reason: "str | None" = None,
        batch_seq: "int | None" = None,
        detail: "dict | None" = None,
    ) -> ServiceResponse:
        response = ServiceResponse(
            ok=status in ("admitted", "applied", "closed"),
            status=status,
            kind=request.kind,
            request_id=request.request_id,
            session_id=session_id,
            reason=reason,
            submitted_at=request.submitted_at,
            completed_at=self.now,
            batch_seq=batch_seq,
            detail=detail or {},
        )
        self._inflight.discard(request.request_id)
        self._session_of_request.pop(request.request_id, None)
        self._restores.discard(request.request_id)
        self._trace_parent.pop(request.request_id, None)
        self.stats.record(response)
        self._count_request(request.kind, status)
        if self._metrics is not None and status == "admitted":
            self._metrics.histogram(
                "repro_serve_admission_latency",
                "Queue + admission latency of admitted opens, in virtual time",
                buckets=SERVE_LATENCY_BUCKETS,
            ).observe(response.latency)
        if self._slo is not None and status == "admitted" and "admission_latency" in self._slo:
            self._slo.observe("admission_latency", response.latency, now=self.now)
        callback = self._completions.pop(request.request_id, None)
        if callback is not None:
            callback(response)
        return response

    # -- state reconciliation & telemetry ----------------------------------

    def _reconcile_degraded(self) -> None:
        degraded = self._healing.degraded_conferences
        for session in self._sessions.live():
            if session.state is SessionState.ACTIVE and session.conference_id in degraded:
                session.transition(SessionState.DEGRADED, self.now)
            elif session.state is SessionState.DEGRADED and session.conference_id not in degraded:
                session.transition(SessionState.ACTIVE, self.now)

    def _count_request(self, kind: str, status: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "repro_serve_requests_total", "Session requests by kind and outcome"
            ).inc(kind=kind, status=status)

    def _count_shed(self) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "repro_serve_shed_total", "Requests evicted by load shedding, by policy"
            ).inc(policy=self._queue.policy.value)

    def _observe(self, report: BatchReport) -> None:
        reg = self._metrics
        if reg is None:
            return
        depth = reg.gauge("repro_serve_queue_depth", "Admission-queue depth at tick end")
        depth.set(self._queue.depth)
        peak = reg.gauge("repro_serve_queue_peak", "Peak admission-queue depth observed")
        peak.set_max(self._queue.stats.peak_depth)
        reg.histogram(
            "repro_serve_batch_size",
            "Requests admitted per tick in one pass",
            buckets=SERVE_BATCH_BUCKETS,
        ).observe(report.size)
        sessions = reg.gauge("repro_serve_sessions", "Sessions by lifecycle state")
        for state, count in self._sessions.counts().items():
            sessions.set(count, state=state)

    def _slo_tick(self) -> None:
        """Feed this tick's health signals into the SLO engine.

        Pure observation: reads session counts, service-stat deltas and
        the healing controller's recovery samples, then evaluates every
        objective.  Nothing here feeds back into admission or routing.
        """
        slo, now = self._slo, self.now
        if "availability" in slo:
            counts = self._sessions.counts()
            down = counts.get("down", 0)
            live = counts.get("active", 0) + counts.get("degraded", 0)
            if live or down:
                slo.record("availability", good=live, bad=down, now=now)
        if "recovery" in slo:
            samples = self._healing.stats.recovery_samples
            for ticks in samples[self._slo_recovery_seen:]:
                slo.observe("recovery", ticks, now=now)
            self._slo_recovery_seen = len(samples)
        if "shed_rate" in slo:
            offered = self.stats.offered
            dropped = self.stats.shed + self.stats.rejected
            d_offered = offered - self._slo_prev["offered"]
            d_dropped = dropped - (self._slo_prev["shed"] + self._slo_prev["rejected"])
            if d_offered:
                slo.record(
                    "shed_rate",
                    good=max(0, d_offered - d_dropped),
                    bad=d_dropped,
                    now=now,
                )
            self._slo_prev.update(
                offered=offered, shed=self.stats.shed, rejected=self.stats.rejected
            )
        status = slo.evaluate(now)
        if self._flight is not None:
            if self._metrics is not None:
                self._flight.sample_metrics(self._metrics, now)
            self._flight.note_slo(now, status)

    # -- drain / shutdown --------------------------------------------------

    def drain(self, max_ticks: int = 100_000) -> int:
        """Stop accepting new work and tick until the backlog settles.

        Returns the number of ticks it took.  ``RuntimeError`` if the
        backlog (queued requests, backoff re-admissions, in-flight
        restores) has not settled within ``max_ticks`` — a signal the
        fault timeline left the fabric unroutable.
        """
        if self._state == "closed":
            raise RuntimeError("cannot drain a closed service")
        self._state = "draining"
        ticks = 0
        while self._inflight or len(self._queue) or self._healing.down_conferences:
            if ticks >= max_ticks:
                raise RuntimeError(
                    f"drain did not settle within {max_ticks} ticks "
                    f"({len(self._inflight)} in flight, {len(self._queue)} queued, "
                    f"{len(self._healing.down_conferences)} down)"
                )
            self.tick()
            ticks += 1
        return ticks

    def shutdown(self) -> dict[str, int]:
        """Drain, close every remaining live session, and stop.

        Returns the final session tally per state.  Idempotent once
        closed; a closed service refuses new submissions and ticks.
        """
        if self._state != "closed":
            self.drain()
            for session in self._sessions.live():
                if session.state in (SessionState.ACTIVE, SessionState.DEGRADED):
                    self._healing.leave(session.conference_id, now=self.now)
                session.transition(SessionState.CLOSED, self.now)
            self._healing.finalize(self.now)
            self._state = "closed"
        return self._sessions.counts()

    # -- asyncio facade ----------------------------------------------------

    async def open_conference(
        self, members, *, priority: Priority = Priority.NORMAL
    ) -> ServiceResponse:
        """Open a conference and wait for its admission verdict."""
        future = self._future()
        self.submit_open(members, priority=priority, on_complete=self._resolve(future))
        return await future

    async def join(
        self, session_id: int, ports, *, priority: Priority = Priority.NORMAL
    ) -> ServiceResponse:
        """Grow a session's membership and wait for the verdict."""
        future = self._future()
        self.submit_join(
            session_id, ports, priority=priority, on_complete=self._resolve(future)
        )
        return await future

    async def leave(self, session_id: int, ports) -> ServiceResponse:
        """Shrink a session's membership and wait for the verdict."""
        future = self._future()
        self.submit_leave(session_id, ports, on_complete=self._resolve(future))
        return await future

    async def close(self, session_id: int) -> ServiceResponse:
        """Close a session and wait for the teardown confirmation."""
        future = self._future()
        self.submit_close(session_id, on_complete=self._resolve(future))
        return await future

    @staticmethod
    def _future() -> "asyncio.Future[ServiceResponse]":
        return asyncio.get_running_loop().create_future()

    @staticmethod
    def _resolve(future: "asyncio.Future[ServiceResponse]") -> CompletionCallback:
        def callback(response: ServiceResponse) -> None:
            if not future.done():
                future.set_result(response)

        return callback

    async def run(
        self, *, until: "float | None" = None, wall_pace: float = 0.0
    ) -> None:
        """Tick the service from a coroutine until ``until`` (virtual time).

        ``wall_pace`` seconds of real sleep separate ticks (0 merely
        yields control so client coroutines can enqueue between ticks).
        Admission decisions are untouched by pacing — time is virtual.
        """
        while self._state != "closed" and (until is None or self.now < until):
            self.tick()
            await asyncio.sleep(wall_pace)
