"""Seeded churn benchmark for the conference service.

``run_serve_bench`` drives one :class:`~repro.serve.service.FabricService`
with a synthetic session workload: Poisson conference arrivals over a
shared port pool, geometric holding times, optional mid-call membership
churn, and (optionally) a pre-generated fault timeline firing underneath
the live sessions.  Everything — arrivals, sizes, member choice, holds,
resize coverage, fault schedule — derives from one seed through spawned
RNG streams, so two runs with the same arguments produce identical
reports and **byte-identical** metrics files; the acceptance test in
``tests/serve/test_bench.py`` diffs the bytes.

The report carries the acceptance criteria directly: sessions lost
(must be zero — a fault-dropped session is requeued, never abandoned),
peak queue depth (must stay bounded by the configured capacity), and
the admission/shed/latency tallies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.churn import ChurnPolicy
from repro.core.healing import RetryPolicy
from repro.core.network import ConferenceNetwork
from repro.serve.backpressure import ShedPolicy
from repro.serve.protocol import ServiceResponse
from repro.serve.service import FabricService
from repro.serve.session import SessionState
from repro.sim.faults import FaultProcessConfig, generate_fault_timeline
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.obs.flight import FlightRecorder
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.slo import SLOEvaluator
    from repro.obs.trace import Tracer
    from repro.parallel.cache import RouteCache
    from repro.perfmodel.model import PerfModelConfig

__all__ = ["ServeBenchReport", "run_serve_bench"]


@dataclass
class ServeBenchReport:
    """Outcome of one churn run (shared ``ok``/``reason``/``as_dict`` contract)."""

    n_ports: int
    seed: int
    conferences: int  # opens actually offered
    ticks: int
    drain_ticks: int
    starved_arrivals: int  # arrivals skipped for want of free ports
    resizes: int
    fault_transitions: int
    peak_queue_depth: int
    queue_capacity: int
    shed_policy: str
    lost_sessions: int
    protection: int = 0
    recovery: dict[str, Any] = field(default_factory=dict)
    session_counts: dict[str, int] = field(default_factory=dict)
    service: dict[str, Any] = field(default_factory=dict)
    queue: dict[str, int] = field(default_factory=dict)
    #: Buffered-capacity-model delivery block; ``None`` in abstract mode
    #: and then absent from ``as_dict`` (abstract output is byte-stable
    #: across this field's introduction).
    delivery: "dict[str, Any] | None" = None

    @property
    def ok(self) -> bool:
        """Did churn sustain: nothing lost, backlog stayed bounded."""
        return self.lost_sessions == 0 and self.peak_queue_depth <= self.queue_capacity

    @property
    def reason(self) -> "str | None":
        """Why the run failed the sustain criteria (``None`` when ok)."""
        if self.lost_sessions:
            return f"{self.lost_sessions} session(s) lost"
        if self.peak_queue_depth > self.queue_capacity:
            return (
                f"queue depth {self.peak_queue_depth} exceeded "
                f"capacity {self.queue_capacity}"
            )
        return None

    @property
    def throughput(self) -> float:
        """Admitted conferences per tick."""
        admitted = self.service.get("admitted", 0)
        return admitted / self.ticks if self.ticks else 0.0

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view (the shared result-serializer contract)."""
        return {
            "kind": "serve_bench",
            "ok": self.ok,
            "reason": self.reason,
            "n_ports": self.n_ports,
            "seed": self.seed,
            "conferences": self.conferences,
            "ticks": self.ticks,
            "drain_ticks": self.drain_ticks,
            "throughput": self.throughput,
            "starved_arrivals": self.starved_arrivals,
            "resizes": self.resizes,
            "fault_transitions": self.fault_transitions,
            "peak_queue_depth": self.peak_queue_depth,
            "queue_capacity": self.queue_capacity,
            "shed_policy": self.shed_policy,
            "lost_sessions": self.lost_sessions,
            "protection": self.protection,
            "recovery": dict(self.recovery),
            "session_counts": dict(self.session_counts),
            "service": dict(self.service),
            "queue": dict(self.queue),
            **({"delivery": dict(self.delivery)} if self.delivery is not None else {}),
        }


class _PortPool:
    """Free-port bookkeeping with deterministic sampling order."""

    def __init__(self, n_ports: int):
        self._free = list(range(n_ports))  # kept sorted

    def __len__(self) -> int:
        return len(self._free)

    def grab(self, rng, count: int) -> "tuple[int, ...]":
        """Remove and return ``count`` uniformly-chosen free ports."""
        picked = rng.choice(len(self._free), size=count, replace=False)
        ports = tuple(sorted(self._free[i] for i in picked))
        for p in ports:
            self._free.remove(p)
        return ports

    def release(self, ports) -> None:
        """Return ports to the pool (kept sorted for determinism)."""
        for p in ports:
            self._free.append(p)
        self._free.sort()


def run_serve_bench(
    network: "ConferenceNetwork | int",
    *,
    dilation: int = 8,
    conferences: int = 500,
    seed: int = 0,
    arrival_rate: float = 4.0,
    mean_size: float = 4.0,
    max_size: "int | None" = None,
    mean_hold_ticks: float = 20.0,
    resize_prob: float = 0.0,
    queue_capacity: int = 256,
    shed_policy: "ShedPolicy | str" = ShedPolicy.REJECT_NEWEST,
    max_batch: int = 64,
    churn: "ChurnPolicy | None" = None,
    retry: "RetryPolicy | None" = None,
    fault_process: "FaultProcessConfig | None" = None,
    fault_horizon: "float | None" = None,
    route_cache: "RouteCache | None" = None,
    protection: int = 0,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
    slo: "SLOEvaluator | None" = None,
    flight: "FlightRecorder | None" = None,
    max_ticks: "int | None" = None,
    capacity_model: str = "abstract",
    perf: "PerfModelConfig | None" = None,
) -> ServeBenchReport:
    """Run a seeded churn workload against a fresh service.

    ``network`` is a built :class:`~repro.core.network.ConferenceNetwork`
    or a port count to build one for.  ``conferences`` opens are offered
    at ``arrival_rate`` per tick (Poisson), each holding for a geometric
    number of ticks around ``mean_hold_ticks``; ``resize_prob`` is the
    per-tick chance of one random live session growing or shrinking by a
    member.  With ``fault_process`` set, a timeline generated up to
    ``fault_horizon`` (default: generously past the expected run length)
    fires underneath the workload.  ``protection`` (plan budget F,
    default 0 = reactive) precomputes per-link backup plans so
    fault-driven failovers switch in O(1); the report's ``recovery``
    block carries the resulting recovery-tick distribution and plan
    hit/miss/stale counters.
    """
    if isinstance(network, int):
        # A conference-capable default fabric (``dilation`` is ignored
        # when the caller hands over a built network).
        network = ConferenceNetwork.build(
            "indirect-binary-cube", network, dilation=dilation
        )
    check_positive(arrival_rate, "arrival_rate")
    check_positive(mean_hold_ticks, "mean_hold_ticks")
    if conferences < 1:
        raise ValueError(f"conferences must be >= 1, got {conferences}")
    base = ensure_rng(seed)
    # Stream order is part of the file format of this benchmark: reorder
    # it and every same-seed comparison with older runs breaks.
    arrivals_rng, size_rng, member_rng, hold_rng, resize_rng, fault_rng, service_rng = (
        base.spawn(7)
    )
    service = FabricService(
        network,
        retry=retry,
        rng=service_rng,
        route_cache=route_cache,
        protection=protection,
        tracer=tracer,
        metrics=metrics,
        slo=slo,
        flight=flight,
        queue_capacity=queue_capacity,
        shed_policy=shed_policy,
        max_batch=max_batch,
        churn=churn,
        capacity_model=capacity_model,
        perf=perf,
    )
    injector = None
    if fault_process is not None:
        if fault_horizon is None:
            fault_horizon = 4.0 * conferences / arrival_rate + 8.0 * mean_hold_ticks
        timeline = generate_fault_timeline(
            network.topology, fault_process, fault_horizon, seed=fault_rng
        )
        injector = service.attach_faults(timeline)

    n = network.topology.n_ports
    pool = _PortPool(n)
    closes_due: dict[int, list[int]] = {}
    outstanding = [0]  # submitted requests awaiting a terminal response
    starved = [0]
    resizes = [0]

    def finish(fn):
        def callback(response: ServiceResponse) -> None:
            outstanding[0] -= 1
            fn(response)

        return callback

    def on_opened(response: ServiceResponse) -> None:
        sid = response.session_id
        if response.ok:
            hold = int(hold_rng.geometric(min(1.0, 1.0 / mean_hold_ticks)))
            closes_due.setdefault(tick[0] + max(hold, 1), []).append(sid)
        else:
            pool.release(service.sessions.require(sid).members)

    def on_closed(response: ServiceResponse) -> None:
        if response.ok:
            pool.release(service.sessions.require(response.session_id).members)

    def on_join(ports):
        def callback(response: ServiceResponse) -> None:
            if not response.ok:
                pool.release(ports)

        return callback

    def on_leave(ports):
        def callback(response: ServiceResponse) -> None:
            if response.ok:
                pool.release(ports)

        return callback

    def open_one() -> bool:
        want = 2 + int(size_rng.poisson(max(mean_size - 2.0, 0.0)))
        if max_size is not None:
            want = min(want, max_size)
        if len(pool) < max(want, 2):
            starved[0] += 1
            return False
        members = pool.grab(member_rng, max(want, 2))
        outstanding[0] += 1
        service.submit_open(members, on_complete=finish(on_opened))
        return True

    def churn_resize() -> None:
        active = sorted(
            s.session_id
            for s in service.sessions
            if s.state in (SessionState.ACTIVE, SessionState.DEGRADED)
        )
        if not active:
            return
        sid = active[int(resize_rng.integers(len(active)))]
        session = service.sessions.require(sid)
        grow = bool(resize_rng.integers(2))
        if grow and len(pool):
            ports = pool.grab(member_rng, 1)
            outstanding[0] += 1
            service.submit_join(sid, ports, on_complete=finish(on_join(ports)))
            resizes[0] += 1
        elif not grow and len(session.members) > 2:
            port = session.members[int(resize_rng.integers(len(session.members)))]
            outstanding[0] += 1
            service.submit_leave(sid, (port,), on_complete=finish(on_leave((port,))))
            resizes[0] += 1

    tick = [0]
    opened = 0
    budget = max_ticks if max_ticks is not None else max(200, conferences * 100)
    while (
        opened < conferences
        or outstanding[0]
        or closes_due
        or any(s.live for s in service.sessions)
    ):
        if tick[0] >= budget:
            raise RuntimeError(
                f"bench did not settle within {budget} ticks "
                f"({opened}/{conferences} opened, {outstanding[0]} outstanding)"
            )
        if opened < conferences:
            for _ in range(int(arrivals_rng.poisson(arrival_rate))):
                if opened >= conferences:
                    break
                if open_one():
                    opened += 1
        for sid in closes_due.pop(tick[0], []):
            if service.sessions.require(sid).live:
                outstanding[0] += 1
                service.submit_close(sid, on_complete=finish(on_closed))
        if resize_prob and float(resize_rng.random()) < resize_prob:
            churn_resize()
        service.tick()
        tick[0] += 1

    before = service.stats.ticks
    counts = service.shutdown()
    healing_stats = service.healing.stats
    recovery: dict[str, Any] = dict(
        healing_stats.summarize_recovery(healing_stats.recovery_samples)
    )
    recovery.update(
        plan_hits=healing_stats.plan_hits,
        plan_misses=healing_stats.plan_misses,
        plan_stale=healing_stats.plan_stale,
    )
    return ServeBenchReport(
        n_ports=n,
        seed=seed,
        conferences=opened,
        ticks=service.stats.ticks,
        drain_ticks=service.stats.ticks - before,
        starved_arrivals=starved[0],
        resizes=resizes[0],
        fault_transitions=len(injector.history) if injector is not None else 0,
        peak_queue_depth=service.queue.stats.peak_depth,
        queue_capacity=queue_capacity,
        shed_policy=service.queue.policy.value,
        lost_sessions=counts.get(SessionState.LOST.value, 0),
        protection=service.protection,
        recovery=recovery,
        session_counts=counts,
        service=service.stats.as_dict(),
        queue=service.queue.stats.as_dict(),
        delivery=(
            service.delivery.summary() if service.delivery is not None else None
        ),
    )
