"""Session lifecycle bookkeeping for the conference service.

A *session* is the service-side identity of one conference from the
client's perspective: it survives reroutes, fault-induced drops and
re-admissions (each bumping ``generation``), and only dies when the
client closes it — or when the service is told to give up on it, which
the churn acceptance test asserts never happens under a survivable
fault timeline.

State machine::

    QUEUED ──admit──> ACTIVE <──recover──> DEGRADED
      │                 │  ▲                  │
      │ shed/reject     │  └── re-admit ── DOWN (fault drop, requeued)
      ▼                 │                     │
    REJECTED         CLOSED <──close──────────┘        DOWN ──give-up──> LOST
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.serve.protocol import Priority

__all__ = ["SessionState", "Session", "SessionTable"]


class SessionState(Enum):
    """Where a session sits in its lifecycle."""

    QUEUED = "queued"
    ACTIVE = "active"
    DEGRADED = "degraded"
    DOWN = "down"
    CLOSED = "closed"
    REJECTED = "rejected"
    LOST = "lost"


#: Legal state transitions (source -> allowed targets).
_TRANSITIONS: dict[SessionState, frozenset[SessionState]] = {
    SessionState.QUEUED: frozenset(
        {SessionState.ACTIVE, SessionState.REJECTED, SessionState.CLOSED}
    ),
    SessionState.ACTIVE: frozenset(
        {SessionState.DEGRADED, SessionState.DOWN, SessionState.CLOSED}
    ),
    SessionState.DEGRADED: frozenset(
        {SessionState.ACTIVE, SessionState.DOWN, SessionState.CLOSED}
    ),
    SessionState.DOWN: frozenset(
        {SessionState.ACTIVE, SessionState.DEGRADED, SessionState.LOST, SessionState.CLOSED}
    ),
    SessionState.CLOSED: frozenset(),
    SessionState.REJECTED: frozenset(),
    SessionState.LOST: frozenset(),
}

#: States in which the session holds (or is owed) fabric resources.
LIVE_STATES = frozenset({SessionState.ACTIVE, SessionState.DEGRADED, SessionState.DOWN})


@dataclass
class Session:
    """One client conference as the service tracks it."""

    session_id: int
    members: tuple[int, ...]
    priority: Priority = Priority.NORMAL
    state: SessionState = SessionState.QUEUED
    opened_at: float = 0.0
    closed_at: "float | None" = None
    generation: int = 0  # route swaps + re-admissions survived
    requeues: int = 0  # fault-induced re-admission round trips
    history: list[str] = field(default_factory=list)
    # Owning table, set by SessionTable.create so transitions keep the
    # table's per-state tally current; free-standing sessions skip it.
    table: "SessionTable | None" = field(default=None, repr=False, compare=False)

    @property
    def conference_id(self) -> int:
        """Sessions map 1:1 onto conference ids in the fabric ledger."""
        return self.session_id

    @property
    def live(self) -> bool:
        """True while the session holds (or is owed) fabric resources."""
        return self.state in LIVE_STATES

    def add_member(self, port: int, at: float) -> None:
        """Record a successful join: ``port`` becomes a member.

        Membership changes are part of the lifecycle state machine —
        they are only legal while the session holds fabric resources,
        bump ``generation`` (the route changed), and land in
        ``history`` as ``+port`` entries alongside state transitions.
        """
        if not self.live:
            raise ValueError(
                f"session {self.session_id}: cannot add member in state {self.state.value}"
            )
        if port in self.members:
            raise ValueError(f"session {self.session_id}: port {port} is already a member")
        self.members = tuple(sorted(self.members + (port,)))
        self.generation += 1
        self.history.append(f"{at:g}:+{port}")

    def remove_member(self, port: int, at: float) -> None:
        """Record a leave: ``port`` stops being a member.

        At least one member must remain — an empty session must be
        closed, not drained.  Logged in ``history`` as ``-port``.
        """
        if not self.live:
            raise ValueError(
                f"session {self.session_id}: cannot remove member in state {self.state.value}"
            )
        if port not in self.members:
            raise ValueError(f"session {self.session_id}: port {port} is not a member")
        if len(self.members) == 1:
            raise ValueError(
                f"session {self.session_id}: cannot remove the last member; close instead"
            )
        self.members = tuple(m for m in self.members if m != port)
        self.generation += 1
        self.history.append(f"{at:g}:-{port}")

    def transition(self, target: SessionState, at: float) -> None:
        """Move to ``target``, enforcing the lifecycle state machine."""
        if target is self.state:
            return
        if target not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"session {self.session_id}: illegal transition "
                f"{self.state.value} -> {target.value}"
            )
        self.history.append(f"{at:g}:{target.value}")
        if self.table is not None:
            self.table._tally[self.state] -= 1
            self.table._tally[target] += 1
        self.state = target
        if target is SessionState.CLOSED:
            self.closed_at = at


class SessionTable:
    """The registry of every session the service has ever accepted."""

    def __init__(self) -> None:
        self._sessions: dict[int, Session] = {}
        self._next_id = 0
        # Maintained by Session.transition; the telemetry paths read
        # counts() every tick, so it must not rescan the whole table.
        self._tally: dict[SessionState, int] = {state: 0 for state in SessionState}

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self):
        return iter(self._sessions.values())

    def __contains__(self, session_id: int) -> bool:
        return session_id in self._sessions

    def create(
        self, members: tuple[int, ...], priority: Priority, at: float
    ) -> Session:
        """Mint a new QUEUED session with the next free id."""
        session = Session(
            session_id=self._next_id,
            members=members,
            priority=priority,
            state=SessionState.QUEUED,
            opened_at=at,
            table=self,
        )
        self._sessions[session.session_id] = session
        self._tally[SessionState.QUEUED] += 1
        self._next_id += 1
        return session

    def get(self, session_id: int) -> "Session | None":
        """The session with this id, or ``None``."""
        return self._sessions.get(session_id)

    def require(self, session_id: int) -> Session:
        """The session with this id, or ``KeyError``."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"no session with id {session_id}") from None

    def live(self) -> list[Session]:
        """Sessions currently holding (or owed) fabric resources."""
        return [s for s in self._sessions.values() if s.live]

    def in_state(self, state: SessionState) -> list[Session]:
        """All sessions currently in ``state``, in id order."""
        return [s for s in self._sessions.values() if s.state is state]

    def counts(self) -> dict[str, int]:
        """Session tally per lifecycle state (all states present)."""
        return {state.value: self._tally[state] for state in SessionState}
