"""Bounded admission queueing with load-shedding policies.

The service never lets its backlog grow without bound: data-plane
requests (``open``/``join``) wait in a bounded queue and, once it is
full, a :class:`ShedPolicy` decides who pays:

* ``reject-newest`` — classic tail drop: the arriving request bounces.
* ``shed-largest`` — the queued request touching the most ports is
  evicted to make room (a large conference costs the most links and
  blocks the most later arrivals; shedding it frees the most capacity
  per victim).  When the arrival itself is the largest, it bounces.
* ``priority`` — lanes drain highest-:class:`~repro.serve.protocol.Priority`
  first, and a full queue evicts the newest request of the lowest lane
  strictly below the arrival's priority (never an equal or higher one).

Control-plane requests (``leave``/``close``) bypass the bound entirely:
they only release fabric resources, and dropping a close would leak the
very capacity the queue is starved for.  Their backlog is naturally
bounded by the number of live sessions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

from repro.serve.protocol import Priority, RequestKind, SessionRequest

__all__ = ["ShedPolicy", "QueueStats", "AdmissionQueue"]


class ShedPolicy(str, Enum):
    """What happens to data-plane arrivals once the queue is full."""

    REJECT_NEWEST = "reject-newest"
    SHED_LARGEST = "shed-largest"
    PRIORITY = "priority"


@dataclass
class QueueStats:
    """Arrival accounting of one :class:`AdmissionQueue`."""

    offered: int = 0
    accepted: int = 0
    rejected: int = 0
    shed: int = 0
    peak_depth: int = 0

    def as_dict(self) -> dict[str, int]:
        """A plain-dict view for reports."""
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "peak_depth": self.peak_depth,
        }


class AdmissionQueue:
    """A bounded, policy-governed queue of session requests.

    ``capacity`` bounds the *data-plane* backlog (open/join); the
    control lane (leave/close) is exempt.  ``take`` drains the control
    lane first — releases make room for the admissions that follow in
    the same batch — then data requests, highest priority lane first,
    FIFO within a lane.
    """

    def __init__(self, capacity: int = 1024, policy: "ShedPolicy | str" = ShedPolicy.REJECT_NEWEST):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._policy = ShedPolicy(policy)
        self._lanes: dict[Priority, deque[SessionRequest]] = {
            p: deque() for p in sorted(Priority, reverse=True)
        }
        self._control: deque[SessionRequest] = deque()
        self.stats = QueueStats()

    # -- introspection -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum queued data-plane requests."""
        return self._capacity

    @property
    def policy(self) -> ShedPolicy:
        """The load-shedding policy in force."""
        return self._policy

    @property
    def depth(self) -> int:
        """Data-plane requests currently waiting."""
        return sum(len(lane) for lane in self._lanes.values())

    @property
    def control_depth(self) -> int:
        """Control-plane (leave/close) requests currently waiting."""
        return len(self._control)

    def __len__(self) -> int:
        return self.depth + self.control_depth

    # -- arrivals ----------------------------------------------------------

    def offer(self, request: SessionRequest) -> "tuple[bool, list[SessionRequest]]":
        """Enqueue one request.

        Returns ``(accepted, shed)``: whether *this* request got a slot,
        and any already-queued victims the policy evicted to make room
        (the service answers those with ``status="shed"``).
        """
        self.stats.offered += 1
        if request.kind in RequestKind.CONTROL:
            self._control.append(request)
            self.stats.accepted += 1
            return True, []
        shed: list[SessionRequest] = []
        if self.depth >= self._capacity:
            victim = self._pick_victim(request)
            if victim is None:
                self.stats.rejected += 1
                return False, []
            self._lanes[victim.priority].remove(victim)
            self.stats.shed += 1
            shed.append(victim)
        self._lanes[request.priority].append(request)
        self.stats.accepted += 1
        self.stats.peak_depth = max(self.stats.peak_depth, self.depth)
        return True, shed

    def _pick_victim(self, arrival: SessionRequest) -> "SessionRequest | None":
        """The queued request the policy evicts for ``arrival`` (or None)."""
        if self._policy is ShedPolicy.REJECT_NEWEST:
            return None
        if self._policy is ShedPolicy.SHED_LARGEST:
            queued = [r for lane in self._lanes.values() for r in lane]
            largest = max(queued, key=lambda r: (r.size, r.request_id))
            return largest if largest.size > arrival.size else None
        # ShedPolicy.PRIORITY: newest request of the lowest lane strictly
        # below the arrival's priority.
        for priority in sorted(Priority):
            if priority >= arrival.priority:
                break
            if self._lanes[priority]:
                return self._lanes[priority][-1]
        return None

    # -- draining ----------------------------------------------------------

    def take(self, limit: int) -> list[SessionRequest]:
        """Pop up to ``limit`` requests in service order.

        Control first (releases fund the admissions behind them), then
        data lanes from highest priority down, FIFO within a lane.
        """
        if limit < 1:
            return []
        batch: list[SessionRequest] = []
        while self._control and len(batch) < limit:
            batch.append(self._control.popleft())
        for lane in self._lanes.values():  # constructed highest-first
            while lane and len(batch) < limit:
                batch.append(lane.popleft())
        return batch

    def drain_all(self) -> list[SessionRequest]:
        """Empty the queue completely (used at shutdown)."""
        out = self.take(len(self))
        assert not len(self)
        return out
