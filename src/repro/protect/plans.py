"""Precomputed per-link backup routings with O(1) fast failover.

The healing ladder in :mod:`repro.core.healing` is *reactive*: only
after a ``fault.fail`` transition does it search for a surviving route,
so recovery cost scales with the reroute search.  This module moves
that work off the failure path, in the shape SDN fast-failover groups
use for multicast trees (a backup tree pre-installed per protected
link, switched in without controller involvement): for each admitted
conference, the :class:`BackupPlanStore` holds an alternate routing
plan for each of the ``F`` most-loaded links the live route crosses —
``F`` is the *protection level* — and the controller handles a fault on
a protected link by switching to the stored plan in O(1).

Correctness rests on the same fact the route cache leans on: routing is
a pure function of ``(topology, policy, members, fault set)``.  A plan
is computed by the *same* router the reactive path would call, under
the fault set ``base ∪ {point}`` — so a plan that is still **valid**
(its base fault set is exactly the current fault set minus the failed
point, and the membership is unchanged) yields a route *bit-identical*
to what the reactive reroute would have produced.  The property suite
in ``tests/protect`` proves this for arbitrary conferences and fault
sets.  Any divergence — membership churn since the plan was cut, or an
overlapping fault the plan did not anticipate — makes the lookup report
``stale`` and the controller falls back to the reactive search, so
protection can change *when* work happens but never *what* is decided.

Unroutable outcomes are planned too: a **negative plan** records that
the conference cannot survive the protected link's death, so the
controller can drop it in O(1) instead of re-discovering the dead end.

Memory is the price: each positive plan stores one ``(levels, taps)``
route body, so a store holds at most ``live conferences × F`` plans.
:meth:`BackupPlanStore.footprint` reports the realized cost for the
memory-vs-F tradeoff table in ``benchmarks/results/``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.core.conference import Conference
from repro.core.routing import Route, RoutingPolicy, UnroutableError
from repro.topology.network import MultistageNetwork, Point

__all__ = ["BackupPlan", "PlanStats", "BackupPlanStore"]

_NO_FAULTS: frozenset[Point] = frozenset()

#: ``router(conference, faults)`` -> Route, raising UnroutableError.
PlanRouter = Callable[[Conference, frozenset], Route]


@dataclass
class PlanStats:
    """Accounting of one :class:`BackupPlanStore`.

    ``hits`` / ``stale`` / ``misses`` classify failover lookups (a hit
    includes negative plans — knowing a drop is unavoidable is also a
    fast path); ``computed`` / ``unroutable`` / ``invalidated`` track
    the plan population itself.
    """

    computed: int = 0
    unroutable: int = 0  # negative plans among ``computed``
    hits: int = 0
    misses: int = 0
    stale: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        """Total failover lookups served."""
        return self.hits + self.misses + self.stale

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from a valid plan (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "PlanStats") -> "PlanStats":
        """The combined accounting of two stores, as a new instance."""
        return PlanStats(
            computed=self.computed + other.computed,
            unroutable=self.unroutable + other.unroutable,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            stale=self.stale + other.stale,
            invalidated=self.invalidated + other.invalidated,
        )

    @classmethod
    def merged(cls, many: "Iterable[PlanStats]") -> "PlanStats":
        """Fold any number of per-store stats into one total."""
        total = cls()
        for stats in many:
            total = total.merge(stats)
        return total

    def as_dict(self) -> dict:
        """A plain-dict view (picklable; includes the derived fields)."""
        return {
            "computed": self.computed,
            "unroutable": self.unroutable,
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "invalidated": self.invalidated,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class BackupPlan:
    """One precomputed failover routing for ``(conference, point)``.

    ``entry`` is either a ``(levels, taps)`` route body — the same
    storage shape the route cache uses — or an :class:`UnroutableError`
    recording that the conference cannot survive ``point``'s death (a
    negative plan).  ``base_faults`` is the fault set in force when the
    plan was cut; the plan covers exactly the fault set
    ``base_faults | {point}`` and no other.
    """

    members: tuple[int, ...]
    point: Point
    base_faults: frozenset[Point]
    entry: "tuple | UnroutableError" = field(repr=False)

    @property
    def unroutable(self) -> bool:
        """True for a negative plan (the fault is fatal to this call)."""
        return isinstance(self.entry, UnroutableError)

    def covers(self, members: tuple[int, ...], faults: frozenset) -> bool:
        """Is this plan valid for ``members`` under ``faults`` right now?

        Valid means bit-identity is guaranteed: same membership, and the
        current fault set is exactly the one the plan was computed for.
        """
        return self.members == members and faults == (self.base_faults | {self.point})

    @property
    def route_cells(self) -> int:
        """Stored routing-table entries (the memory proxy): switch→output
        assignments across all levels plus the per-member taps."""
        if self.unroutable:
            return 0
        levels, taps = self.entry
        return sum(len(level) for level in levels) + len(taps)


class BackupPlanStore:
    """Fault-aware store of per-link backup routings for live conferences.

    Bound to one network and one routing policy at construction, like
    the :class:`~repro.parallel.cache.RouteCache` it sits alongside.
    Plans are keyed ``(conference id, protected point)``; the conference
    id (not the membership) keys the store because plans follow the
    *lifecycle* of an admitted call — :meth:`invalidate` on leave/drop
    must clear exactly that call's plans.

    ``protection`` is the per-conference plan budget F: each
    :meth:`protect` call plans the F most-loaded links of the live
    route.  ``protection=0`` disables the store entirely (every lookup
    misses, nothing is computed) — the pre-protection behaviour.

    The store never routes by itself: :meth:`protect` calls the
    ``router`` the owning controller hands it, which is the same
    (optionally cache-memoized) pure function the reactive path uses —
    that sameness is what makes fast failover bit-identical.
    """

    def __init__(
        self,
        network: MultistageNetwork,
        policy: "RoutingPolicy | None" = None,
        protection: int = 1,
        tracer=None,
    ):
        if protection < 0:
            raise ValueError(f"protection must be >= 0, got {protection}")
        self._network = network
        self._policy = policy or RoutingPolicy()
        self._protection = protection
        self._plans: dict[int, dict[Point, BackupPlan]] = {}
        self.stats = PlanStats()
        # Observation only (duck-typed repro.obs.trace.Tracer): lookups
        # emit plan.hit / plan.stale / plan.miss events.
        self.tracer = tracer

    # -- introspection -----------------------------------------------------

    @property
    def network(self) -> MultistageNetwork:
        """The network plans are computed on."""
        return self._network

    @property
    def policy(self) -> RoutingPolicy:
        """The routing policy baked into every plan."""
        return self._policy

    @property
    def protection(self) -> int:
        """The per-conference plan budget F."""
        return self._protection

    def __len__(self) -> int:
        return sum(len(plans) for plans in self._plans.values())

    def plans_of(self, conference_id: int) -> dict[Point, BackupPlan]:
        """The stored plans of one conference (a copy), keyed by point."""
        return dict(self._plans.get(conference_id, {}))

    def protected_points(self, conference_id: int) -> frozenset[Point]:
        """The points one conference currently holds plans for."""
        return frozenset(self._plans.get(conference_id, ()))

    def footprint(self) -> dict[str, int]:
        """Realized memory cost, for the memory-vs-F tradeoff table.

        ``route_cells`` counts stored switch→output assignments plus
        per-member taps — the dominant storage — across all positive
        plans; negative plans cost only their key.
        """
        plans = [p for by_point in self._plans.values() for p in by_point.values()]
        return {
            "protection": self._protection,
            "conferences": len(self._plans),
            "plans": len(plans),
            "negative_plans": sum(1 for p in plans if p.unroutable),
            "route_cells": sum(p.route_cells for p in plans),
        }

    # -- plan lifecycle ----------------------------------------------------

    def protect(
        self,
        conference: Conference,
        route: Route,
        faults: frozenset,
        router: PlanRouter,
        load_of: "Callable[[Point], int] | None" = None,
    ) -> int:
        """(Re)plan one conference: cover the F most-loaded links of
        ``route`` against single additional faults on top of ``faults``.

        Any previous plans of the conference are replaced wholesale (so
        membership churn or a changed live route can never leave a plan
        for a link the call no longer crosses).  ``load_of`` ranks the
        route's links by current channel load, most-loaded first (ties
        broken by point order, for determinism); without it the ranking
        degenerates to point order.  Returns the number of plans stored.
        """
        cid = conference.conference_id
        self._plans.pop(cid, None)
        if self._protection == 0:
            return 0
        base = frozenset(faults) if faults else _NO_FAULTS
        links = sorted(route.links)
        if load_of is not None:
            links.sort(key=lambda p: (-load_of(p), p))
        plans: dict[Point, BackupPlan] = {}
        for point in links[: self._protection]:
            try:
                alt = router(conference, base | {point})
                entry: "tuple | UnroutableError" = (alt.levels, dict(alt.taps))
            except UnroutableError as exc:
                entry = UnroutableError(*exc.args)
                self.stats.unroutable += 1
            plans[point] = BackupPlan(
                members=conference.members, point=point, base_faults=base, entry=entry
            )
            self.stats.computed += 1
        if plans:
            self._plans[cid] = plans
        return len(plans)

    def lookup(
        self, conference: Conference, point: Point, faults: frozenset
    ) -> "tuple[str, Route | UnroutableError | None]":
        """The O(1) failover step: fetch the plan covering ``point``.

        Returns ``(status, payload)`` where status is:

        * ``"hit"`` — a valid plan covers the fault; payload is the
          stored :class:`~repro.core.routing.Route` (rebuilt around the
          requesting conference) or, for a negative plan, the recorded
          :class:`UnroutableError` — either way identical to what the
          reactive path would compute;
        * ``"stale"`` — a plan exists but its base fault set or
          membership no longer matches (overlapping fault, churn);
          payload is ``None`` and the caller must fall back;
        * ``"miss"`` — no plan for this point (unprotected link, or the
          conference was never planned); payload is ``None``.
        """
        cid = conference.conference_id
        faults = frozenset(faults)
        plan = self._plans.get(cid, {}).get(point)
        if plan is None:
            self.stats.misses += 1
            self._trace("plan.miss", cid, point)
            return "miss", None
        if not plan.covers(conference.members, faults):
            self.stats.stale += 1
            self._trace("plan.stale", cid, point)
            return "stale", None
        self.stats.hits += 1
        self._trace("plan.hit", cid, point)
        if plan.unroutable:
            return "hit", UnroutableError(*plan.entry.args)
        levels, taps = plan.entry
        return "hit", Route(
            conference=conference,
            n_ports=self._network.n_ports,
            n_stages=self._network.n_stages,
            levels=levels,
            taps=taps,
        )

    def invalidate(self, conference_id: int) -> int:
        """Drop every plan of one conference (leave/close/drop).

        Returns the number of plans removed; unknown ids are a no-op.
        """
        removed = len(self._plans.pop(conference_id, ()))
        self.stats.invalidated += removed
        return removed

    def invalidate_links(self, links: "Iterable[Point]") -> list[int]:
        """Drop exactly the plans that touch any of ``links``.

        The scoped form of :meth:`invalidate` used by membership churn:
        a plan is affected when its *protected point* is one of the
        touched links or its stored backup route *crosses* one (the
        link's load just changed, so the plan's capacity assumptions —
        and the most-loaded-first ranking that chose it — are stale).
        Plans elsewhere survive, so a hitless in-block join replans
        nothing but the conferences actually sharing the graft.
        Returns the affected conference ids, for targeted re-planning.
        """
        touched = frozenset(links)
        if not touched:
            return []
        affected: list[int] = []
        for cid in list(self._plans):
            plans = self._plans[cid]
            doomed = [
                point
                for point, plan in plans.items()
                if point in touched or self._plan_crosses(plan, touched)
            ]
            if not doomed:
                continue
            for point in doomed:
                del plans[point]
            self.stats.invalidated += len(doomed)
            affected.append(cid)
            if not plans:
                del self._plans[cid]
        return affected

    @staticmethod
    def _plan_crosses(plan: BackupPlan, touched: frozenset) -> bool:
        """Does a positive plan's backup route use any touched link?"""
        if plan.unroutable:
            return False
        levels, _taps = plan.entry
        return any(
            (t, row) in touched
            for t in range(1, len(levels))
            for row in levels[t]
        )

    def clear(self) -> None:
        """Drop every plan (stats are kept)."""
        self._plans.clear()

    def _trace(self, name: str, cid: int, point: Point) -> None:
        if self.tracer is not None:
            self.tracer.event(name, cid=cid, level=point[0], row=point[1])
