"""Precomputed backup routings for O(1) fast failover (see ``plans``)."""

from repro.protect.plans import BackupPlan, BackupPlanStore, PlanStats

__all__ = ["BackupPlan", "BackupPlanStore", "PlanStats"]
