"""Deterministic random-number plumbing.

Every randomized component in the library (workload generators, the
randomized worst-case search, the discrete-event traffic model) accepts a
``seed`` or an already-constructed :class:`numpy.random.Generator`.  This
module centralizes the coercion so that experiments are reproducible from
a single integer recorded in their output.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs", "RngLike"]

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh OS-seeded generator; an integer produces a
    deterministic PCG64 stream; an existing generator is passed through
    untouched so callers can share one stream across components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: "int | np.random.Generator | None", count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from one seed.

    Uses ``Generator.spawn`` so child streams are statistically
    independent; used when an experiment fans out over workers or repeats
    and each repeat must be individually reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return ensure_rng(seed).spawn(count)
