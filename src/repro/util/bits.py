"""Bit-field helpers used throughout the topology and routing code.

Ports of an ``N = 2**n`` network are identified with ``n``-bit integers.
Every multistage topology in this library is a *bit-permutation network*:
the wiring between stages permutes the address bits of the row a signal
sits on, and a 2x2 switch toggles exactly one address bit.  All routing
and conflict analysis therefore reduces to reasoning about bit windows,
prefixes and suffixes of port addresses, which is what this module
implements.

Bit numbering convention: bit 0 is the least significant bit.  ``bits
t..n-1`` therefore means the *high* part of the address and ``bits
0..t-1`` the *low* part.  An "aligned block of size 2**k" is a set of
addresses sharing bits ``k..n-1``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = [
    "is_power_of_two",
    "ilog2",
    "bit",
    "set_bit",
    "flip_bit",
    "low_bits",
    "high_bits",
    "bit_window",
    "same_high_bits",
    "same_low_bits",
    "rotate_left",
    "rotate_right",
    "bit_reverse",
    "common_prefix_len",
    "common_suffix_len",
    "enclosing_block_exponent",
    "aligned_block",
    "aligned_block_of",
    "popcount",
    "iter_bits",
    "mask_of",
    "pack_rows",
    "unpack_rows",
]


def is_power_of_two(x: int) -> bool:
    """Return True when ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact integer base-2 logarithm of a power of two.

    Raises ``ValueError`` when ``x`` is not a positive power of two, so
    callers never silently truncate.
    """
    if not is_power_of_two(x):
        raise ValueError(f"expected a positive power of two, got {x!r}")
    return x.bit_length() - 1


def bit(x: int, i: int) -> int:
    """The value (0 or 1) of bit ``i`` of ``x``."""
    return (x >> i) & 1


def set_bit(x: int, i: int, value: int) -> int:
    """Return ``x`` with bit ``i`` forced to ``value`` (0 or 1)."""
    if value not in (0, 1):
        raise ValueError(f"bit value must be 0 or 1, got {value!r}")
    return (x & ~(1 << i)) | (value << i)


def flip_bit(x: int, i: int) -> int:
    """Return ``x`` with bit ``i`` toggled."""
    return x ^ (1 << i)


def mask_of(width: int) -> int:
    """A mask with the ``width`` lowest bits set."""
    if width < 0:
        raise ValueError(f"mask width must be >= 0, got {width}")
    return (1 << width) - 1


def low_bits(x: int, k: int) -> int:
    """The ``k`` least significant bits of ``x``."""
    return x & mask_of(k)


def high_bits(x: int, k: int, n: int) -> int:
    """Bits ``k..n-1`` of ``x`` (shifted down so they start at bit 0)."""
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got k={k}, n={n}")
    return (x >> k) & mask_of(n - k)


def bit_window(x: int, lo: int, hi: int) -> int:
    """Bits ``lo..hi-1`` of ``x``, shifted down to start at bit 0.

    The window is half-open, mirroring Python slicing: ``bit_window(x, 0,
    n)`` is ``x`` itself for an ``n``-bit value.
    """
    if lo > hi:
        raise ValueError(f"need lo <= hi, got lo={lo}, hi={hi}")
    return (x >> lo) & mask_of(hi - lo)


def same_high_bits(a: int, b: int, k: int, n: int) -> bool:
    """True when ``a`` and ``b`` agree on bits ``k..n-1``."""
    return high_bits(a, k, n) == high_bits(b, k, n)


def same_low_bits(a: int, b: int, k: int) -> bool:
    """True when ``a`` and ``b`` agree on bits ``0..k-1``."""
    return low_bits(a, k) == low_bits(b, k)


def rotate_left(x: int, n: int, count: int = 1) -> int:
    """Rotate the ``n``-bit value ``x`` left by ``count`` positions.

    This is the *perfect shuffle* permutation on addresses: rotating the
    address of every port left by one is exactly the shuffle wiring used
    between omega-network stages.
    """
    if n <= 0:
        raise ValueError(f"bit width must be positive, got {n}")
    count %= n
    m = mask_of(n)
    x &= m
    return ((x << count) | (x >> (n - count))) & m


def rotate_right(x: int, n: int, count: int = 1) -> int:
    """Rotate the ``n``-bit value ``x`` right by ``count`` positions."""
    return rotate_left(x, n, n - (count % n))


def bit_reverse(x: int, n: int) -> int:
    """Reverse the ``n``-bit representation of ``x``.

    Baseline networks with all switches set straight realize the
    bit-reversal permutation, which makes this a handy test oracle.
    """
    r = 0
    for _ in range(n):
        r = (r << 1) | (x & 1)
        x >>= 1
    return r


def common_prefix_len(values: Iterable[int], n: int) -> int:
    """Length of the shared *high-bit* prefix of ``values`` (n-bit ints).

    Returns ``n`` for a single value (or identical values).  The prefix is
    counted from bit ``n-1`` downward; ``common_prefix_len([0b100, 0b101],
    3) == 2``.
    """
    vals = list(values)
    if not vals:
        raise ValueError("need at least one value")
    first = vals[0]
    diff = 0
    for v in vals[1:]:
        diff |= v ^ first
    if diff == 0:
        return n
    return n - diff.bit_length()


def common_suffix_len(values: Iterable[int], n: int) -> int:
    """Length of the shared *low-bit* suffix of ``values``."""
    vals = list(values)
    if not vals:
        raise ValueError("need at least one value")
    first = vals[0]
    diff = 0
    for v in vals[1:]:
        diff |= v ^ first
    if diff == 0:
        return n
    return (diff & -diff).bit_length() - 1


def enclosing_block_exponent(members: Iterable[int], n: int) -> int:
    """Exponent ``k`` of the smallest aligned block containing ``members``.

    The smallest set of the form ``{x : x >> k == c}`` (an aligned block
    of size ``2**k``) that contains every member.  A singleton conference
    has ``k == 0``; members spanning the whole network give ``k == n``.
    This is the number of indirect-binary-cube stages a conference needs
    before it is fully combined on every member row.
    """
    return n - common_prefix_len(members, n)


def aligned_block(base: int, k: int) -> range:
    """The aligned block of size ``2**k`` starting at ``base``.

    ``base`` must itself be aligned (a multiple of ``2**k``).
    """
    size = 1 << k
    if base % size:
        raise ValueError(f"base {base} is not aligned to block size {size}")
    return range(base, base + size)


def aligned_block_of(x: int, k: int) -> range:
    """The aligned block of size ``2**k`` that contains address ``x``."""
    size = 1 << k
    base = (x >> k) << k
    return range(base, base + size)


def popcount(x: int) -> int:
    """Number of set bits of ``x`` (delegates to ``int.bit_count``)."""
    return x.bit_count()


def iter_bits(x: int, n: int) -> Sequence[int]:
    """Bits of ``x`` as a tuple ``(bit 0, bit 1, ..., bit n-1)``."""
    return tuple((x >> i) & 1 for i in range(n))


def pack_rows(rows: Iterable[int]) -> int:
    """Pack a set of row indices into one occupancy word (bit ``r`` set
    iff ``r`` occurs).

    The stage-major words of the columnar routing core
    (:func:`repro.core.batch.occupancy_words`) are built with this;
    :func:`unpack_rows` is its exact inverse for any set of non-negative
    indices (a hypothesis property).
    """
    word = 0
    for r in rows:
        if r < 0:
            raise ValueError(f"row indices must be >= 0, got {r}")
        word |= 1 << r
    return word


def unpack_rows(word: int) -> tuple[int, ...]:
    """The row indices packed into an occupancy word, ascending."""
    if word < 0:
        raise ValueError(f"occupancy words are non-negative, got {word}")
    out = []
    r = 0
    while word:
        if word & 1:
            out.append(r)
        word >>= 1
        r += 1
    return tuple(out)
