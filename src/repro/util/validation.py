"""Argument validation helpers shared across the library.

Validation raises early with messages that name the offending argument,
so failures surface at the public API boundary rather than deep inside
routing loops.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.util.bits import is_power_of_two

__all__ = [
    "check_network_size",
    "check_port",
    "check_ports",
    "check_stage",
    "check_positive",
    "check_probability",
]


def check_network_size(n_ports: int) -> int:
    """Validate a network size and return its stage count ``log2(N)``.

    Conference networks in this library require ``N`` to be a power of two
    with at least 2 ports (a single 2x2 switch).
    """
    if not isinstance(n_ports, int) or isinstance(n_ports, bool):
        raise TypeError(f"network size must be an int, got {type(n_ports).__name__}")
    if n_ports < 2 or not is_power_of_two(n_ports):
        raise ValueError(f"network size must be a power of two >= 2, got {n_ports}")
    return n_ports.bit_length() - 1


def check_port(port: int, n_ports: int, name: str = "port") -> int:
    """Validate a single port index against the network size."""
    if not isinstance(port, int) or isinstance(port, bool):
        raise TypeError(f"{name} must be an int, got {type(port).__name__}")
    if not 0 <= port < n_ports:
        raise ValueError(f"{name} {port} out of range [0, {n_ports})")
    return port


def check_ports(ports: Iterable[int], n_ports: int, name: str = "ports") -> tuple[int, ...]:
    """Validate an iterable of distinct port indices; returns them sorted."""
    seen = set()
    for p in ports:
        check_port(p, n_ports, name=f"{name} element")
        if p in seen:
            raise ValueError(f"{name} contains duplicate port {p}")
        seen.add(p)
    return tuple(sorted(seen))


def check_stage(stage: int, n_stages: int, inclusive: bool = False) -> int:
    """Validate a stage index; ``inclusive`` permits ``stage == n_stages``
    (the output level of the layered graph)."""
    hi = n_stages + (1 if inclusive else 0)
    if not 0 <= stage < hi:
        raise ValueError(f"stage {stage} out of range [0, {hi})")
    return stage


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value
