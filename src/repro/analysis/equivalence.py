"""Topological equivalence of the paper's three networks.

Baseline, omega and the indirect binary cube are classically known to be
*topologically equivalent*: relabelling inputs and outputs turns one
into another.  Conference behaviour nevertheless differs, because a
conference is pinned to concrete port numbers — a relabelling that makes
the graphs coincide also relabels the conference.  This module provides
the machinery behind that observation: digest comparison for structural
equivalence, and a search for an explicit port relabelling mapping one
network's unique-path structure onto another's.
"""

from __future__ import annotations

from itertools import permutations as iter_permutations

from repro.topology.graph import unique_path
from repro.topology.network import MultistageNetwork
from repro.topology.properties import structure_digest

__all__ = ["same_structure", "find_port_relabelling", "path_matrix_signature"]


def same_structure(a: MultistageNetwork, b: MultistageNetwork) -> bool:
    """Structural (label-free) equivalence via colour-refinement digests.

    Equal digests are the standard Weisfeiler-Leman evidence for
    isomorphism of the layered graphs; unequal digests are a proof of
    non-isomorphism.
    """
    if a.n_ports != b.n_ports or a.n_stages != b.n_stages:
        return False
    return structure_digest(a) == structure_digest(b)


def path_matrix_signature(net: MultistageNetwork) -> tuple[tuple[int, ...], ...]:
    """For each (input, output) pair, the row profile of its unique path.

    ``signature[i][j]`` packs the sequence of rows the ``i -> j`` path
    visits, giving a complete functional description of a banyan
    network.  Two networks are *functionally identical* (not merely
    isomorphic) iff their signatures match.
    """
    n = net.n_ports
    sig = []
    for i in range(n):
        row = []
        for j in range(n):
            path = unique_path(net, i, j)
            packed = 0
            for _, r in path:
                packed = packed * n + r
            row.append(packed)
        sig.append(tuple(row))
    return tuple(sig)


def find_port_relabelling(
    a: MultistageNetwork, b: MultistageNetwork, max_ports: int = 8
) -> "tuple[tuple[int, ...], tuple[int, ...]] | None":
    """Search for (input, output) relabellings making ``a`` act like ``b``.

    Looks for permutations ``pi`` (inputs) and ``po`` (outputs) such that
    the *switch-sharing pattern* of paths coincides: paths ``i1 -> j1``
    and ``i2 -> j2`` in ``a`` share a stage-``s`` switch iff paths
    ``pi(i1) -> po(j1)`` and ``pi(i2) -> po(j2)`` do in ``b``.  This is
    the classical sense in which the three networks are equivalent.
    Exhaustive, so limited to ``N <= max_ports``; returns None when no
    relabelling exists.
    """
    n = a.n_ports
    if n != b.n_ports or a.n_stages != b.n_stages:
        return None
    if n > max_ports:
        raise ValueError(f"exhaustive relabelling search limited to N <= {max_ports}")

    def switch_pattern(net: MultistageNetwork) -> dict[tuple[int, int, int], tuple[tuple[int, int], ...]]:
        # For each (stage, switch): the set of (input, output) paths through it.
        pat: dict[tuple[int, int], set[tuple[int, int]]] = {}
        for i in range(n):
            for j in range(n):
                for (lvl, row) in unique_path(net, i, j)[:-1]:
                    sw = net.stages[lvl].switch_of_row(row)
                    pat.setdefault((lvl, sw), set()).add((i, j))
        return {k + (0,): tuple(sorted(v)) for k, v in pat.items()}

    pat_a = switch_pattern(a)
    pat_b = switch_pattern(b)
    groups_a = {k[:2]: set(v) for k, v in pat_a.items()}
    groups_b = {k[:2]: set(v) for k, v in pat_b.items()}

    ports = tuple(range(n))
    for pi in iter_permutations(ports):
        # Prune with the first stage before trying output permutations:
        # stage-0 switch groups depend only on inputs.
        stage0_a = {frozenset(i for i, _ in grp) for (lvl, _), grp in groups_a.items() if lvl == 0}
        stage0_a = {frozenset(pi[i] for i in s) for s in stage0_a}
        stage0_b = {frozenset(i for i, _ in grp) for (lvl, _), grp in groups_b.items() if lvl == 0}
        if stage0_a != stage0_b:
            continue
        for po in iter_permutations(ports):
            ok = True
            mapped = {
                key: {(pi[i], po[j]) for i, j in grp}
                for key, grp in groups_a.items()
            }
            if set(map(frozenset, mapped.values())) != set(map(frozenset, groups_b.values())):
                ok = False
            if ok:
                return tuple(pi), tuple(po)
    return None
