"""Hardware cost and routing-complexity models.

The abstract poses the design question as a trade: can standard
multistage topologies give "more regular network structure, simpler
self-routing algorithm and less hardware cost" than the enhanced
Yang-2001 network?  This module prices the alternatives with the
standard switching-theory cost proxies so experiment T3 can tabulate
them:

* **crosspoints** — contact count of the switching elements (a 2x2
  element with broadcast costs 4; an ``N x N`` crossbar costs ``N**2``);
* **mixer inputs** — fan-in (signal combining) hardware, counted as the
  total number of combiner input ports;
* **mux inputs** — data inputs of the output-relay multiplexers;
* **dilation** — conflict provisioning multiplies the per-link datapath
  (switch crosspoints and mixers, not the relay muxes).

All designs here provide the same *guarantee*: any family of disjoint
conferences can be carried simultaneously.  The direct designs buy that
guarantee with ``Θ(sqrt(N))`` dilation (this reproduction's verified
worst case); the aligned design buys it with placement constraints; the
crossbar buys it with ``Θ(N**2)`` contacts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.theory import max_multiplicity_bound
from repro.util.validation import check_network_size

__all__ = ["HardwareCost", "crossbar_cost", "yang2001_cost", "direct_network_cost", "cost_table"]


@dataclass(frozen=True)
class HardwareCost:
    """Cost breakdown of one conference-network design.

    ``total_gate_equivalents`` is the headline scalar used in the cost
    tables: crosspoints + mixer inputs + mux inputs, a deliberately
    simple proxy (matching the granularity switching papers of the era
    used) rather than a technology-accurate gate count.
    """

    design: str
    n_ports: int
    crosspoints: int
    mixer_inputs: int
    mux_inputs: int
    dilation: int
    stages: int

    @property
    def total_gate_equivalents(self) -> int:
        """Headline hardware cost scalar."""
        return self.crosspoints + self.mixer_inputs + self.mux_inputs

    def row(self) -> dict[str, int | str]:
        """Flat dict for table rendering / CSV output."""
        return {
            "design": self.design,
            "N": self.n_ports,
            "stages": self.stages,
            "dilation": self.dilation,
            "crosspoints": self.crosspoints,
            "mixer_inputs": self.mixer_inputs,
            "mux_inputs": self.mux_inputs,
            "total": self.total_gate_equivalents,
        }


def crossbar_cost(n_ports: int) -> HardwareCost:
    """An ``N x N`` crossbar conference network.

    One contact per (input, output) pair plus, per output, an ``N``-way
    mixer that can sum any subset of inputs.  Conflict-free by
    construction, quadratic in silicon.
    """
    check_network_size(n_ports)
    return HardwareCost(
        design="crossbar",
        n_ports=n_ports,
        crosspoints=n_ports * n_ports,
        mixer_inputs=n_ports * n_ports,
        mux_inputs=0,
        dilation=1,
        stages=1,
    )


def _min_base_cost(n_ports: int, dilation: int) -> tuple[int, int, int]:
    """(crosspoints, mixer inputs, stages) of an n-stage 2x2 MIN.

    Each of the ``n * N/2`` switch modules: 4 crosspoints and two 2-input
    mixers, all replicated per dilation channel.
    """
    n = check_network_size(n_ports)
    switches = n * (n_ports // 2)
    return 4 * switches * dilation, 4 * switches * dilation, n


def yang2001_cost(n_ports: int) -> HardwareCost:
    """The Yang-2001 enhanced cube design (aligned placement).

    Base cube network at dilation 1 plus the per-stage output relay:
    every output owns an ``(n+1)``-to-1 multiplexer.  Conflict-freedom
    comes from the placement discipline, not extra links.
    """
    n = check_network_size(n_ports)
    xp, mix, stages = _min_base_cost(n_ports, dilation=1)
    return HardwareCost(
        design="yang2001-cube-aligned",
        n_ports=n_ports,
        crosspoints=xp,
        mixer_inputs=mix,
        mux_inputs=n_ports * (n + 1),
        dilation=1,
        stages=stages,
    )


def direct_network_cost(
    n_ports: int,
    topology: str = "indirect-binary-cube",
    dilation: "int | None" = None,
    relay: bool = True,
) -> HardwareCost:
    """A direct standard topology provisioned for worst-case traffic.

    ``dilation`` defaults to the verified worst-case multiplicity
    ``2**floor(n/2)``; pass a smaller value to price statistical
    provisioning (paired with the blocking-probability experiment F3).
    """
    n = check_network_size(n_ports)
    if dilation is None:
        dilation = max_multiplicity_bound(n)
    if dilation < 1:
        raise ValueError(f"dilation must be >= 1, got {dilation}")
    xp, mix, stages = _min_base_cost(n_ports, dilation)
    return HardwareCost(
        design=f"direct-{topology}-d{dilation}",
        n_ports=n_ports,
        crosspoints=xp,
        mixer_inputs=mix,
        mux_inputs=n_ports * (n + 1) * (1 if relay else 0),
        dilation=dilation,
        stages=stages,
    )


def cost_table(n_ports_list: "list[int] | tuple[int, ...]") -> list[HardwareCost]:
    """The T3 cost comparison across designs for each network size."""
    rows: list[HardwareCost] = []
    for n_ports in n_ports_list:
        rows.append(crossbar_cost(n_ports))
        rows.append(yang2001_cost(n_ports))
        rows.append(direct_network_cost(n_ports))
        rows.append(direct_network_cost(n_ports, dilation=2))
    return rows
