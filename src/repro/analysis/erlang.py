"""Analytic blocking approximation (reduced-load / Erlang fixed point).

The simulator (experiment F3) measures capacity blocking; this module
*predicts* it with the classical teletraffic machinery, adapted to
conference trees:

1. **Usage probabilities.**  Monte-Carlo estimate, per inter-stage
   link, of the probability ``q_l`` that a random conference's route
   uses link ``l``, and the mean number of links per route.
2. **Per-link offered load.**  With conferences offered at ``a``
   erlangs total, link ``l`` sees ``a * q_l`` erlangs.
3. **Erlang-B per link.**  A link dilated to ``c`` channels blocks with
   ``B(a*q_l, c)``; one reduced-load iteration thins the offered load
   by the acceptance probability to account for calls blocked
   elsewhere.
4. **Call blocking.**  A call needs every link of its route, so the
   independence approximation gives
   ``P_block ≈ 1 - E[ prod_{l in route} (1 - B_l) ]``, estimated over
   sampled routes.

The link-independence assumption is crude for tree-shaped routes (links
of one route share fate), so the prediction is an over-estimate at low
dilation; the F4 bench quantifies the gap against simulation.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.routing import route_conference
from repro.topology.network import MultistageNetwork
from repro.util.rng import ensure_rng
from repro.workloads.generators import uniform_partition

__all__ = ["erlang_b", "LinkLoadModel", "estimate_link_model", "predicted_blocking"]


def erlang_b(offered_erlangs: float, channels: int) -> float:
    """The Erlang-B loss formula, computed by the stable recurrence."""
    if channels < 0:
        raise ValueError(f"channel count must be >= 0, got {channels}")
    if offered_erlangs < 0:
        raise ValueError(f"offered load must be >= 0, got {offered_erlangs}")
    if offered_erlangs == 0:
        return 0.0
    inv_b = 1.0
    for c in range(1, channels + 1):
        inv_b = 1.0 + inv_b * c / offered_erlangs
    return 1.0 / inv_b


@dataclass(frozen=True)
class LinkLoadModel:
    """Monte-Carlo link-usage statistics for a topology + workload.

    ``usage[link]`` is the probability a random conference uses the
    link; ``mean_route_links`` the mean route size; ``samples`` the
    number of conferences the estimate is built from.
    """

    usage: dict[tuple[int, int], float]
    mean_route_links: float
    samples: int

    @property
    def hottest_link_usage(self) -> float:
        """Usage probability of the most popular link."""
        return max(self.usage.values(), default=0.0)


def estimate_link_model(
    net: MultistageNetwork,
    mean_size: float = 4.0,
    samples: int = 400,
    seed: "int | np.random.Generator | None" = 0,
) -> LinkLoadModel:
    """Sample random conferences and tabulate per-link usage frequency."""
    rng = ensure_rng(seed)
    counts: Counter = Counter()
    total_links = 0
    n_sampled = 0
    while n_sampled < samples:
        cs = uniform_partition(net.n_ports, load=0.75, mean_size=mean_size, seed=rng)
        for conf in cs:
            if n_sampled >= samples:
                break
            links = route_conference(net, conf).links
            counts.update(links)
            total_links += len(links)
            n_sampled += 1
    usage = {link: c / n_sampled for link, c in counts.items()}
    return LinkLoadModel(
        usage=usage,
        mean_route_links=total_links / n_sampled,
        samples=n_sampled,
    )


def predicted_blocking(
    net: MultistageNetwork,
    offered_erlangs: float,
    dilation: int,
    model: "LinkLoadModel | None" = None,
    reduced_load_iterations: int = 2,
    route_samples: int = 200,
    seed: int = 1,
) -> float:
    """Analytic capacity-blocking probability for conference calls.

    ``offered_erlangs`` is the total conference-call load (arrival rate
    × holding time).  Returns the independence-approximation call
    blocking under ``dilation`` channels per link.
    """
    if dilation < 1:
        raise ValueError(f"dilation must be >= 1, got {dilation}")
    model = model or estimate_link_model(net)

    # Reduced-load fixed point on per-link blocking.
    blocking = {link: 0.0 for link in model.usage}
    for _ in range(max(1, reduced_load_iterations)):
        new = {}
        for link, q in model.usage.items():
            thinned = offered_erlangs * q * (1.0 - blocking[link])
            new[link] = erlang_b(thinned, dilation)
        blocking = new

    # Call blocking over sampled routes under link independence.
    rng = ensure_rng(seed)
    acc = []
    sampled = 0
    while sampled < route_samples:
        cs = uniform_partition(net.n_ports, load=0.75, seed=rng)
        for conf in cs:
            if sampled >= route_samples:
                break
            links = route_conference(net, conf).links
            p_accept = math.prod(1.0 - blocking.get(link, 0.0) for link in links)
            acc.append(1.0 - p_accept)
            sampled += 1
    return float(np.mean(acc)) if acc else 0.0
