"""Fault tolerance of conference networks.

A banyan network has a single path between any input/output pair, so a
plain multistage network loses connections as soon as anything breaks.
The per-stage output-multiplexer relay changes that for conferences: a
member whose earliest tap link died can fall back to a *later* level at
which the full combination also reaches its row — the relay is not only
a latency optimization but a redundancy mechanism.  This module
quantifies that: fault injection, survivability measurement, and the
relay-on/relay-off comparison (experiment E2).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.conference import Conference
from repro.core.healing import RetryPolicy, SelfHealingController
from repro.core.network import ConferenceNetwork
from repro.core.routing import RoutingPolicy, TapPolicy, UnroutableError, route_conference
from repro.sim.engine import EventLoop
from repro.sim.faults import FaultProcessConfig, FaultInjector, FaultTransition, generate_fault_timeline
from repro.sim.scenarios import run_availability
from repro.sim.traffic import TrafficConfig
from repro.topology.builders import build
from repro.topology.network import MultistageNetwork, Point
from repro.util.rng import ensure_rng
from repro.workloads.generators import uniform_partition

__all__ = [
    "random_link_faults",
    "SurvivabilityReport",
    "survivability",
    "critical_points",
    "availability_over_time",
    "retry_ablation",
]


def random_link_faults(
    net: MultistageNetwork,
    count: int,
    seed: "int | np.random.Generator | None" = None,
    include_injections: bool = False,
) -> frozenset[Point]:
    """Draw ``count`` distinct dead points uniformly at random.

    By default only inter-stage links (levels ``1..n``) fail; set
    ``include_injections`` to let level-0 input wires fail too (which
    cuts members off entirely).
    """
    levels = range(0 if include_injections else 1, net.n_stages + 1)
    universe = [(t, r) for t in levels for r in range(net.n_ports)]
    if count > len(universe):
        raise ValueError(f"cannot fail {count} of {len(universe)} points")
    rng = ensure_rng(seed)
    chosen = rng.choice(len(universe), size=count, replace=False)
    return frozenset(universe[int(i)] for i in chosen)


@dataclass(frozen=True)
class SurvivabilityReport:
    """Outcome of routing a set of conferences under a fault set."""

    n_conferences: int
    routed: int
    faults: frozenset[Point]

    @property
    def survival_rate(self) -> float:
        """Fraction of conferences still routable."""
        return self.routed / self.n_conferences if self.n_conferences else 1.0


def survivability(
    net: MultistageNetwork,
    conferences: Iterable[Conference],
    faults: frozenset[Point],
    relay_enabled: bool = True,
) -> SurvivabilityReport:
    """Route each conference individually under ``faults``.

    Conferences are evaluated independently (capacity is not the
    question here; routability is).  ``relay_enabled=False`` forces
    final-stage taps, exposing how much of the tolerance comes from the
    relay's tap-level freedom.
    """
    policy = RoutingPolicy(
        tap_policy=TapPolicy.EARLIEST if relay_enabled else TapPolicy.FINAL
    )
    conferences = list(conferences)
    routed = 0
    for conf in conferences:
        try:
            route_conference(net, conf, policy, faults=faults)
        except UnroutableError:
            continue
        routed += 1
    return SurvivabilityReport(
        n_conferences=len(conferences), routed=routed, faults=faults
    )


# Default retry budget for the steady availability experiment: long
# enough to ride out the default fault process's 30-unit mean repairs.
_STEADY_RETRY = RetryPolicy(max_retries=10, base_delay=1.0, backoff=2.0, max_delay=60.0)


def availability_over_time(
    topology: str = "indirect-binary-cube",
    n_ports: int = 32,
    conferences: "Sequence[Conference] | None" = None,
    process: "FaultProcessConfig | None" = None,
    duration: float = 2000.0,
    dilation: "int | None" = None,
    retry: "RetryPolicy | None" = _STEADY_RETRY,
    seed: int = 0,
    load: float = 0.6,
    protection: int = 0,
    tracer=None,
    metrics=None,
) -> list[dict[str, float | int | str]]:
    """Experiment E2, live edition: relay-on vs relay-off availability.

    A fixed conference population is admitted at time zero and wants to
    run for the whole horizon; links then fail and repair according to
    one pre-generated timeline that both variants replay *identically*.
    The self-healing controller walks each affected conference down the
    degradation ladder, and (when ``retry`` is set) dropped calls redial
    with exponential backoff.  Availability is served conference-time
    over demanded conference-time.

    Unlike the stochastic-traffic runs, both variants carry the same
    population — the only difference is the relay — so the comparison
    isolates the paper's redundancy claim instead of mixing in
    admission-stream divergence.  ``dilation`` defaults to ``n_ports``
    (capacity never binds) for the same reason.

    Defaults are chosen to keep the steady experiment non-degenerate: a
    fault process whose repairs the retry budget can ride out.  Without
    redial (``retry=None``, explicitly) — or with a budget shorter than
    the mean repair — the first unroutable drop is a permanent outage to
    the horizon and availability collapses for *both* variants.

    ``protection`` (plan budget F, default 0 = reactive) precomputes
    per-link backup routings: failovers on protected links are O(1)
    plan switches, counted as 0 recovery ticks in the rows' recovery
    distribution, while decisions — availability, drops, reroutes —
    stay bit-identical to the reactive run by construction.

    ``tracer`` / ``metrics`` (optional, see :mod:`repro.obs`) observe
    both replays: each run opens with an ``experiment.run`` event naming
    the relay variant, and the shared registry aggregates the two.  Both
    are pure observation — the rows are byte-identical with or without
    them.
    """
    net = build(topology, n_ports)
    if conferences is None:
        conferences = list(uniform_partition(n_ports, load=load, seed=seed))
    if dilation is None:
        dilation = n_ports
    if process is None:
        process = FaultProcessConfig(mean_time_to_failure=1500.0, mean_time_to_repair=30.0)
    timeline = generate_fault_timeline(net, process, duration, seed=seed)
    rows: list[dict[str, float | int | str]] = []
    for relay in (True, False):
        stats = _replay_steady(
            topology, n_ports, conferences, timeline, duration,
            dilation=dilation, relay_enabled=relay, retry=retry, seed=seed,
            protection=protection, tracer=tracer, metrics=metrics,
        )
        row: dict[str, float | int | str] = {
            "topology": topology,
            "relay": "on" if relay else "off",
            "protection": protection,
            "conferences": len(conferences),
        }
        row.update(stats.summary())
        rows.append(row)
    return rows


def _replay_steady(
    topology: str,
    n_ports: int,
    conferences: Sequence[Conference],
    timeline: "Sequence[FaultTransition]",
    duration: float,
    dilation: int,
    relay_enabled: bool,
    retry: "RetryPolicy | None",
    seed: int,
    protection: int = 0,
    tracer=None,
    metrics=None,
):
    """Run one steady-population replay and return its availability stats."""
    network = ConferenceNetwork.build(
        topology, n_ports, dilation=dilation, relay_enabled=relay_enabled
    )
    if tracer is not None:
        tracer.event(
            "experiment.run",
            t=0.0,
            experiment="availability",
            topology=topology,
            relay="on" if relay_enabled else "off",
        )
    healing = SelfHealingController(
        network, retry=retry, rng=seed, protection=protection,
        tracer=tracer, metrics=metrics,
    )
    # Steady conferences want to run to the horizon: a drop's outage
    # window therefore extends to the end of the experiment.
    healing.on_drop = lambda loop, conf: healing.stats.open_outage(
        conf.conference_id, loop.now, duration
    )
    injector = FaultInjector(network.topology, script=timeline, tracer=tracer)
    healing.attach(injector)
    loop = EventLoop(tracer=tracer)
    for conference in conferences:
        healing.try_join(conference, now=0.0)
    healing.stats.observe(0.0, live=len(healing.live_conferences), degraded=0, down=0)
    injector.start(loop)
    loop.run(until=duration)
    healing.finalize(loop.now)
    return healing.stats


def retry_ablation(
    topology: str = "indirect-binary-cube",
    n_ports: int = 32,
    config: "TrafficConfig | None" = None,
    process: "FaultProcessConfig | None" = None,
    retry: "RetryPolicy | None" = None,
    duration: float = 1000.0,
    dilation: int = 4,
    seed: int = 0,
) -> list[dict[str, float | int | str]]:
    """Retry/backoff vs immediate loss at equal offered load.

    Two stochastic-traffic runs share the seed (same arrival stream,
    same fault timeline); one queues blocked arrivals and dropped calls
    through the bounded-backoff policy, the other loses them outright.
    """
    retry = retry or RetryPolicy()
    rows: list[dict[str, float | int | str]] = []
    for label, policy in (("backoff", retry), ("no-retry", None)):
        run = run_availability(
            topology,
            n_ports,
            dilation=dilation,
            config=config,
            process=process,
            retry=policy,
            duration=duration,
            seed=seed,
        )
        row: dict[str, float | int | str] = {"topology": topology, "retry": label}
        row.update(run.summary())
        rows.append(row)
    return rows


def critical_points(
    net: MultistageNetwork, conference: Conference, relay_enabled: bool = True
) -> frozenset[Point]:
    """Single points of failure for one conference.

    Returns every point whose individual death makes the conference
    unroutable.  With the relay, a conference's critical set shrinks to
    the points *every* surviving tap assignment needs; without it, every
    point of the natural route is critical (banyan paths are unique).
    """
    policy = RoutingPolicy(
        tap_policy=TapPolicy.EARLIEST if relay_enabled else TapPolicy.FINAL
    )
    base = route_conference(net, conference, policy)
    critical = set()
    for point in base.points:
        try:
            route_conference(net, conference, policy, faults=frozenset({point}))
        except UnroutableError:
            critical.add(point)
    return frozenset(critical)
