"""Fault tolerance of conference networks.

A banyan network has a single path between any input/output pair, so a
plain multistage network loses connections as soon as anything breaks.
The per-stage output-multiplexer relay changes that for conferences: a
member whose earliest tap link died can fall back to a *later* level at
which the full combination also reaches its row — the relay is not only
a latency optimization but a redundancy mechanism.  This module
quantifies that: fault injection, survivability measurement, and the
relay-on/relay-off comparison (experiment E2).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.conference import Conference
from repro.core.routing import RoutingPolicy, TapPolicy, UnroutableError, route_conference
from repro.topology.network import MultistageNetwork, Point
from repro.util.rng import ensure_rng

__all__ = [
    "random_link_faults",
    "SurvivabilityReport",
    "survivability",
    "critical_points",
]


def random_link_faults(
    net: MultistageNetwork,
    count: int,
    seed: "int | np.random.Generator | None" = None,
    include_injections: bool = False,
) -> frozenset[Point]:
    """Draw ``count`` distinct dead points uniformly at random.

    By default only inter-stage links (levels ``1..n``) fail; set
    ``include_injections`` to let level-0 input wires fail too (which
    cuts members off entirely).
    """
    levels = range(0 if include_injections else 1, net.n_stages + 1)
    universe = [(t, r) for t in levels for r in range(net.n_ports)]
    if count > len(universe):
        raise ValueError(f"cannot fail {count} of {len(universe)} points")
    rng = ensure_rng(seed)
    chosen = rng.choice(len(universe), size=count, replace=False)
    return frozenset(universe[int(i)] for i in chosen)


@dataclass(frozen=True)
class SurvivabilityReport:
    """Outcome of routing a set of conferences under a fault set."""

    n_conferences: int
    routed: int
    faults: frozenset[Point]

    @property
    def survival_rate(self) -> float:
        """Fraction of conferences still routable."""
        return self.routed / self.n_conferences if self.n_conferences else 1.0


def survivability(
    net: MultistageNetwork,
    conferences: Iterable[Conference],
    faults: frozenset[Point],
    relay_enabled: bool = True,
) -> SurvivabilityReport:
    """Route each conference individually under ``faults``.

    Conferences are evaluated independently (capacity is not the
    question here; routability is).  ``relay_enabled=False`` forces
    final-stage taps, exposing how much of the tolerance comes from the
    relay's tap-level freedom.
    """
    policy = RoutingPolicy(
        tap_policy=TapPolicy.EARLIEST if relay_enabled else TapPolicy.FINAL
    )
    conferences = list(conferences)
    routed = 0
    for conf in conferences:
        try:
            route_conference(net, conf, policy, faults=faults)
        except UnroutableError:
            continue
        routed += 1
    return SurvivabilityReport(
        n_conferences=len(conferences), routed=routed, faults=faults
    )


def critical_points(
    net: MultistageNetwork, conference: Conference, relay_enabled: bool = True
) -> frozenset[Point]:
    """Single points of failure for one conference.

    Returns every point whose individual death makes the conference
    unroutable.  With the relay, a conference's critical set shrinks to
    the points *every* surviving tap assignment needs; without it, every
    point of the natural route is critical (banyan paths are unique).
    """
    policy = RoutingPolicy(
        tap_policy=TapPolicy.EARLIEST if relay_enabled else TapPolicy.FINAL
    )
    base = route_conference(net, conference, policy)
    critical = set()
    for point in base.points:
        try:
            route_conference(net, conference, policy, faults=frozenset({point}))
        except UnroutableError:
            critical.add(point)
    return frozenset(critical)
