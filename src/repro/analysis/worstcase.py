"""Worst-case conflict search: constructions, exhaustive and randomized.

Three complementary ways to find the conflict multiplicity of a
topology, strongest-evidence first:

* :func:`cube_adversarial_set` — an explicit family of disjoint
  2-member conferences that meets the theoretical bound on the indirect
  binary cube, making the ``Θ(sqrt(N))`` law constructive.
* :func:`exhaustive_max_multiplicity` — enumerate *every* disjoint
  conference family (small ``N``); ground truth for all topologies.
* :func:`matching_lower_bound` — exact optimum restricted to 2-member
  conferences at any ``N``: for each link, build the graph of port pairs
  whose route uses it and take a maximum matching (disjointness is
  exactly a matching constraint).
* :func:`randomized_search` — seeded stochastic hill climbing for large
  ``N``; a lower-bound generator used to sanity-check the other two.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.batch import route_batch
from repro.core.conference import Conference, ConferenceSet
from repro.core.routing import RoutingPolicy, route_conference
from repro.obs.metrics import timed
from repro.topology.network import MultistageNetwork, Point
from repro.util.bits import ilog2
from repro.util.rng import ensure_rng
from repro.util.validation import check_network_size
from repro.workloads.partitions import conference_sets

__all__ = [
    "SearchResult",
    "cube_adversarial_set",
    "radix_cube_adversarial_set",
    "exhaustive_max_multiplicity",
    "matching_lower_bound",
    "matching_stage_profile",
    "randomized_search",
]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a worst-case search.

    ``multiplicity`` is the best (largest) link contention found;
    ``witness`` is a conference set achieving it and ``link`` the
    contested link.  ``exact`` records whether the search was exhaustive
    over its declared space.
    """

    multiplicity: int
    witness: "ConferenceSet | None"
    link: "Point | None"
    explored: int
    exact: bool


def cube_adversarial_set(n_ports: int, level: "int | None" = None) -> ConferenceSet:
    """Disjoint conferences meeting the bound on the cube at ``level``.

    For a link entering level ``t`` (default the worst level,
    ``floor(n/2)``), builds ``2**min(t, n-t)`` two-member conferences all
    of whose routes traverse link ``(t, 0)``:

    * ``{i, i << t}`` for ``i = 1 .. 2**min(t, n-t) - 1``: member ``i``
      has zero high bits (it can sit on row 0 at level ``t``) and member
      ``i << t`` has zero low bits (row 0 still leads to its tap);
    * ``{0, N-1}``: port 0 satisfies both conditions itself.

    The returned set achieves ``cube_link_multiplicity(t, n)`` exactly,
    which the tests verify for every ``t`` and a sweep of ``N``.
    """
    n = check_network_size(n_ports)
    if level is None:
        level = n // 2
    if not 1 <= level <= n:
        raise ValueError(f"level must be in [1, {n}], got {level}")
    m = min(level, n - level)
    groups: list[list[int]] = [[i, i << level] for i in range(1, 1 << m)]
    anchor_partner = n_ports - 1
    if anchor_partner == 0:  # N == 1 cannot happen (validated), guard anyway
        raise AssertionError("unreachable: network size >= 2")
    if m == n - m and anchor_partner in {g[1] for g in groups}:
        # N-1 is of the form i << level only when level == 0; impossible here.
        raise AssertionError("unreachable: N-1 has non-zero low bits for level >= 1")
    groups.append([0, anchor_partner])
    return ConferenceSet.of(n_ports, groups)


def radix_cube_adversarial_set(n_ports: int, radix: int, level: int) -> ConferenceSet:
    """The adversarial construction generalized to the radix-``r`` cube.

    ``min(r**level, r**(n-level))`` disjoint 2-member conferences all
    traversing link ``(level, 0)``: pairs ``{i, i * r**level}`` plus the
    anchor ``{0, N-1}`` (port 0 satisfies both link conditions itself).
    """
    from repro.topology.permutations import digit_count

    n = digit_count(n_ports, radix)
    if not 1 <= level <= n:
        raise ValueError(f"level must be in [1, {n}], got {level}")
    m = min(radix ** level, radix ** (n - level))
    groups: list[list[int]] = [[i, i * radix**level] for i in range(1, m)]
    groups.append([0, n_ports - 1])
    return ConferenceSet.of(n_ports, groups)


@timed("repro_exhaustive_search")
def exhaustive_max_multiplicity(
    net: MultistageNetwork,
    policy: "RoutingPolicy | None" = None,
    max_conferences: "int | None" = None,
) -> SearchResult:
    """Ground-truth worst case by full enumeration (use only for N <= 8).

    Routes every family of disjoint conferences (all sizes >= 2) and
    returns the maximum link multiplicity with a witness.  Routing runs
    through the columnar kernel one family at a time, byte-identical to
    the per-object walk it replaced.
    """
    policy = policy or RoutingPolicy()
    best = SearchResult(0, None, None, 0, True)
    explored = 0
    route_cache: dict[tuple[int, ...], frozenset[Point]] = {}
    for cs in conference_sets(net.n_ports, max_conferences=max_conferences):
        explored += 1
        if len(cs) < 2:
            continue
        missing = [conf for conf in cs if conf.members not in route_cache]
        if missing:
            outcomes = route_batch(net, missing, policy)
            for conf, outcome in zip(missing, outcomes):
                route_cache[conf.members] = outcome.unwrap().links
        loads: Counter = Counter()
        for conf in cs:
            links = route_cache.get(conf.members)
            if links is None:
                links = route_conference(net, conf, policy).links
                route_cache[conf.members] = links
            loads.update(links)
        if loads:
            link, mult = max(loads.items(), key=lambda kv: kv[1])
            if mult > best.multiplicity:
                best = SearchResult(mult, cs, link, explored, True)
    return SearchResult(best.multiplicity, best.witness, best.link, explored, True)


def _pair_link_graph(
    net: MultistageNetwork, policy: RoutingPolicy
) -> dict[Point, list[tuple[int, int]]]:
    """For every link, the list of port pairs whose route uses it.

    All ``N(N-1)/2`` pair routes go through the columnar kernel in
    bounded chunks; the per-link pair lists (and the dict's insertion
    order) are identical to the sequential walk.
    """
    by_link: dict[Point, list[tuple[int, int]]] = {}
    pairs = [(a, b) for a in range(net.n_ports) for b in range(a + 1, net.n_ports)]
    chunk = 4096  # bounds resident Route objects, not correctness
    for lo in range(0, len(pairs), chunk):
        part = pairs[lo : lo + chunk]
        outcomes = route_batch(net, [Conference.of(p) for p in part], policy)
        for pair, outcome in zip(part, outcomes):
            for link in outcome.unwrap().links:
                by_link.setdefault(link, []).append(pair)
    return by_link


@timed("repro_matching_bound")
def matching_lower_bound(
    net: MultistageNetwork,
    policy: "RoutingPolicy | None" = None,
) -> SearchResult:
    """Exact worst case over 2-member conferences, any ``N``.

    Disjointness of 2-member conferences through a fixed link is a
    matching constraint on the "uses this link" pair graph, so a maximum
    matching per link gives the exact optimum of the restricted space —
    a lower bound for the unrestricted problem that the universal upper
    bound (and exhaustive search at small N) shows to be tight.
    """
    policy = policy or RoutingPolicy()
    by_link = _pair_link_graph(net, policy)
    best_mult, best_link, best_pairs = 0, None, []
    for link, pairs in by_link.items():
        if len(pairs) <= best_mult:
            continue  # even all-disjoint pairs could not beat the best
        g = nx.Graph(pairs)
        matching = nx.max_weight_matching(g, maxcardinality=True)
        # Keep only matched edges that are themselves qualifying pairs.
        chosen = [tuple(sorted(e)) for e in matching if tuple(sorted(e)) in set(pairs)]
        if len(chosen) > best_mult:
            best_mult, best_link, best_pairs = len(chosen), link, chosen
    witness = ConferenceSet.of(net.n_ports, best_pairs) if best_pairs else None
    explored = sum(len(p) for p in by_link.values())
    return SearchResult(best_mult, witness, best_link, explored, True)


@timed("repro_matching_stage_profile")
def matching_stage_profile(
    net: MultistageNetwork,
    policy: "RoutingPolicy | None" = None,
) -> tuple[int, ...]:
    """Exact per-level worst case over 2-member conferences.

    Entry ``t - 1`` is the maximum multiplicity achievable on any link
    entering level ``t`` — the measured counterpart of
    ``repro.analysis.theory.stage_profile_law``.
    """
    policy = policy or RoutingPolicy()
    by_link = _pair_link_graph(net, policy)
    profile = [0] * net.n_stages
    for link, pairs in by_link.items():
        level = link[0]
        if len(pairs) <= profile[level - 1]:
            continue
        g = nx.Graph(pairs)
        matching = nx.max_weight_matching(g, maxcardinality=True)
        chosen = [tuple(sorted(e)) for e in matching if tuple(sorted(e)) in set(pairs)]
        profile[level - 1] = max(profile[level - 1], len(chosen))
    return tuple(profile)


@timed("repro_randomized_search")
def randomized_search(
    net: MultistageNetwork,
    trials: int = 200,
    pool_size: int = 64,
    policy: "RoutingPolicy | None" = None,
    seed: "int | np.random.Generator | None" = None,
    workers: "int | None" = None,
    chunk_size: "int | None" = None,
) -> SearchResult:
    """Stochastic hill climbing for a high-multiplicity conference set.

    Each trial seeds a random partial matching of the ports, finds the
    most contested link, then greedily re-pairs free ports to add
    conferences crossing that link.  Returns the best witness found;
    this is a *lower* bound and is compared against the exact matching
    bound in the experiments.

    ``workers`` switches to the sharded engine
    (:func:`repro.parallel.experiments.randomized_search_parallel`):
    trials draw from per-trial seed streams, so the result is identical
    for every worker count and chunking — but it is a *different*
    (equally valid) sample than the original single-stream walk, which
    stays the default for backward reproducibility.  The sharded path
    requires ``seed`` to be an integer (or ``None``) and ``net`` to be
    a registry topology.
    """
    policy = policy or RoutingPolicy()
    if workers is not None:
        from repro.parallel.experiments import randomized_search_parallel

        if isinstance(seed, np.random.Generator):
            raise TypeError("the sharded search needs an integer seed, not a Generator")
        return randomized_search_parallel(
            net.name,
            net.n_ports,
            trials=trials,
            pool_size=pool_size,
            policy=policy,
            seed=seed,
            workers=workers,
            chunk_size=chunk_size,
        )
    from repro.parallel.cache import RouteCache

    rng = ensure_rng(seed)
    n = net.n_ports
    ilog2(n)
    cache = RouteCache(net, policy)
    best = SearchResult(0, None, None, 0, False)

    for _ in range(trials):
        ports = rng.permutation(n)
        pairs = [
            (int(ports[2 * i]), int(ports[2 * i + 1]))
            for i in range(min(pool_size, n // 2))
        ]
        # One columnar pass resolves the seed matching; the lookups
        # below then hit.  Decisions are untouched (primed routes are
        # byte-identical), only the routing work is batched.
        cache.prime(pairs)
        loads: Counter = Counter()
        links_of: dict[tuple[int, int], frozenset[Point]] = {}
        for pair in pairs:
            links = cache.route(Conference.of(pair)).links
            links_of[pair] = links
            loads.update(links)
        if not loads:
            continue
        target, _ = max(loads.items(), key=lambda kv: kv[1])
        # Keep only pairs crossing the target link, then top up greedily.
        keep = [p for p in pairs if target in links_of[p]]
        used = {x for p in keep for x in p}
        free = [p for p in range(n) if p not in used]
        rng.shuffle(free)
        for i in range(len(free)):
            if free[i] in used:
                continue  # every inner pair would be skipped anyway
            primed_until = i + 1  # greedy-scan candidates primed so far
            for j in range(i + 1, len(free)):
                a, b = free[i], free[j]
                if a in used or b in used:
                    continue
                if j >= primed_until:
                    # Prime the next block of candidate pairs lazily: a
                    # hit poisons the rest of this scan (``a`` becomes
                    # used), so batching far ahead would route pairs the
                    # sequential walk never asks for.
                    block = []
                    k = j
                    while k < len(free) and len(block) < 64:
                        if free[k] not in used:
                            block.append((min(a, free[k]), max(a, free[k])))
                        k += 1
                    primed_until = k
                    cache.prime(block)
                pair = (min(a, b), max(a, b))
                if target in cache.route(Conference.of(pair)).links:
                    keep.append(pair)
                    used.update(pair)
        if len(keep) > best.multiplicity:
            witness = ConferenceSet.of(n, keep)
            best = SearchResult(len(keep), witness, target, trials, False)
    return SearchResult(best.multiplicity, best.witness, best.link, trials, False)
