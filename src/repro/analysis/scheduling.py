"""Time-division alternative to space dilation.

A network with conflict multiplicity ``f`` can be built two ways: dilate
every link to ``f`` channels (space), or run ``f`` time slots per frame
and schedule conflicting conferences into different slots (time).  The
slot-assignment problem is graph colouring of the *conflict graph*
(vertices = conferences, edges = pairs sharing a link); the maximum link
multiplicity is exactly the largest hyperedge clique and hence a lower
bound on the slot count, but colouring can need more because conflict
relations overlap imperfectly.

This module builds conflict graphs, colours them (greedy largest-first
and DSATUR via networkx), and reports the slots/dilation gap that the
scheduling ablation bench measures.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import networkx as nx

from repro.core.conflict import analyze_conflicts, link_loads
from repro.core.routing import Route

__all__ = ["conflict_graph", "ScheduleResult", "schedule_slots"]


def conflict_graph(routes: Sequence[Route]) -> nx.Graph:
    """Graph with one node per conference, edges between link-sharers.

    Node labels are conference ids; each edge carries one witnessing
    shared link as the attribute ``link``.
    """
    g = nx.Graph()
    routes = list(routes)
    for route in routes:
        g.add_node(route.conference.conference_id)
    for i, a in enumerate(routes):
        for b in routes[i + 1 :]:
            shared = a.links & b.links
            if shared:
                g.add_edge(
                    a.conference.conference_id,
                    b.conference.conference_id,
                    link=min(shared),
                )
    return g


@dataclass(frozen=True)
class ScheduleResult:
    """A slot assignment for a set of conference routes.

    ``slots[cid]`` is the time slot of conference ``cid``; ``n_slots``
    is the frame length; ``clique_bound`` is the max link multiplicity
    (no schedule can beat it).
    """

    slots: dict[int, int]
    n_slots: int
    clique_bound: int
    strategy: str

    @property
    def optimal(self) -> bool:
        """True when the schedule meets the link-multiplicity bound."""
        return self.n_slots == self.clique_bound

    def conferences_in_slot(self, slot: int) -> tuple[int, ...]:
        """Conference ids assigned to one slot."""
        return tuple(sorted(c for c, s in self.slots.items() if s == slot))


def schedule_slots(routes: Sequence[Route], strategy: str = "DSATUR") -> ScheduleResult:
    """Colour the conflict graph into time slots.

    ``strategy`` is any networkx ``greedy_color`` strategy name
    (``DSATUR`` and ``largest_first`` are the useful ones here).
    Verifies the produced schedule: no two same-slot conferences share a
    link.
    """
    routes = list(routes)
    # Validate the strategy before the empty-input early return: an
    # unknown strategy is a caller bug whether or not there is anything
    # to colour, and the TDM mode builds schedules from live route sets
    # that are legitimately empty between sessions.
    name_map = {"DSATUR": "DSATUR", "largest_first": "largest_first"}
    try:
        nx_strategy = name_map[strategy]
    except KeyError:
        raise ValueError(f"unknown strategy {strategy!r}; known: {sorted(name_map)}") from None
    graph = conflict_graph(routes)
    if len(routes) == 0:
        return ScheduleResult(slots={}, n_slots=0, clique_bound=0, strategy=strategy)
    colouring = nx.coloring.greedy_color(graph, strategy=nx_strategy)
    n_slots = (max(colouring.values()) + 1) if colouring else 1

    by_id = {r.conference.conference_id: r for r in routes}
    for a, b in graph.edges():
        if colouring[a] == colouring[b]:
            raise AssertionError(f"colouring put conflicting conferences {a},{b} in one slot")
    # Independent re-check against raw link loads per slot.
    for slot in range(n_slots):
        slot_routes = [by_id[c] for c, s in colouring.items() if s == slot]
        loads = link_loads(slot_routes)
        if loads and max(loads.values()) > 1:
            raise AssertionError(f"slot {slot} still has a link conflict")

    clique = analyze_conflicts(routes, n_stages=routes[0].n_stages).max_multiplicity
    return ScheduleResult(
        slots=dict(colouring),
        n_slots=n_slots,
        clique_bound=max(clique, 1),
        strategy=strategy,
    )
