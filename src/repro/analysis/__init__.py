"""Analysis: closed-form theory, worst-case search, hardware cost, equivalence."""

from repro.analysis.cost import (
    HardwareCost,
    cost_table,
    crossbar_cost,
    direct_network_cost,
    yang2001_cost,
)
from repro.analysis.erlang import (
    LinkLoadModel,
    erlang_b,
    estimate_link_model,
    predicted_blocking,
)
from repro.analysis.equivalence import (
    find_port_relabelling,
    path_matrix_signature,
    same_structure,
)
from repro.analysis.theory import (
    cube_link_multiplicity,
    cube_route_points,
    cube_route_rows,
    cube_tap_level,
    cube_uses_link,
    general_link_multiplicity_bound,
    max_multiplicity_bound,
    omega_full_combination_rows,
    omega_link_multiplicity_bound,
    omega_reachable_mask,
    omega_tap_level,
    relay_tap_slots_bound,
    stage_profile_law,
)
from repro.analysis.resilience import (
    SurvivabilityReport,
    critical_points,
    random_link_faults,
    survivability,
)
from repro.analysis.scheduling import ScheduleResult, conflict_graph, schedule_slots
from repro.analysis.worstcase import (
    SearchResult,
    cube_adversarial_set,
    exhaustive_max_multiplicity,
    matching_lower_bound,
    matching_stage_profile,
    randomized_search,
)

__all__ = [
    "HardwareCost",
    "LinkLoadModel",
    "ScheduleResult",
    "SurvivabilityReport",
    "conflict_graph",
    "critical_points",
    "erlang_b",
    "estimate_link_model",
    "predicted_blocking",
    "random_link_faults",
    "schedule_slots",
    "survivability",
    "SearchResult",
    "cost_table",
    "crossbar_cost",
    "cube_adversarial_set",
    "cube_route_points",
    "cube_route_rows",
    "cube_tap_level",
    "cube_uses_link",
    "direct_network_cost",
    "exhaustive_max_multiplicity",
    "find_port_relabelling",
    "cube_link_multiplicity",
    "general_link_multiplicity_bound",
    "matching_lower_bound",
    "matching_stage_profile",
    "max_multiplicity_bound",
    "omega_full_combination_rows",
    "omega_reachable_mask",
    "omega_tap_level",
    "path_matrix_signature",
    "randomized_search",
    "same_structure",
    "omega_link_multiplicity_bound",
    "relay_tap_slots_bound",
    "stage_profile_law",
    "yang2001_cost",
]
