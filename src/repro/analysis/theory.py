"""Closed-form theory of conference routing conflicts.

This module states, as executable formulas, the analytical results our
reproduction derives for the paper's question (see DESIGN.md for the
full derivation and the source-text caveat).  Everything here is
*verified against the generic routing engine* by the test suite —
exhaustively at small ``N`` and by exact matching search beyond — so the
formulas function as theorems about the implemented system, not just
assertions.

Main results
------------

1. **Cube link-usage law.** On the indirect binary cube, the natural
   route of conference ``S`` uses inter-stage link ``(t, r)`` iff some
   member agrees with ``r`` on bits ``t..n-1`` and some member agrees
   with ``r`` on bits ``0..t-1`` (:func:`cube_uses_link`).

2. **Cube/baseline per-stage law.** On the indirect binary cube at most
   ``f(t) = min(2**t, 2**(n-t))`` disjoint conferences can use one
   level-``t`` link: the link's backward cone contains at most ``2**t``
   inputs and each conference must own one, while the link's forward
   cones are *nested row sets* within one aligned block, so all
   reachable tap rows live in a set of ``2**(n-t)`` rows, of which each
   conference must own one.  The bound is met by the explicit
   construction :func:`~repro.analysis.worstcase.cube_adversarial_set`;
   baseline measures to exactly the same profile (its forward cones nest
   the same way within its recursive blocks).

3. **Omega is different.** Omega's forward cones *shift* across levels
   rather than nest, so the reachable tap rows across levels
   ``t..n`` number up to ``2**(n-t+1) - 1``, giving the weaker law
   ``f(t) <= min(2**t, 2**(n-t+1) - 1)`` — and omega really does exceed
   the cube law (multiplicity 3 at ``N = 8`` where the cube gives 2;
   6 at ``N = 32`` where the cube gives 4).  The slot bound is not
   always met because a member's tap level is pinned to its *earliest*
   full-combination level; the exact values are measured by
   :func:`~repro.analysis.worstcase.matching_stage_profile`.

4. **Network-wide worst case.** ``2**floor(n/2) = Θ(sqrt(N))`` for the
   cube and baseline (:func:`max_multiplicity_bound`); for omega the
   same at even ``n`` but up to ``2**((n+1)/2) - 1`` — roughly ``sqrt(2)``
   times worse — at odd ``n``.

5. **Aligned placement is conflict-free on the cube.**  A conference
   confined to an aligned block never routes outside the block's rows
   (:func:`cube_route_rows`), so block-disjoint conferences share no
   links — the Yang-2001 guarantee the paper's design question starts
   from.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.conference import Conference
from repro.util.bits import (
    bit_window,
    enclosing_block_exponent,
    high_bits,
    low_bits,
    same_high_bits,
    same_low_bits,
)
from repro.util.validation import check_network_size

__all__ = [
    "cube_link_multiplicity",
    "omega_link_multiplicity_bound",
    "general_link_multiplicity_bound",
    "relay_tap_slots_bound",
    "max_multiplicity_bound",
    "stage_profile_law",
    "cube_tap_level",
    "cube_uses_link",
    "cube_route_rows",
    "cube_route_points",
    "omega_reachable_mask",
    "omega_full_combination_rows",
    "omega_tap_level",
    "expected_unique_path_links",
    "radix_cube_link_multiplicity",
    "radix_max_multiplicity",
]


# ---------------------------------------------------------------------------
# Per-stage multiplicity laws
# ---------------------------------------------------------------------------

def cube_link_multiplicity(t: int, n: int) -> int:
    """Exact max disjoint conferences through a level-``t`` cube link.

    ``f(t) = min(2**t, 2**(n-t))`` for an ``N = 2**n`` indirect binary
    cube — proved by the nested-cone counting argument and achieved by
    :func:`~repro.analysis.worstcase.cube_adversarial_set`.  Measured to
    be exact for the baseline network as well.
    """
    if not 1 <= t <= n:
        raise ValueError(f"link level t must be in [1, {n}], got {t}")
    return 1 << min(t, n - t)


def relay_tap_slots_bound(t: int, n: int) -> int:
    """Upper bound on tap rows reachable from one level-``t`` link.

    A level-``t`` point reaches at most ``2**d`` rows at level ``t+d``;
    summed over the remaining levels that is ``2**(n-t+1) - 1`` distinct
    (level, row) slots, hence at most that many distinct tap *rows*.
    Loose when the per-level cones overlap as row sets (they nest on the
    cube and baseline, collapsing the bound to ``2**(n-t)``).
    """
    if not 1 <= t <= n:
        raise ValueError(f"link level t must be in [1, {n}], got {t}")
    return (1 << (n - t + 1)) - 1


def general_link_multiplicity_bound(t: int, n: int) -> int:
    """Universal per-link bound for any banyan 2x2 network with relay.

    ``min(2**t, 2**(n-t+1) - 1)``: one distinct backward-cone input and
    one distinct reachable tap row per conference.
    """
    return min(1 << t, relay_tap_slots_bound(t, n))


def omega_link_multiplicity_bound(t: int, n: int) -> int:
    """Per-link bound specialized to omega (same as the general bound).

    Omega's shifting cones can keep the per-level tap sets disjoint, so
    it genuinely exceeds the cube law (e.g. 3 vs 2 at ``N = 8``, level
    2); the earliest-tap pinning keeps it slightly below this bound at
    some levels, which the matching experiments quantify.
    """
    return general_link_multiplicity_bound(t, n)


def max_multiplicity_bound(n: int, topology: str = "indirect-binary-cube") -> int:
    """Worst-case conflict multiplicity over the whole network.

    For the cube and baseline this is the exact ``2**floor(n/2)`` =
    ``Θ(sqrt(N))``.  For omega it is the per-link bound maximized over
    levels: the same value at even ``n``, ``2**((n+1)//2) - 1`` at odd
    ``n``.
    """
    if n < 1:
        raise ValueError(f"need at least one stage, got n={n}")
    if topology == "omega":
        return max(general_link_multiplicity_bound(t, n) for t in range(1, n + 1))
    return 1 << (n // 2)


def stage_profile_law(n: int, topology: str = "indirect-binary-cube") -> tuple[int, ...]:
    """The per-link-level law as a profile ``(f(1), ..., f(n))``.

    Exact for the cube and (measured) baseline; an upper bound for
    omega.
    """
    if topology == "omega":
        return tuple(omega_link_multiplicity_bound(t, n) for t in range(1, n + 1))
    return tuple(cube_link_multiplicity(t, n) for t in range(1, n + 1))


# ---------------------------------------------------------------------------
# Indirect binary cube closed forms
# ---------------------------------------------------------------------------

def cube_tap_level(members: Iterable[int], n: int) -> int:
    """Earliest level at which the cube combines a conference fully.

    Equals the enclosing-block exponent ``K``: after stage ``K`` *every*
    row of the block carries the full combination, and no member row
    does earlier.  Identical for all members (unlike omega).
    """
    return enclosing_block_exponent(members, n)


def cube_uses_link(conference: "Conference | Sequence[int]", t: int, r: int, n_ports: int) -> bool:
    """Closed-form predicate: does the natural cube route use link ``(t, r)``?

    True iff ``t`` is at most the conference's tap level ``K`` and the
    two existential conditions hold: a member matching ``r`` on bits
    ``t..n-1`` (its signal can sit on the link) and a member matching
    ``r`` on bits ``0..t-1`` (the link still leads to a tap).
    """
    n = check_network_size(n_ports)
    members = conference.members if isinstance(conference, Conference) else tuple(conference)
    if not 1 <= t <= n:
        raise ValueError(f"link level t must be in [1, {n}], got {t}")
    if t > cube_tap_level(members, n):
        return False
    fwd = any(same_high_bits(s, r, t, n) for s in members)
    bwd = any(same_low_bits(j, r, t) for j in members)
    return fwd and bwd


def cube_route_rows(conference: "Conference | Sequence[int]", t: int, n_ports: int) -> frozenset[int]:
    """All rows whose level-``t`` link the natural cube route uses.

    Derived from :func:`cube_uses_link`: the used rows are exactly
    ``{prefix | mid | lo}`` where ``prefix`` is the conference's common
    high bits, ``mid`` ranges over members' bits ``t..K-1`` and ``lo``
    over members' bits ``0..t-1``.  Always a subset of the enclosing
    aligned block — the fact behind the aligned-placement guarantee.
    """
    n = check_network_size(n_ports)
    members = conference.members if isinstance(conference, Conference) else tuple(conference)
    k = cube_tap_level(members, n)
    if t > k:
        return frozenset()
    prefix = high_bits(members[0], k, n) << k
    mids = {bit_window(m, t, k) for m in members}
    los = {low_bits(m, t) for m in members}
    return frozenset(prefix | (mid << t) | lo for mid in mids for lo in los)


def cube_route_points(conference: "Conference | Sequence[int]", n_ports: int) -> frozenset[tuple[int, int]]:
    """Every point the natural cube route occupies, in closed form.

    Level-0 points are the member injections; deeper levels follow
    :func:`cube_route_rows`.  Cross-validated against the generic
    routing engine in the test suite (exhaustively at ``N = 8``).
    """
    members = conference.members if isinstance(conference, Conference) else tuple(conference)
    n = check_network_size(n_ports)
    points = {(0, m) for m in members}
    for t in range(1, cube_tap_level(members, n) + 1):
        points.update((t, r) for r in cube_route_rows(members, t, n_ports))
    return frozenset(points)


# ---------------------------------------------------------------------------
# Omega closed forms
# ---------------------------------------------------------------------------

def omega_reachable_mask(source: int, t: int, r: int, n: int) -> bool:
    """Can input ``source`` reach point ``(t, r)`` in an omega network?

    After ``t`` shuffle-exchange stages the low ``n - t`` bits of the
    source occupy the high ``n - t`` bits of the row; the ``t`` bits
    shuffled past the exchanges are free.
    """
    return low_bits(source, n - t) == high_bits(r, t, n)


def omega_full_combination_rows(members: Iterable[int], t: int, n: int) -> frozenset[int]:
    """Rows carrying the full combination at level ``t`` of an omega network.

    Non-empty iff all members agree on their low ``n - t`` bits; then the
    qualifying rows are those whose high bits equal that common suffix.
    """
    members = tuple(members)
    suffixes = {low_bits(m, n - t) for m in members}
    if len(suffixes) != 1:
        return frozenset()
    suffix = next(iter(suffixes))
    return frozenset((suffix << t) | lo for lo in range(1 << t))


def omega_tap_level(members: Iterable[int], member: int, n: int) -> int:
    """Earliest level at which omega fully combines ``members`` on
    ``member``'s own row.

    Unlike the cube, omega tap levels vary per member: the combined
    signal first forms on rows named by the members' common *suffix*,
    which generally differ from the member rows, and must fan out
    further to reach them.
    """
    members = tuple(members)
    if member not in members:
        raise ValueError(f"port {member} is not among the members")
    for t in range(n + 1):
        if member in omega_full_combination_rows(members, t, n):
            return t
    raise AssertionError("omega has full access; level n always combines")


# ---------------------------------------------------------------------------
# Routing-cost model
# ---------------------------------------------------------------------------

def expected_unique_path_links(n: int) -> int:
    """Links on one unique input->output path: one per stage."""
    return n


# ---------------------------------------------------------------------------
# Radix-r generalization (extension)
# ---------------------------------------------------------------------------

def radix_cube_link_multiplicity(t: int, n: int, radix: int) -> int:
    """Exact per-link law for the radix-``r`` cube: ``min(r**t, r**(n-t))``.

    The binary argument generalizes verbatim: a level-``t`` link's
    backward cone holds ``r**t`` inputs and its (nested) forward tap
    rows number ``r**(n-t)``; the pair construction
    ``{i, i * r**t}`` meets the bound.  Verified by matching-exact
    search in the radix tests.
    """
    if radix < 2:
        raise ValueError(f"radix must be >= 2, got {radix}")
    if not 1 <= t <= n:
        raise ValueError(f"link level t must be in [1, {n}], got {t}")
    return radix ** min(t, n - t)


def radix_max_multiplicity(n: int, radix: int) -> int:
    """Network worst case for the radix-``r`` cube: ``r**floor(n/2)``.

    At equal port count ``N = r**n = 2**(n log2 r)``, a larger radix
    gives ``N**(1/2)`` with a smaller exponent base count — e.g. at
    ``N = 64`` the worst case drops from 8 (radix 2) to 4 (radix 4) —
    trading bigger switch modules for less link dilation (experiment
    E4 prices the exchange).
    """
    if n < 1:
        raise ValueError(f"need at least one stage, got n={n}")
    return radix ** (n // 2)
