"""ASCII rendering of networks and conference routes.

For small networks these renderings show the full layered structure
with the links one or more conferences occupy, which is how the
examples and the CLI visualize conflicts without a plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.routing import Route
from repro.topology.network import MultistageNetwork

__all__ = ["render_network", "render_routes", "render_stage_profile"]

_MAX_RENDER_PORTS = 64


def render_network(net: MultistageNetwork) -> str:
    """Draw the switch pairings of each stage, one row of text per port.

    Each stage column shows the switch index a row's signal enters,
    making the wiring pattern visible (e.g. omega's shifting pairs vs
    the cube's bit-``s`` pairs).
    """
    if net.n_ports > _MAX_RENDER_PORTS:
        raise ValueError(f"rendering is readable only up to N={_MAX_RENDER_PORTS}")
    width = len(str(net.n_ports // 2 - 1))
    lines = [f"{net.name}: N={net.n_ports}, {net.n_stages} stages (cell = switch index)"]
    header = "row | " + " ".join(f"s{t}".rjust(width + 1) for t in range(net.n_stages))
    lines.append(header)
    lines.append("-" * len(header))
    for row in range(net.n_ports):
        cells = " ".join(
            str(net.stages[t].switch_of_row(row)).rjust(width + 1)
            for t in range(net.n_stages)
        )
        lines.append(f"{row:3d} | {cells}")
    return "\n".join(lines)


def render_routes(net: MultistageNetwork, routes: Sequence[Route]) -> str:
    """Draw link occupancy: one text row per port, one column per level.

    Cells show which conference(s) occupy the inter-stage link on that
    (row, level); ``*`` marks contested links (two or more conferences),
    the paper's conflicts made visible.
    """
    if net.n_ports > _MAX_RENDER_PORTS:
        raise ValueError(f"rendering is readable only up to N={_MAX_RENDER_PORTS}")
    owners: dict[tuple[int, int], list[int]] = {}
    for route in routes:
        cid = route.conference.conference_id
        for link in route.links:
            owners.setdefault(link, []).append(cid)
    taps = {
        (t, port): route.conference.conference_id
        for route in routes
        for port, t in route.taps.items()
    }
    cell_w = max(3, max((len(_owners_cell(v)) for v in owners.values()), default=3))
    lines = [f"link occupancy ({net.name}); '*'=conflict, '>'=mux tap"]
    header = "row | " + " ".join(f"L{t}".rjust(cell_w) for t in range(1, net.n_stages + 1))
    lines.append(header)
    lines.append("-" * len(header))
    for row in range(net.n_ports):
        cells = []
        for level in range(1, net.n_stages + 1):
            cell = _owners_cell(owners.get((level, row), []))
            if (level, row) in taps:
                cell = (cell + ">") if cell != "." else ">"
            cells.append(cell.rjust(cell_w))
        lines.append(f"{row:3d} | " + " ".join(cells))
    return "\n".join(lines)


def _owners_cell(cids: list[int]) -> str:
    if not cids:
        return "."
    text = "+".join(str(c) for c in sorted(cids))
    return f"*{text}" if len(cids) > 1 else text


def render_stage_profile(
    profiles: dict[str, Sequence[int]], title: str = "per-stage conflict multiplicity"
) -> str:
    """Bar-chart-ish rendering of per-stage profiles, one line per series."""
    lines = [title]
    for name, profile in profiles.items():
        bars = "  ".join(f"t={t + 1}:{v}" for t, v in enumerate(profile))
        lines.append(f"  {name:24s} {bars}")
    return "\n".join(lines)
