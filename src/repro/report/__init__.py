"""Text rendering of networks, routes and experiment tables."""

from repro.report.ascii import render_network, render_routes, render_stage_profile
from repro.report.serialize import (
    conference_set_from_dict,
    conference_set_to_dict,
    conflict_report_to_dict,
    load_conference_set,
    route_to_dict,
    save_json,
)
from repro.report.tables import format_value, render_table, write_csv

__all__ = [
    "conference_set_from_dict",
    "conference_set_to_dict",
    "conflict_report_to_dict",
    "format_value",
    "load_conference_set",
    "route_to_dict",
    "save_json",
    "render_network",
    "render_routes",
    "render_stage_profile",
    "render_table",
    "write_csv",
]
