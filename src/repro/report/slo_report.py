"""Rendering of a live SLO evaluation for the CLI and JSON reports.

The :class:`~repro.obs.slo.SLOEvaluator` caches its last full status
document (the same shape the ``/slo`` endpoint serves); this module
turns that document into the shared result-serializer dict and the
row shapes :func:`~repro.report.tables.render_table` draws.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.obs.slo import SLOEvaluator

__all__ = ["build_slo_report", "slo_rows"]


def _fmt_quantile(value: "float | None") -> str:
    if value is None:
        return "-"
    if value != value or value in (float("inf"), float("-inf")):
        return "inf"
    return f"{value:g}"


def build_slo_report(
    slo: "SLOEvaluator", *, context: "dict[str, Any] | None" = None
) -> dict[str, Any]:
    """The shared-schema JSON document of one evaluator's final state.

    ``context`` (workload parameters, throughput, ...) rides along
    verbatim so a report file is self-describing.  The evaluator's own
    status document is embedded unchanged — the file a drill writes and
    the body the live ``/slo`` endpoint served during the run agree.
    """
    status = slo.last or {
        "t": 0.0,
        "state": "ok",
        "slos": {name: {"name": name, "state": "ok"} for name in sorted(slo.specs)},
    }
    report: dict[str, Any] = {
        "kind": "slo_report",
        "ok": status["state"] != "page",
        "state": status["state"],
        "t": status["t"],
        "slos": status["slos"],
    }
    if context:
        report["context"] = dict(context)
    return report


def slo_rows(slo: "SLOEvaluator") -> list[dict[str, Any]]:
    """Per-objective table rows of the evaluator's last evaluation."""
    status = slo.last or {"slos": {}}
    rows: list[dict[str, Any]] = []
    for name in sorted(status["slos"]):
        st = status["slos"][name]
        windows = st.get("windows", ())
        burn = max((w["burn_rate"] for w in windows), default=0.0)
        pct = st.get("percentiles") or {}
        rows.append(
            {
                "slo": name,
                "state": st.get("state", "ok"),
                "objective": st.get("objective", ""),
                "burn": round(burn, 3),
                "breaches": st.get("breaches", 0),
                "p50": _fmt_quantile(pct.get("p50")),
                "p95": _fmt_quantile(pct.get("p95")),
                "p99": _fmt_quantile(pct.get("p99")),
            }
        )
    return rows
