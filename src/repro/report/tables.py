"""Aligned text tables and CSV output for experiment results.

Every benchmark prints its rows through :func:`render_table` so the
regenerated tables look like the tables in a paper; :func:`write_csv`
persists the same rows for downstream tooling.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path

__all__ = ["render_table", "write_csv", "format_value"]


def format_value(value: object) -> str:
    """Render one cell: floats to 4 significant digits, rest via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: "Sequence[str] | None" = None,
    title: "str | None" = None,
) -> str:
    """Render dict rows as an aligned monospace table.

    ``columns`` fixes the column order (default: keys of the first row).
    Returns the table as a string; callers print or log it.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) for i, col in enumerate(columns)
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    out.write(header + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for r in cells:
        out.write("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) + "\n")
    return out.getvalue().rstrip("\n")


def write_csv(
    path: "str | Path",
    rows: Iterable[Mapping[str, object]],
    columns: "Sequence[str] | None" = None,
) -> Path:
    """Write dict rows to a CSV file, creating parent directories."""
    rows = list(rows)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if columns is None:
        columns = list(rows[0].keys()) if rows else []
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path
