"""JSON serialization of conference-network objects.

Experiments and operational tools need to persist and exchange
conference sets, routes and conflict reports.  The format is plain
JSON with a ``kind`` discriminator and a schema version, so files stay
readable by humans and future versions.
"""

from __future__ import annotations

import enum
import json
from collections.abc import Mapping
from pathlib import Path
from typing import Any

from repro.core.conference import Conference, ConferenceSet
from repro.core.conflict import ConflictReport
from repro.core.routing import Route

__all__ = [
    "conference_set_to_dict",
    "conference_set_from_dict",
    "result_to_dict",
    "route_to_dict",
    "conflict_report_to_dict",
    "save_json",
    "load_conference_set",
]

SCHEMA_VERSION = 1


def _jsonify(value: Any, path: str) -> Any:
    """Coerce a result payload field to a JSON-ready value.

    Nested result objects serialize through their own ``as_dict`` and
    enums through their values; anything else non-JSON raises with the
    dotted path of the offending field, so a bad report fails loudly at
    serialization time instead of deep inside ``json.dumps``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return _jsonify(value.value, path)
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v, f"{path}.{k}") for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v, f"{path}[{i}]") for i, v in enumerate(value)]
    if isinstance(value, (set, frozenset)):
        return [_jsonify(v, f"{path}[{i}]") for i, v in enumerate(sorted(value, key=repr))]
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        return _jsonify(as_dict(), path)
    raise TypeError(
        f"result field {path} is not JSON-serializable "
        f"(got {type(value).__name__})"
    )


def result_to_dict(result: Any) -> dict[str, Any]:
    """Serialize any :data:`repro.api.Result` conformer, uniformly.

    The one place operation verdicts become JSON: realization results,
    healing submit outcomes, service responses, and bench reports all
    pass through here (the CLI's ``--json`` paths use this), so every
    verdict carries the same envelope — ``kind`` discriminator, schema
    version, ``ok``, and ``reason``.  Nested payload objects with their
    own ``as_dict`` serialize recursively; a field that cannot become
    JSON raises :class:`TypeError` naming its dotted path.
    """
    for attr in ("ok", "reason", "as_dict"):
        if not hasattr(result, attr):
            raise TypeError(
                f"{type(result).__name__} does not satisfy the result contract "
                f"(missing {attr!r})"
            )
    payload = result.as_dict()
    payload.setdefault("kind", type(result).__name__)
    payload.setdefault("ok", bool(result.ok))
    payload.setdefault("reason", result.reason)
    payload["schema"] = SCHEMA_VERSION
    return _jsonify(payload, payload["kind"])


def conference_set_to_dict(cs: ConferenceSet) -> dict[str, Any]:
    """A JSON-ready description of a conference set."""
    return {
        "kind": "conference_set",
        "schema": SCHEMA_VERSION,
        "n_ports": cs.n_ports,
        "conferences": [
            {"id": c.conference_id, "members": list(c.members)} for c in cs
        ],
    }


def conference_set_from_dict(data: dict[str, Any]) -> ConferenceSet:
    """Rebuild a conference set; validates kind, schema and disjointness."""
    if data.get("kind") != "conference_set":
        raise ValueError(f"expected kind 'conference_set', got {data.get('kind')!r}")
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {data.get('schema')!r}")
    confs = tuple(
        Conference.of(entry["members"], conference_id=entry["id"])
        for entry in data["conferences"]
    )
    return ConferenceSet(n_ports=data["n_ports"], conferences=confs)


def route_to_dict(route: Route) -> dict[str, Any]:
    """A JSON-ready description of a computed route.

    Levels serialize as ``[[row, mask], ...]`` per level so the carried
    combinations stay inspectable.
    """
    return {
        "kind": "route",
        "schema": SCHEMA_VERSION,
        "conference": {
            "id": route.conference.conference_id,
            "members": list(route.conference.members),
        },
        "n_ports": route.n_ports,
        "n_stages": route.n_stages,
        "taps": {str(port): level for port, level in sorted(route.taps.items())},
        "levels": [
            sorted([row, mask] for row, mask in rows.items()) for rows in route.levels
        ],
        "links": sorted(list(link) for link in route.links),
    }


def conflict_report_to_dict(report: ConflictReport) -> dict[str, Any]:
    """A JSON-ready description of a conflict report."""
    return {
        "kind": "conflict_report",
        "schema": SCHEMA_VERSION,
        "n_conferences": report.n_conferences,
        "max_multiplicity": report.max_multiplicity,
        "worst_link": list(report.worst_link) if report.worst_link else None,
        "stage_profile": list(report.stage_profile),
        "load_histogram": [list(pair) for pair in report.load_histogram],
        "conflict_free": report.conflict_free,
    }


def save_json(path: "str | Path", payload: dict[str, Any]) -> Path:
    """Write a serialized object to disk (pretty-printed, stable keys)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_conference_set(path: "str | Path") -> ConferenceSet:
    """Read a conference set saved by :func:`save_json`."""
    data = json.loads(Path(path).read_text())
    return conference_set_from_dict(data)
