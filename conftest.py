"""Ensure the in-tree package is importable even without installation."""
import sys
from pathlib import Path

_src = str(Path(__file__).parent / "src")
if _src not in sys.path:
    sys.path.insert(0, _src)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden regression corpus under tests/golden/ "
        "from the current behavior instead of comparing against it",
    )
