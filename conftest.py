"""Ensure the in-tree package is importable even without installation."""
import sys
from pathlib import Path

_src = str(Path(__file__).parent / "src")
if _src not in sys.path:
    sys.path.insert(0, _src)
