#!/usr/bin/env python
"""Survey the paper's design space: baseline vs omega vs indirect binary cube.

Answers the abstract's question experimentally for a chosen N: which
standard multistage topology makes the best conference network under
(a) adversarial traffic, (b) random traffic, and (c) hardware cost at
the resulting provisioning.

Run:  python examples/topology_survey.py [N]
"""

import sys

import numpy as np

from repro import ConferenceNetwork, PAPER_TOPOLOGIES
from repro.analysis.cost import direct_network_cost
from repro.analysis.theory import max_multiplicity_bound
from repro.analysis.worstcase import matching_lower_bound, matching_stage_profile
from repro.report.tables import render_table
from repro.topology.builders import build
from repro.workloads.generators import uniform_partition


def main(n_ports: int = 32) -> None:
    n = n_ports.bit_length() - 1
    rows = []
    for name in PAPER_TOPOLOGIES:
        net = build(name, n_ports)

        # (a) Adversarial: exact worst case over 2-member conferences.
        worst = matching_lower_bound(net).multiplicity
        profile = matching_stage_profile(net)

        # (b) Random traffic at 75% load.
        cn = ConferenceNetwork.build(name, n_ports, dilation=n_ports)
        dils = []
        for seed in range(25):
            cs = uniform_partition(n_ports, load=0.75, seed=seed)
            dils.append(cn.conflicts(cn.route_set(cs)).required_dilation)

        # (c) Hardware priced at worst-case provisioning.
        cost = direct_network_cost(n_ports, topology=name, dilation=worst)

        rows.append({
            "topology": name,
            "worst_dilation": worst,
            "stage_profile": " ".join(map(str, profile)),
            "random_p95_dilation": float(np.percentile(dils, 95)),
            "gates_at_worst_provisioning": cost.total_gate_equivalents,
        })

    print(render_table(rows, title=f"conference-network survey, N={n_ports}"))
    bound = max_multiplicity_bound(n)
    omega_bound = max_multiplicity_bound(n, topology="omega")
    print(f"\ncube/baseline law: 2^floor(n/2) = {bound}; "
          f"omega upper bound: {omega_bound}")
    print(
        "Takeaway: baseline and the indirect binary cube share the "
        "Θ(sqrt(N)) law; omega pays more at odd n. All three answer the "
        "paper's question: standard topologies *do* work, at sqrt(N)-fold "
        "link dilation."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
