#!/usr/bin/env python
"""Fault tolerance and mixed group traffic on conference networks.

Three stories in one script:

1. **Fragility of banyan conference networks, and what fixes it.**
   Kill one inter-stage link under a live conference: the plain cube
   drops it (unique paths!), while the extra-stage cube re-routes
   through the redundant stage — the output-multiplexer relay picking a
   late tap is what makes the redundancy usable.

2. **Self-healing under live faults.**  Links fail and repair as a
   seeded stochastic process while conferences are up; the
   ``SelfHealingController`` walks each affected conference down the
   degradation ladder (hitless tap move -> reroute -> drop+retry) and
   the availability ledger scores the outcome.

3. **Group communication beyond conferences.**  The same fabric carries
   multicasts (one speaker, many listeners) and asymmetric groups (a
   panel talks, an audience listens), and the conflict analysis treats
   mixed traffic uniformly.

Run:  python examples/fault_tolerant_conferencing.py
"""

from repro import (
    Conference,
    ConferenceNetwork,
    GroupConnection,
    RetryPolicy,
    SelfHealingController,
    UnroutableError,
    route_group,
)
from repro.analysis.resilience import critical_points, survivability, random_link_faults
from repro.core.conflict import analyze_conflicts
from repro.core.routing import route_conference
from repro.sim.engine import EventLoop
from repro.sim.faults import FaultInjector, FaultTransition
from repro.topology.builders import build

N_PORTS = 16


def fault_story() -> None:
    conf = Conference.of([0, 1])
    cube = build("indirect-binary-cube", N_PORTS)
    augmented = build("extra-stage-cube", N_PORTS)

    route = route_conference(cube, conf)
    victim = min(route.links)
    print(f"conference {list(conf.members)} on the plain cube uses links "
          f"{sorted(route.links)}")
    print(f"killing link {victim} ...")
    try:
        route_conference(cube, conf, faults=frozenset({victim}))
        print("  plain cube: survived (unexpected!)")
    except UnroutableError as exc:
        print(f"  plain cube: DROPPED - {exc}")

    rerouted = route_conference(augmented, conf, faults=frozenset({victim}))
    print(f"  extra-stage cube: survived; member taps moved to {rerouted.taps} "
          f"(the redundant stage re-toggles bit 0)")

    print("\nsingle points of failure (relay on):")
    for name in ("indirect-binary-cube", "extra-stage-cube", "benes-cube"):
        crit = critical_points(build(name, N_PORTS), conf)
        print(f"  {name:22s} {len(crit):2d} critical points: {sorted(crit)}")

    print("\nsurvival of a 4-conference population under 4 random dead links:")
    confs = [Conference.of(m, i) for i, m in enumerate([(0, 1), (2, 7), (4, 5, 6), (8, 15)])]
    for name in ("indirect-binary-cube", "extra-stage-cube", "benes-cube"):
        net = build(name, N_PORTS)
        rates = []
        for seed in range(25):
            faults = random_link_faults(build("indirect-binary-cube", N_PORTS), 4, seed=seed)
            rates.append(survivability(net, confs, faults).survival_rate)
        print(f"  {name:22s} mean survival {sum(rates) / len(rates):.0%}")


def healing_story() -> None:
    network = ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS)
    healing = SelfHealingController(
        network, retry=RetryPolicy(max_retries=5, base_delay=2.0), rng=7
    )
    confs = [Conference.of(m, i) for i, m in enumerate([(0, 1), (2, 7), (4, 5, 6)])]
    for conf in confs:
        healing.try_join(conf)
    print(f"{len(confs)} conferences up on the extra-stage cube")

    # Script a deterministic timeline: break a link each conference
    # needs, then repair it — fail/repair times chosen by hand so the
    # printout is stable.
    victims = [min(healing.route_of(c.conference_id).links) for c in confs]
    script = sorted(
        [FaultTransition(10.0 + 5 * i, v, failed=True) for i, v in enumerate(victims)]
        + [FaultTransition(60.0 + 5 * i, v, failed=False) for i, v in enumerate(victims)],
        key=lambda t: (t.time, t.point, t.failed),
    )
    injector = FaultInjector(network.topology, script=script)
    injector.subscribe(
        lambda loop, tr: print(
            f"  t={loop.now:5.1f}  link {tr.point} "
            f"{'FAILED' if tr.failed else 'repaired'}"
        )
    )
    healing.attach(injector)

    loop = EventLoop()
    injector.start(loop)
    loop.run(until=100.0)
    healing.finalize(loop.now)

    s = healing.stats
    print(f"healed hitlessly (tap moves): {s.tap_move_events}, "
          f"rerouted: {s.reroutes}, dropped: {s.dropped_total}")
    print(f"availability {s.availability:.4f}, "
          f"degraded fraction {s.degraded_fraction:.4f}, "
          f"still live: {len(healing.live_conferences)}/{len(confs)}")


def group_story() -> None:
    net = build("indirect-binary-cube", N_PORTS)
    lecture = GroupConnection.multicast(0, [4, 5, 6, 7], connection_id=0)
    panel = GroupConnection(senders=(8, 9), receivers=(8, 9, 10, 11, 12), connection_id=1)
    huddle = GroupConnection.conference([13, 14], connection_id=2)

    routes = [route_group(net, g) for g in (lecture, panel, huddle)]
    for g, r in zip((lecture, panel, huddle), routes):
        kind = "conference" if g.is_conference else ("multicast" if g.is_multicast else "group")
        print(f"{kind:10s} senders={list(g.senders)} receivers={list(g.receivers)}: "
              f"{r.n_links} links, depth {r.depth}")
    report = analyze_conflicts(routes, n_stages=net.n_stages)
    print("mixed-traffic conflicts:", report.describe())


if __name__ == "__main__":
    print("=" * 72)
    fault_story()
    print("\n" + "=" * 72)
    healing_story()
    print("\n" + "=" * 72)
    group_story()
