#!/usr/bin/env python
"""Reconstruct the paper's worst case by hand and watch it happen.

Walks through the adversarial construction that forces the maximum
conflict multiplicity on the indirect binary cube, renders the
contested link, and demonstrates that (1) pruning cannot help — the
unique-path property forces the collision — and (2) re-homing the same
conferences into aligned blocks dissolves it.

Run:  python examples/adversarial_analysis.py
"""

from repro import ConferenceNetwork, place_aligned
from repro.analysis.theory import cube_link_multiplicity
from repro.analysis.worstcase import cube_adversarial_set
from repro.core.routing import RoutingPolicy
from repro.report.ascii import render_routes
from repro.topology.graph import unique_path

N_PORTS = 16  # n = 4 stages; worst level t = 2 with multiplicity 4


def main() -> None:
    n = N_PORTS.bit_length() - 1
    level = n // 2
    adversarial = cube_adversarial_set(N_PORTS, level)
    print(f"adversarial conferences: {[list(c.members) for c in adversarial]}")
    print(f"theory says {cube_link_multiplicity(level, n)} of them collide "
          f"on the link entering level {level} at row 0\n")

    network = ConferenceNetwork.build("indirect-binary-cube", N_PORTS, dilation=N_PORTS)
    result = network.realize(adversarial)
    assert result.ok
    print(render_routes(network.topology, result.routes))
    print("\n" + result.conflicts.describe())

    # Why no cleverness helps: each conference has a sender s whose high
    # address bits match row 0 and a receiver j whose low bits do; the
    # banyan-unique path from s's input to j's tap is forced through the
    # hot link.
    from repro.util.bits import high_bits, low_bits

    print("\nforced sender->receiver paths through the contested link:")
    for conf in adversarial:
        s = next(m for m in conf.members if high_bits(m, level, n) == 0)
        j = next(m for m in conf.members if low_bits(m, level) == 0)
        path = unique_path(network.topology, s, j)
        assert (level, 0) in path
        print(f"  sender {s:2d} -> receiver {j:2d}: {path}")

    pruned_routes = [
        network.topology and r
        for r in (
            ConferenceNetwork.build(
                "indirect-binary-cube", N_PORTS,
                policy=RoutingPolicy(prune=True), dilation=N_PORTS,
            ).route_set(adversarial)
        )
    ]
    from repro.core.conflict import analyze_conflicts

    pruned_report = analyze_conflicts(pruned_routes, n_stages=n)
    print(f"\nafter greedy pruning: max multiplicity still "
          f"{pruned_report.max_multiplicity} (the conflict is structural)")

    # The fix the prior work (Yang 2001) uses: aligned placement.
    aligned = place_aligned(N_PORTS, [c.size for c in adversarial])
    tight = ConferenceNetwork.build("indirect-binary-cube", N_PORTS, dilation=1)
    fixed = tight.realize(aligned)
    assert fixed.ok and fixed.conflicts.conflict_free
    print("\nsame conference sizes, buddy-aligned placement: "
          f"max multiplicity {fixed.conflicts.max_multiplicity} at dilation 1")


if __name__ == "__main__":
    main()
