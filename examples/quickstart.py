#!/usr/bin/env python
"""Quickstart: build a conference network, route conferences, see conflicts.

Run:  python examples/quickstart.py
"""

from repro import ConferenceNetwork
from repro.report.ascii import render_routes


def main() -> None:
    # A 16-port conference switching network on the indirect binary cube,
    # with the Yang-2001 per-stage output-multiplexer relay and links
    # dilated to 4 channels.
    network = ConferenceNetwork.build("indirect-binary-cube", 16, dilation=4)

    # Three simultaneous, disjoint conferences given as member port lists.
    result = network.realize([
        [0, 1, 2, 3],   # a block-aligned conference: combines in 2 stages
        [4, 11],        # a straddling pair: needs the full network depth
        [8, 9],         # an adjacent pair: combines in 1 stage
    ])

    # Every member receives exactly the mix of its whole conference —
    # verified on the simulated hardware, not just on paper.
    assert result.ok
    print(render_routes(network.topology, result.routes))
    print()
    print("conflicts:", result.conflicts.describe())
    for route in result.routes:
        members = route.conference.members
        print(
            f"conference {route.conference.conference_id} {list(members)}: "
            f"combined after {route.depth} stage(s), "
            f"occupies {route.n_links} inter-stage links"
        )

    # The same conferences on an omega network: different link usage,
    # same delivery guarantee.
    omega = ConferenceNetwork.build("omega", 16, dilation=4)
    print("\nomega:", omega.realize([[0, 1, 2, 3], [4, 11], [8, 9]]).conflicts.describe())


if __name__ == "__main__":
    main()
