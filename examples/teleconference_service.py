#!/usr/bin/env python
"""A day in the life of a teleconference bridge.

Simulates a 64-port conferencing service under stochastic call traffic
and shows the operator's capacity-planning question: how much link
dilation does the switch need so that essentially no call is refused
for lack of internal bandwidth?

Run:  python examples/teleconference_service.py
"""

from repro import ConferenceNetwork
from repro.analysis.theory import max_multiplicity_bound
from repro.report.tables import render_table
from repro.sim.scenarios import placement_comparison, run_traffic
from repro.sim.traffic import TrafficConfig

N_PORTS = 64
BUSY_HOUR = TrafficConfig(arrival_rate=2.5, mean_holding=6.0, mean_size=4.0)


def main() -> None:
    n = N_PORTS.bit_length() - 1
    worst = max_multiplicity_bound(n)
    print(f"{N_PORTS}-port bridge; worst-case dilation would be {worst} "
          f"(2^floor(n/2) for n={n} stages)\n")

    # Sweep provisioning: how much of the worst case does real traffic use?
    rows = []
    for dilation in (1, 2, 3, 4, worst):
        network = ConferenceNetwork.build("indirect-binary-cube", N_PORTS, dilation=dilation)
        stats = run_traffic(network, BUSY_HOUR, duration=2000.0, seed=7)
        rows.append({
            "dilation": dilation,
            "offered_calls": stats.offered,
            "refused_for_capacity": stats.blocked["capacity"],
            "refused_for_ports": stats.blocked["ports"],
            "capacity_blocking_%": 100 * stats.capacity_blocking_probability,
            "mean_live_conferences": stats.mean_occupancy,
        })
    print(render_table(rows, title=f"busy hour ({BUSY_HOUR.offered_erlangs:.0f} erlangs offered)"))

    # The alternative: keep dilation 1 but control placement (Yang 2001).
    print("\nSame traffic, dilation 1, arbitrary vs buddy-aligned member placement:")
    out = placement_comparison(
        "indirect-binary-cube", N_PORTS, dilation=1,
        config=BUSY_HOUR, duration=2000.0, seed=7,
    )
    rows = [
        {"placement": placement, **stats.summary()}
        for placement, stats in out.items()
    ]
    print(render_table(rows, columns=[
        "placement", "offered", "admitted", "blocked_capacity", "blocked_ports",
        "capacity_blocking_probability",
    ]))
    print("\nAligned placement removes capacity blocking entirely — the "
          "Yang-2001 design point — at the cost of pinning users to ports.")


if __name__ == "__main__":
    main()
