"""Tests for the session state machine and registry."""

import pytest

from repro.serve.protocol import Priority
from repro.serve.session import Session, SessionState, SessionTable

pytestmark = pytest.mark.tier1


class TestTransitions:
    def test_happy_path(self):
        s = Session(session_id=0, members=(0, 1))
        s.transition(SessionState.ACTIVE, 1.0)
        s.transition(SessionState.DEGRADED, 2.0)
        s.transition(SessionState.ACTIVE, 3.0)
        s.transition(SessionState.CLOSED, 4.0)
        assert s.state is SessionState.CLOSED
        assert s.closed_at == 4.0
        assert s.history == ["1:active", "2:degraded", "3:active", "4:closed"]

    def test_fault_round_trip(self):
        s = Session(session_id=0, members=(0, 1), state=SessionState.ACTIVE)
        s.transition(SessionState.DOWN, 1.0)
        s.transition(SessionState.ACTIVE, 2.0)
        assert s.live

    def test_illegal_transition_raises(self):
        s = Session(session_id=0, members=(0, 1))
        with pytest.raises(ValueError, match="illegal transition"):
            s.transition(SessionState.DOWN, 1.0)  # QUEUED can't be DOWN

    def test_terminal_states_are_terminal(self):
        for terminal in (SessionState.CLOSED, SessionState.REJECTED, SessionState.LOST):
            s = Session(session_id=0, members=(0, 1), state=terminal)
            with pytest.raises(ValueError):
                s.transition(SessionState.ACTIVE, 1.0)

    def test_self_transition_is_a_noop(self):
        s = Session(session_id=0, members=(0, 1), state=SessionState.ACTIVE)
        s.transition(SessionState.ACTIVE, 1.0)
        assert s.history == []

    def test_liveness(self):
        assert not Session(0, (0, 1)).live
        assert Session(0, (0, 1), state=SessionState.DOWN).live
        assert not Session(0, (0, 1), state=SessionState.REJECTED).live


class TestTable:
    def test_sequential_ids(self):
        table = SessionTable()
        a = table.create((0, 1), Priority.NORMAL, at=0.0)
        b = table.create((2, 3), Priority.BULK, at=1.0)
        assert (a.session_id, b.session_id) == (0, 1)
        assert a.conference_id == 0
        assert len(table) == 2

    def test_require_raises_on_unknown(self):
        table = SessionTable()
        assert table.get(42) is None
        with pytest.raises(KeyError, match="42"):
            table.require(42)

    def test_counts_cover_all_states(self):
        table = SessionTable()
        table.create((0, 1), Priority.NORMAL, at=0.0)
        counts = table.counts()
        assert counts["queued"] == 1
        assert set(counts) == {s.value for s in SessionState}

    def test_live_and_in_state(self):
        table = SessionTable()
        a = table.create((0, 1), Priority.NORMAL, at=0.0)
        table.create((2, 3), Priority.NORMAL, at=0.0)
        a.transition(SessionState.ACTIVE, 1.0)
        assert [s.session_id for s in table.live()] == [0]
        assert [s.session_id for s in table.in_state(SessionState.QUEUED)] == [1]
