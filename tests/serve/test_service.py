"""Tests for the FabricService: lifecycle, batching, faults, drain."""

import asyncio

import pytest

from repro.core.healing import RetryPolicy
from repro.core.network import ConferenceNetwork
from repro.obs.metrics import MetricsRegistry
from repro.serve.backpressure import ShedPolicy
from repro.serve.protocol import Priority
from repro.serve.service import FabricService
from repro.serve.session import SessionState
from repro.sim.faults import FaultTransition

pytestmark = pytest.mark.tier1

N_PORTS = 16


def service(**kwargs) -> FabricService:
    kwargs.setdefault("rng", 0)
    network = kwargs.pop(
        "network",
        ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS),
    )
    return FabricService(network, **kwargs)


def collect(responses):
    return responses.append


class TestConstruction:
    def test_configuration_is_keyword_only(self):
        network = ConferenceNetwork.build("extra-stage-cube", N_PORTS)
        with pytest.raises(TypeError):
            FabricService(network, RetryPolicy())

    def test_spelling_matches_the_library_convention(self):
        import inspect

        params = inspect.signature(FabricService.__init__).parameters
        for name in ("rng", "route_cache", "tracer", "metrics", "retry"):
            assert name in params
            assert params[name].kind is inspect.Parameter.KEYWORD_ONLY

    def test_tick_interval_validated(self):
        with pytest.raises(ValueError):
            service(tick_interval=0.0)


class TestLifecycle:
    def test_open_then_close(self):
        svc = service()
        got = []
        sid = svc.submit_open([0, 1, 2], on_complete=collect(got))
        assert svc.sessions.require(sid).state is SessionState.QUEUED
        svc.tick()
        assert got and got[0].ok and got[0].status == "admitted"
        assert got[0].latency == pytest.approx(1.0)
        assert svc.sessions.require(sid).state is SessionState.ACTIVE
        assert sid in svc.healing.live_conferences
        svc.submit_close(sid, on_complete=collect(got))
        svc.tick()
        assert got[-1].status == "closed"
        assert svc.sessions.require(sid).state is SessionState.CLOSED
        assert sid not in svc.healing.live_conferences

    def test_batched_admission_shares_one_pass(self):
        svc = service()
        got = []
        for base in range(0, 12, 3):
            svc.submit_open([base, base + 1, base + 2], on_complete=collect(got))
        report = svc.tick()
        assert report.size == 4 and report.admitted == 4
        assert {r.batch_seq for r in got} == {0}

    def test_join_and_leave_apply_membership(self):
        svc = service()
        got = []
        sid = svc.submit_open([0, 1], on_complete=collect(got))
        svc.tick()
        svc.submit_join(sid, [2, 3], on_complete=collect(got))
        svc.tick()
        assert got[-1].status == "applied"
        assert svc.sessions.require(sid).members == (0, 1, 2, 3)
        assert svc.healing.route_of(sid).conference.members == (0, 1, 2, 3)
        svc.submit_leave(sid, [1], on_complete=collect(got))
        svc.tick()
        assert got[-1].ok
        assert svc.sessions.require(sid).members == (0, 2, 3)

    def test_membership_validation(self):
        svc = service()
        got = []
        sid = svc.submit_open([0, 1], on_complete=collect(got))
        svc.tick()
        svc.submit_join(sid, [1], on_complete=collect(got))
        svc.submit_leave(sid, [9], on_complete=collect(got))
        svc.submit_leave(sid, [0], on_complete=collect(got))
        svc.tick()
        # Control ops (leave) drain before data ops (join), so the two
        # leave verdicts land first.
        reasons = [r.reason for r in got[1:]]
        assert reasons == ["not-a-member", "too-few-members", "already-a-member"]

    def test_unknown_session_errors(self):
        svc = service()
        got = []
        svc.submit_close(99, on_complete=collect(got))
        svc.tick()
        assert got[0].status == "error" and got[0].reason == "unknown-session"

    def test_close_of_queued_session_cancels_the_open(self):
        svc = service(max_batch=64)
        got = []
        sid = svc.submit_open([0, 1], on_complete=collect(got))
        svc.submit_close(sid)
        svc.tick()  # control drains first, so the open sees CLOSED
        assert got[0].status == "rejected" and got[0].reason == "cancelled"
        assert svc.sessions.require(sid).state is SessionState.CLOSED

    def test_port_clash_rejects_without_retry(self):
        svc = service()
        got = []
        svc.submit_open([0, 1], on_complete=collect(got))
        svc.tick()
        svc.submit_open([1, 2], on_complete=collect(got))
        svc.tick()
        assert got[-1].status == "rejected" and got[-1].reason == "ports"

    def test_denied_open_retries_and_succeeds_after_release(self):
        svc = service(retry=RetryPolicy(max_retries=8, base_delay=1.0, jitter=0.0))
        got = []
        first = svc.submit_open([0, 1], on_complete=collect(got))
        svc.tick()
        svc.submit_open([1, 2], on_complete=collect(got))
        svc.tick()  # denied (ports) -> backoff, not terminal
        assert got == [got[0]]
        svc.submit_close(first)
        for _ in range(6):
            svc.tick()
        assert got[-1].status == "admitted"


class TestChurnDetail:
    # Satellite of the 1.6 redesign: join/leave responses carry the
    # disruption diff, not a bare ok/reason.

    def test_join_response_carries_the_disruption_diff(self):
        svc = service()
        got = []
        sid = svc.submit_open([0, 3], on_complete=collect(got))
        svc.tick()
        svc.submit_join(sid, [1], on_complete=collect(got))
        svc.tick()
        detail = got[-1].detail
        for key in ("links_reconfigured", "hitless", "mode", "taps_moved", "drift_links"):
            assert key in detail, f"join detail lacks {key}"
        assert detail["mode"] == "incremental"
        assert detail["hitless"] is True  # in-block join on the cube
        assert detail["taps_moved"] == 0
        payload = got[-1].as_dict()
        assert payload["detail"]["links_reconfigured"] == detail["links_reconfigured"]

    def test_full_reroute_policy_is_reported_in_the_detail(self):
        from repro.core.churn import ChurnPolicy

        svc = service(churn=ChurnPolicy(incremental=False))
        got = []
        sid = svc.submit_open([0, 3], on_complete=collect(got))
        svc.tick()
        svc.submit_join(sid, [1], on_complete=collect(got))
        svc.tick()
        assert got[-1].status == "applied"
        assert got[-1].detail["mode"] == "full-reroute"

    def test_membership_changes_bump_generation_and_history(self):
        svc = service()
        got = []
        sid = svc.submit_open([0, 1], on_complete=collect(got))
        svc.tick()
        session = svc.sessions.require(sid)
        generation = session.generation
        svc.submit_join(sid, [2], on_complete=collect(got))
        svc.tick()
        svc.submit_leave(sid, [2], on_complete=collect(got))
        svc.tick()
        assert session.generation == generation + 2
        assert any(entry.endswith("+2") for entry in session.history)
        assert any(entry.endswith("-2") for entry in session.history)


class TestBackpressure:
    def test_overflow_rejects_with_backpressure(self):
        svc = service(queue_capacity=2, max_batch=64)
        got = []
        for base in range(0, 8, 2):
            svc.submit_open([base, base + 1], on_complete=collect(got))
        rejected = [r for r in got if r.status == "rejected"]
        assert len(rejected) == 2
        assert all(r.reason == "backpressure" for r in rejected)
        svc.tick()
        assert sum(r.status == "admitted" for r in got) == 2

    def test_shed_largest_answers_the_victim(self):
        svc = service(queue_capacity=1, shed_policy=ShedPolicy.SHED_LARGEST)
        got = []
        big = svc.submit_open([0, 1, 2, 3], on_complete=collect(got))
        svc.submit_open([8, 9], on_complete=collect(got))
        assert got and got[0].status == "shed"
        assert got[0].session_id == big
        assert svc.sessions.require(big).state is SessionState.REJECTED
        svc.tick()
        assert got[-1].status == "admitted"

    def test_priority_lane_evicts_bulk_for_interactive(self):
        svc = service(queue_capacity=1, shed_policy=ShedPolicy.PRIORITY)
        got = []
        bulk = svc.submit_open([0, 1], priority=Priority.BULK, on_complete=collect(got))
        svc.submit_open(
            [2, 3], priority=Priority.INTERACTIVE, on_complete=collect(got)
        )
        assert got[0].status == "shed" and got[0].session_id == bulk


class TestFaults:
    # Killing input wire (0, 0) makes any conference containing port 0
    # unroutable: the healing ladder must drop it, and the service must
    # bring it back once the wire is repaired — one way or another.

    def test_drop_restore_round_trip_via_healing_retries(self):
        svc = service(retry=RetryPolicy(max_retries=10, base_delay=1.0, jitter=0.0))
        svc.attach_faults(
            [FaultTransition(2.5, (0, 0), True), FaultTransition(6.5, (0, 0), False)]
        )
        got = []
        sid = svc.submit_open([0, 1, 2], on_complete=collect(got))
        svc.tick()
        assert svc.sessions.require(sid).state is SessionState.ACTIVE
        for _ in range(2):
            svc.tick()
        assert svc.sessions.require(sid).state is SessionState.DOWN
        for _ in range(8):
            svc.tick()
        session = svc.sessions.require(sid)
        assert session.state is SessionState.ACTIVE
        assert session.generation >= 1
        assert svc.sessions.counts()["lost"] == 0

    def test_exhausted_healing_retries_requeue_instead_of_losing(self):
        # No healing retry budget at all: the drop is immediately "lost"
        # at the controller level, and the service's requeue path is the
        # only thing standing between the session and oblivion.
        svc = service(retry=None)
        svc.attach_faults(
            [FaultTransition(2.5, (0, 0), True), FaultTransition(5.5, (0, 0), False)]
        )
        sid = svc.submit_open([0, 1, 2])
        svc.tick()
        for _ in range(2):
            svc.tick()
        assert svc.sessions.require(sid).state is SessionState.DOWN
        for _ in range(6):
            svc.tick()
        session = svc.sessions.require(sid)
        assert session.state is SessionState.ACTIVE
        assert session.requeues >= 1
        assert svc.stats.requeues >= 1
        assert svc.sessions.counts()["lost"] == 0

    def test_requeue_path_traces_cleanly(self):
        # The tracer rejects attribute names that collide with its record
        # schema; the fault/requeue path must stay attachable.
        from repro.obs.trace import Tracer

        tracer = Tracer()
        svc = service(retry=None, tracer=tracer)
        svc.attach_faults(
            [FaultTransition(2.5, (0, 0), True), FaultTransition(5.5, (0, 0), False)]
        )
        sid = svc.submit_open([0, 1, 2])
        for _ in range(9):
            svc.tick()
        assert svc.sessions.require(sid).state is SessionState.ACTIVE
        assert any(r["name"] == "serve.requeue" for r in tracer.records())

    def test_close_while_down_releases_on_restore(self):
        svc = service(retry=RetryPolicy(max_retries=10, base_delay=1.0, jitter=0.0))
        svc.attach_faults(
            [FaultTransition(2.5, (0, 0), True), FaultTransition(5.5, (0, 0), False)]
        )
        got = []
        sid = svc.submit_open([0, 1])
        svc.tick()
        for _ in range(2):
            svc.tick()
        assert svc.sessions.require(sid).state is SessionState.DOWN
        svc.submit_close(sid, on_complete=collect(got))
        svc.tick()
        assert got[-1].status == "closed"
        for _ in range(8):
            svc.tick()
        assert svc.sessions.require(sid).state is SessionState.CLOSED
        assert sid not in svc.healing.live_conferences
        assert not svc.healing.down_conferences


class TestDrainAndShutdown:
    def test_drain_settles_the_backlog(self):
        svc = service(retry=RetryPolicy(max_retries=3, base_delay=1.0, jitter=0.0))
        got = []
        for base in range(0, 8, 2):
            svc.submit_open([base, base + 1], on_complete=collect(got))
        svc.drain()
        assert len(got) == 4 and all(r.ok for r in got)
        assert len(svc.queue) == 0
        assert svc.state == "draining"

    def test_draining_rejects_new_opens_but_takes_closes(self):
        svc = service()
        got = []
        sid = svc.submit_open([0, 1], on_complete=collect(got))
        svc.tick()
        svc.drain()
        svc.submit_open([4, 5], on_complete=collect(got))
        assert got[-1].status == "rejected" and got[-1].reason == "draining"
        svc.submit_close(sid, on_complete=collect(got))
        svc.tick()
        assert got[-1].status == "closed"

    def test_shutdown_closes_everything(self):
        svc = service()
        sid = svc.submit_open([0, 1])
        svc.tick()
        counts = svc.shutdown()
        assert counts["active"] == 0 and counts["closed"] == 1
        assert svc.sessions.require(sid).state is SessionState.CLOSED
        assert svc.state == "closed"
        with pytest.raises(RuntimeError):
            svc.tick()

    def test_closed_service_rejects_submissions(self):
        svc = service()
        svc.shutdown()
        got = []
        svc.submit_open([0, 1], on_complete=collect(got))
        assert got[0].status == "rejected" and got[0].reason == "service-closed"


class TestAsyncFacade:
    def test_full_lifecycle(self):
        async def scenario():
            svc = service()
            runner = asyncio.create_task(svc.run())
            opened = await svc.open_conference([0, 1, 2])
            assert opened.ok and opened.status == "admitted"
            joined = await svc.join(opened.session_id, [5])
            assert joined.status == "applied"
            left = await svc.leave(opened.session_id, [5])
            assert left.status == "applied"
            closed = await svc.close(opened.session_id)
            assert closed.status == "closed"
            runner.cancel()
            try:
                await runner
            except asyncio.CancelledError:
                pass
            return svc

        svc = asyncio.run(scenario())
        assert svc.shutdown()["closed"] == 1

    def test_run_until_bounds_virtual_time(self):
        async def scenario():
            svc = service()
            await svc.run(until=5.0)
            return svc.now

        assert asyncio.run(scenario()) == pytest.approx(5.0)


class TestDeterminism:
    def test_same_seed_same_metrics(self):
        def run():
            registry = MetricsRegistry()
            svc = service(
                rng=7,
                metrics=registry,
                retry=RetryPolicy(max_retries=5, base_delay=1.0),
            )
            svc.attach_faults(
                [FaultTransition(2.5, (0, 0), True), FaultTransition(6.5, (0, 0), False)]
            )
            for base in range(0, 12, 3):
                svc.submit_open([base, base + 1, base + 2])
            for _ in range(15):
                svc.tick()
            svc.shutdown()
            return registry.render_prometheus()

        assert run() == run()

    def test_metrics_track_queue_and_batches(self):
        registry = MetricsRegistry()
        svc = service(metrics=registry)
        svc.submit_open([0, 1])
        svc.tick()
        text = registry.render_prometheus()
        assert "repro_serve_queue_depth" in text
        assert "repro_serve_batch_size" in text
        assert "repro_serve_requests_total" in text
        assert "repro_serve_admission_latency" in text
