"""Churn acceptance tests for the conference service.

The headline criteria from the serving milestone: a 64-port fabric
sustains ≥500 conferences of seeded churn with bounded queue depth and
**zero lost sessions** while a fault timeline fires underneath, and the
metrics artifact is byte-identical across same-seed runs.
"""

import pytest

from repro.core.healing import RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.serve.backpressure import ShedPolicy
from repro.serve.bench import run_serve_bench
from repro.sim.faults import FaultProcessConfig

pytestmark = pytest.mark.tier1


class TestChurnSmall:
    def test_plain_churn_settles(self):
        report = run_serve_bench(16, conferences=40, seed=3, arrival_rate=2.0,
                                 mean_hold_ticks=5.0)
        assert report.ok
        assert report.conferences == 40
        assert report.lost_sessions == 0
        assert report.session_counts["active"] == 0
        assert report.session_counts["down"] == 0
        # Every session that was admitted eventually closed.
        assert report.service["closed"] == report.service["admitted"]

    def test_report_satisfies_the_result_contract(self):
        from repro.api import Result
        from repro.report.serialize import result_to_dict

        report = run_serve_bench(16, conferences=10, seed=0)
        assert isinstance(report, Result)
        payload = result_to_dict(report)
        assert payload["kind"] == "serve_bench"
        assert payload["ok"] is (payload["reason"] is None)
        assert payload["schema"] == 1

    def test_resize_churn_exercises_membership_changes(self):
        report = run_serve_bench(32, conferences=60, seed=5, arrival_rate=3.0,
                                 mean_hold_ticks=10.0, resize_prob=0.5)
        assert report.ok
        assert report.resizes > 0
        assert report.service["applied"] > 0

    def test_tight_queue_sheds_but_stays_bounded(self):
        report = run_serve_bench(32, conferences=80, seed=9, arrival_rate=8.0,
                                 mean_hold_ticks=12.0, queue_capacity=4,
                                 shed_policy=ShedPolicy.SHED_LARGEST, max_batch=2)
        assert report.peak_queue_depth <= 4
        assert report.lost_sessions == 0


class TestChurnAcceptance:
    """The milestone run: N=64, 500+ conferences, live faults."""

    KWARGS = dict(
        conferences=500,
        seed=42,
        arrival_rate=5.0,
        mean_size=3.5,
        mean_hold_ticks=12.0,
        resize_prob=0.25,
        queue_capacity=128,
        retry=RetryPolicy(max_retries=5, base_delay=1.0),
        fault_process=FaultProcessConfig(
            mean_time_to_failure=800.0, mean_time_to_repair=4.0
        ),
    )

    def test_sustains_500_conferences_under_faults(self):
        registry = MetricsRegistry()
        report = run_serve_bench(64, metrics=registry, **self.KWARGS)
        assert report.ok, report.reason
        assert report.conferences == 500
        assert report.lost_sessions == 0
        assert report.fault_transitions > 0
        assert report.peak_queue_depth <= 128
        for state in ("queued", "active", "degraded", "down"):
            assert report.session_counts[state] == 0
        assert report.service["admitted"] >= 400

    def test_metrics_artifact_is_byte_identical_across_runs(self, tmp_path):
        paths = []
        for run in ("a", "b"):
            registry = MetricsRegistry()
            run_serve_bench(64, metrics=registry, **self.KWARGS)
            path = tmp_path / f"metrics-{run}.prom"
            registry.write(str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_report_is_reproducible(self):
        a = run_serve_bench(64, **self.KWARGS).as_dict()
        b = run_serve_bench(64, **self.KWARGS).as_dict()
        assert a == b
