"""Tests for the bounded admission queue and its shedding policies."""

import pytest

from repro.serve.backpressure import AdmissionQueue, ShedPolicy
from repro.serve.protocol import Priority, RequestKind, SessionRequest

pytestmark = pytest.mark.tier1


def open_req(rid, members=(0, 1), priority=Priority.NORMAL):
    return SessionRequest(
        kind=RequestKind.OPEN, request_id=rid, members=tuple(members), priority=priority
    )


def close_req(rid, sid=0):
    return SessionRequest(kind=RequestKind.CLOSE, request_id=rid, session_id=sid)


class TestBounds:
    def test_accepts_until_capacity(self):
        q = AdmissionQueue(capacity=3)
        for rid in range(3):
            accepted, shed = q.offer(open_req(rid))
            assert accepted and not shed
        assert q.depth == 3

    def test_reject_newest_bounces_the_arrival(self):
        q = AdmissionQueue(capacity=2, policy=ShedPolicy.REJECT_NEWEST)
        q.offer(open_req(0))
        q.offer(open_req(1))
        accepted, shed = q.offer(open_req(2))
        assert not accepted and not shed
        assert q.depth == 2
        assert q.stats.rejected == 1

    def test_control_lane_is_exempt_from_the_bound(self):
        q = AdmissionQueue(capacity=1)
        q.offer(open_req(0))
        for rid in range(1, 5):
            accepted, _ = q.offer(close_req(rid, sid=rid))
        assert accepted
        assert q.depth == 1 and q.control_depth == 4

    def test_peak_depth_tracked(self):
        q = AdmissionQueue(capacity=8)
        for rid in range(5):
            q.offer(open_req(rid))
        q.take(5)
        assert q.depth == 0
        assert q.stats.peak_depth == 5

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionQueue(capacity=0)


class TestShedLargest:
    def test_evicts_the_largest_queued_request(self):
        q = AdmissionQueue(capacity=2, policy=ShedPolicy.SHED_LARGEST)
        q.offer(open_req(0, members=(0, 1, 2, 3, 4)))
        q.offer(open_req(1, members=(5, 6)))
        accepted, shed = q.offer(open_req(2, members=(7, 8, 9)))
        assert accepted
        assert [r.request_id for r in shed] == [0]
        assert q.stats.shed == 1

    def test_bounces_arrival_when_it_is_the_largest(self):
        q = AdmissionQueue(capacity=2, policy=ShedPolicy.SHED_LARGEST)
        q.offer(open_req(0, members=(0, 1)))
        q.offer(open_req(1, members=(2, 3)))
        accepted, shed = q.offer(open_req(2, members=(4, 5, 6, 7)))
        assert not accepted and not shed


class TestPriorityPolicy:
    def test_evicts_newest_of_lowest_lane_below_arrival(self):
        q = AdmissionQueue(capacity=2, policy=ShedPolicy.PRIORITY)
        q.offer(open_req(0, priority=Priority.BULK))
        q.offer(open_req(1, priority=Priority.BULK))
        accepted, shed = q.offer(open_req(2, priority=Priority.INTERACTIVE))
        assert accepted
        assert [r.request_id for r in shed] == [1]  # newest bulk, not oldest

    def test_never_evicts_equal_or_higher_priority(self):
        q = AdmissionQueue(capacity=2, policy=ShedPolicy.PRIORITY)
        q.offer(open_req(0, priority=Priority.NORMAL))
        q.offer(open_req(1, priority=Priority.INTERACTIVE))
        accepted, shed = q.offer(open_req(2, priority=Priority.NORMAL))
        assert not accepted and not shed


class TestServiceOrder:
    def test_control_first_then_priority_then_fifo(self):
        q = AdmissionQueue(capacity=8, policy=ShedPolicy.PRIORITY)
        q.offer(open_req(0, priority=Priority.BULK))
        q.offer(open_req(1, priority=Priority.INTERACTIVE))
        q.offer(open_req(2, priority=Priority.INTERACTIVE))
        q.offer(close_req(3))
        q.offer(open_req(4, priority=Priority.NORMAL))
        assert [r.request_id for r in q.take(10)] == [3, 1, 2, 4, 0]

    def test_take_respects_limit(self):
        q = AdmissionQueue(capacity=8)
        for rid in range(6):
            q.offer(open_req(rid))
        assert len(q.take(4)) == 4
        assert q.depth == 2

    def test_drain_all_empties(self):
        q = AdmissionQueue(capacity=8)
        for rid in range(3):
            q.offer(open_req(rid))
        q.offer(close_req(9))
        assert len(q.drain_all()) == 4
        assert len(q) == 0
