"""Tests for per-tick batch formation and execution."""

import pytest

from repro.serve.backpressure import AdmissionQueue
from repro.serve.batcher import Batcher
from repro.serve.protocol import RequestKind, ServiceResponse, SessionRequest

pytestmark = pytest.mark.tier1


def open_req(rid):
    return SessionRequest(kind=RequestKind.OPEN, request_id=rid, members=(0, 1))


def admit_all(request, seq):
    return ServiceResponse(
        ok=True, status="admitted", kind=request.kind,
        request_id=request.request_id, batch_seq=seq,
        submitted_at=request.submitted_at, completed_at=1.0,
    )


class TestBatcher:
    def test_batch_bounded_by_max_batch(self):
        q = AdmissionQueue(capacity=16)
        for rid in range(10):
            q.offer(open_req(rid))
        b = Batcher(max_batch=4)
        assert len(b.next_batch(q)) == 4
        assert q.depth == 6

    def test_execute_aggregates_outcomes_and_latencies(self):
        b = Batcher(max_batch=8)
        batch = [open_req(rid) for rid in range(3)]
        report, responses = b.execute(batch, admit_all, now=5.0)
        assert report.seq == 0 and report.size == 3
        assert report.outcomes["admitted"] == 3
        assert report.admitted == 3
        assert len(responses) == 3
        assert all(r.batch_seq == 0 for r in responses)
        assert report.as_dict()["mean_latency"] == 1.0

    def test_sequence_numbers_advance(self):
        b = Batcher(max_batch=8)
        b.execute([], admit_all, now=0.0)
        report, _ = b.execute([open_req(0)], admit_all, now=1.0)
        assert report.seq == 1
        assert b.batches_run == 2

    def test_max_batch_validated(self):
        with pytest.raises(ValueError, match="max_batch"):
            Batcher(max_batch=0)
