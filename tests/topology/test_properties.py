"""Tests for structural property checkers and digests."""


from repro.topology.builders import build
from repro.topology.network import MultistageNetwork, Stage
from repro.topology.permutations import identity, perfect_shuffle
from repro.topology.properties import (
    has_full_access,
    is_banyan,
    is_buddy,
    stage_pairing_bits,
    structure_digest,
)


def degenerate_network(size: int, stages: int) -> MultistageNetwork:
    """All stages pair the same rows — neither banyan nor full access."""
    ident = identity(size)
    return MultistageNetwork(size, [Stage(ident, ident)] * stages, name="degenerate")


class TestNegativeCases:
    def test_degenerate_lacks_full_access(self):
        assert not has_full_access(degenerate_network(8, 3))

    def test_degenerate_is_not_banyan(self):
        # Same-pairs stages give multiple paths within a pair and none across.
        assert not is_banyan(degenerate_network(8, 2))

    def test_degenerate_is_not_buddy(self):
        assert not is_buddy(degenerate_network(8, 2))

    def test_single_stage_shuffle_lacks_access(self):
        net = MultistageNetwork(8, [Stage(perfect_shuffle(8), identity(8))])
        assert not has_full_access(net)


class TestPairingBits:
    def test_cube_bits(self):
        assert stage_pairing_bits(build("indirect-binary-cube", 16)) == [0, 1, 2, 3]

    def test_degenerate_bits_are_constant_zero(self):
        assert stage_pairing_bits(degenerate_network(8, 2)) == [0, 0]


class TestStructureDigest:
    def test_paper_topologies_share_digest(self):
        """Baseline, omega and the cube are topologically equivalent."""
        nets = [build(n, 16) for n in ("baseline", "omega", "indirect-binary-cube")]
        digests = {structure_digest(net) for net in nets}
        assert len(digests) == 1

    def test_degenerate_digest_differs(self):
        assert structure_digest(degenerate_network(16, 4)) != structure_digest(
            build("omega", 16)
        )

    def test_digest_depends_on_size(self):
        assert structure_digest(build("omega", 8)) != structure_digest(build("omega", 16))
