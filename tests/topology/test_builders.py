"""Tests for the topology registry and classic structural facts."""

import pytest

from repro.topology.builders import (
    BANYAN_TOPOLOGIES,
    PAPER_TOPOLOGIES,
    TOPOLOGY_BUILDERS,
    baseline,
    benes_cube,
    build,
    extra_stage_cube,
    flip,
    indirect_binary_cube,
    omega,
    reverse_baseline,
)
from repro.topology.properties import (
    has_full_access,
    is_banyan,
    is_buddy,
    stage_pairing_bits,
)

SIZES = [2, 4, 8, 16, 32]


class TestRegistry:
    def test_paper_topologies_are_registered(self):
        for name in PAPER_TOPOLOGIES:
            assert name in TOPOLOGY_BUILDERS

    def test_build_by_name(self):
        net = build("omega", 8)
        assert net.name == "omega"

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="baseline"):
            build("hypercube", 8)

    @pytest.mark.parametrize("name", sorted(BANYAN_TOPOLOGIES))
    @pytest.mark.parametrize("size", SIZES)
    def test_banyan_builders_have_log_stages(self, name, size):
        net = build(name, size)
        assert net.n_stages == size.bit_length() - 1
        assert net.n_ports == size

    @pytest.mark.parametrize("size", [4, 8, 16])
    def test_extra_stage_counts(self, size):
        n = size.bit_length() - 1
        assert benes_cube(size).n_stages == 2 * n - 1
        assert extra_stage_cube(size).n_stages == n + 1

    @pytest.mark.parametrize("builder", [omega, baseline, indirect_binary_cube, flip, reverse_baseline])
    def test_builders_reject_bad_sizes(self, builder):
        with pytest.raises(ValueError):
            builder(6)


class TestStructuralProperties:
    @pytest.mark.parametrize("name", sorted(BANYAN_TOPOLOGIES))
    @pytest.mark.parametrize("size", [4, 8, 16])
    def test_banyan_full_access_buddy(self, name, size):
        net = build(name, size)
        assert is_banyan(net), f"{name} must have unique paths"
        assert has_full_access(net), f"{name} must have full access"
        assert is_buddy(net), f"{name} must have the buddy property"

    def test_cube_pairs_bits_in_order(self):
        assert stage_pairing_bits(indirect_binary_cube(32)) == [0, 1, 2, 3, 4]

    def test_omega_stages_move_rows(self):
        assert stage_pairing_bits(omega(16)) == [None] * 4

    def test_baseline_last_stage_pairs_bit_zero(self):
        bits = stage_pairing_bits(baseline(16))
        assert bits[-1] == 0

    def test_flip_is_reverse_omega(self):
        f = flip(16)
        assert f.name == "flip"
        assert f.n_stages == 4
        # Flip's straight permutation is the identity like omega's.
        sp = f.straight_permutation()
        assert all(sp(x) == x for x in range(16))

    @pytest.mark.parametrize("builder", [benes_cube, extra_stage_cube])
    def test_extra_stage_networks_have_full_access_but_multiple_paths(self, builder):
        net = builder(8)
        assert has_full_access(net)
        assert not is_banyan(net)
        sp = net.straight_permutation()
        assert all(sp(x) == x for x in range(8))

    def test_minimum_network_is_one_switch(self):
        net = build("omega", 2)
        assert net.n_stages == 1
        assert net.n_switches == 1
        assert has_full_access(net)
