"""Tests for the wiring permutation family."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import permutations as perms
from repro.util.bits import bit_reverse

SIZES = [2, 4, 8, 16, 64]


def all_perm_factories(size):
    n = size.bit_length() - 1
    out = [
        perms.identity(size),
        perms.perfect_shuffle(size),
        perms.inverse_shuffle(size),
        perms.bit_reversal(size),
    ]
    out += [perms.butterfly(size, k) for k in range(n)]
    out += [perms.bit_to_front(size, k) for k in range(n)]
    return out


class TestBijectivity:
    @pytest.mark.parametrize("size", SIZES)
    def test_all_family_members_are_bijections(self, size):
        for p in all_perm_factories(size):
            assert sorted(p.table.tolist()) == list(range(size)), p.name

    @pytest.mark.parametrize("size", SIZES)
    def test_inverse_round_trip(self, size):
        for p in all_perm_factories(size):
            for x in range(size):
                assert p.inverse(p(x)) == x
                assert p(p.inverse(x)) == x


class TestSpecificPermutations:
    def test_shuffle_interleaves_halves(self):
        sh = perms.perfect_shuffle(8)
        # Input x goes to 2x mod (N-1)-style interleave: 4 -> 1, 1 -> 2.
        assert sh(4) == 1
        assert sh(1) == 2
        assert sh(0) == 0
        assert sh(7) == 7

    def test_unshuffle_is_shuffle_inverse(self):
        assert perms.inverse_shuffle(16) == perms.perfect_shuffle(16).inverse

    def test_bit_reversal_matches_helper(self):
        br = perms.bit_reversal(16)
        for x in range(16):
            assert br(x) == bit_reverse(x, 4)

    def test_butterfly_swaps_end_bits(self):
        b = perms.butterfly(8, 2)
        assert b(0b001) == 0b100
        assert b(0b101) == 0b101
        assert b == b.inverse

    def test_butterfly_zero_is_identity(self):
        assert perms.butterfly(8, 0) == perms.identity(8)

    def test_bit_to_front_moves_bit(self):
        p = perms.bit_to_front(8, 2)
        # Rows differing only in bit 2 land on adjacent rails.
        for x in range(8):
            assert p(x) // 2 == p(x ^ 4) // 2
            assert p(x) != p(x ^ 4)

    def test_bit_to_front_bounds(self):
        with pytest.raises(ValueError):
            perms.bit_to_front(8, 3)
        with pytest.raises(ValueError):
            perms.butterfly(8, -1)


class TestCombinators:
    def test_compose_order(self):
        sh = perms.perfect_shuffle(8)
        br = perms.bit_reversal(8)
        comp = perms.compose(sh, br)
        for x in range(8):
            assert comp(x) == br(sh(x))

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            perms.compose(perms.identity(4), perms.identity(8))

    def test_then_chains(self):
        sh = perms.perfect_shuffle(8)
        assert sh.then(sh.inverse) == perms.identity(8)

    def test_blockwise_unshuffle_stays_in_block(self):
        p = perms.blockwise(16, 4, perms.inverse_shuffle)
        for x in range(16):
            assert p(x) // 4 == x // 4

    def test_blockwise_requires_divisor(self):
        with pytest.raises(ValueError):
            perms.blockwise(16, 3, perms.identity)

    def test_from_mapping_validates(self):
        p = perms.from_mapping([2, 0, 1])
        assert p(0) == 2 and p.inverse(2) == 0
        with pytest.raises(ValueError):
            perms.from_mapping([0, 0, 1])


class TestPermutationObject:
    def test_equality_and_hash(self):
        a = perms.perfect_shuffle(8)
        b = perms.perfect_shuffle(8)
        assert a == b and hash(a) == hash(b)
        assert a != perms.identity(8)

    def test_out_of_range_call(self):
        with pytest.raises(ValueError):
            perms.identity(4)(4)

    def test_apply_vectorized_matches_scalar(self):
        p = perms.bit_reversal(16)
        xs = np.arange(16)
        assert np.array_equal(p.apply(xs), np.array([p(int(x)) for x in xs]))

    def test_invalid_fn_detected_on_table(self):
        bad = perms.Permutation(4, lambda x: 0, name="collapse")
        with pytest.raises(ValueError):
            _ = bad.table

    @given(st.sampled_from(SIZES), st.integers(0, 10_000))
    def test_shuffle_power_cycles(self, size, k):
        n = size.bit_length() - 1
        sh = perms.perfect_shuffle(size)
        x = k % size
        y = x
        for _ in range(n):
            y = sh(y)
        assert y == x  # shuffle has order n on n-bit addresses
