"""Tests for the radix-r generalization (r x r switch modules)."""

import numpy as np
import pytest

from repro.analysis.theory import radix_cube_link_multiplicity, radix_max_multiplicity
from repro.analysis.worstcase import (
    matching_stage_profile,
    radix_cube_adversarial_set,
)
from repro.core.conference import Conference
from repro.core.conflict import analyze_conflicts
from repro.core.routing import route_conference
from repro.switching.fabric import Fabric
from repro.topology.builders import indirect_binary_cube, omega, radix_cube, radix_delta
from repro.topology.permutations import digit_count, digit_shuffle, digit_to_front
from repro.topology.properties import has_full_access, is_banyan


class TestDigitPermutations:
    def test_digit_count(self):
        assert digit_count(27, 3) == 3
        assert digit_count(64, 4) == 3
        with pytest.raises(ValueError):
            digit_count(24, 3)
        with pytest.raises(ValueError):
            digit_count(8, 1)

    def test_digit_shuffle_generalizes_binary(self):
        from repro.topology.permutations import perfect_shuffle

        assert digit_shuffle(16, 2) == perfect_shuffle(16)

    def test_digit_shuffle_order_is_n(self):
        p = digit_shuffle(27, 3)
        for x in range(27):
            y = x
            for _ in range(3):
                y = p(y)
            assert y == x

    def test_digit_to_front_groups_digit_siblings(self):
        p = digit_to_front(27, 3, 1)
        for x in range(27):
            siblings = {x - (x // 3 % 3) * 3 + d * 3 for d in range(3)}
            assert {p(y) // 3 for y in siblings} == {p(x) // 3}


class TestRadixBuilders:
    def test_radix2_matches_binary_builders(self):
        assert np.array_equal(
            radix_cube(16, 2).successor_table, indirect_binary_cube(16).successor_table
        )
        assert np.array_equal(
            radix_delta(16, 2).successor_table, omega(16).successor_table
        )

    @pytest.mark.parametrize("radix,n_ports", [(3, 27), (4, 16), (4, 64), (8, 64)])
    def test_structure(self, radix, n_ports):
        for net in (radix_cube(n_ports, radix), radix_delta(n_ports, radix)):
            assert net.radix == radix
            assert net.n_stages == digit_count(n_ports, radix)
            assert has_full_access(net)
            assert is_banyan(net)

    @pytest.mark.parametrize("radix,n_ports", [(3, 27), (4, 64)])
    def test_straight_permutation_identity(self, radix, n_ports):
        for net in (radix_cube(n_ports, radix), radix_delta(n_ports, radix)):
            sp = net.straight_permutation()
            assert all(sp(x) == x for x in range(n_ports))

    def test_mixed_radix_rejected(self):
        from repro.topology.network import MultistageNetwork

        a = radix_cube(16, 4).stages[0]
        b = indirect_binary_cube(16).stages[0]
        with pytest.raises(ValueError, match="mix"):
            MultistageNetwork(16, [a, b])

    def test_fabric_rejects_radix_r(self):
        with pytest.raises(NotImplementedError, match="2x2"):
            Fabric(radix_cube(64, 4))


class TestRadixRouting:
    @pytest.mark.parametrize("radix,n_ports", [(3, 27), (4, 64)])
    def test_routes_deliver(self, radix, n_ports):
        net = radix_cube(n_ports, radix)
        conf = Conference.of([0, 5, n_ports - 1])
        route = route_conference(net, conf)
        for port, t in route.taps.items():
            assert route.mask_at(t, port) == conf.full_mask

    def test_digit_block_conference_combines_early(self):
        """A conference inside one radix-4 digit block combines in one
        stage — the radix analogue of the binary block locality."""
        net = radix_cube(64, 4)
        route = route_conference(net, Conference.of([0, 1, 2, 3]))
        assert route.depth == 1

    def test_radix_cube_aligned_blocks_conflict_free(self):
        """Radix-r digit blocks are the radix generalization of the
        Yang-2001 guarantee."""
        net = radix_cube(64, 4)
        groups = [[0, 1, 3], [4, 6], [16, 17, 18, 19], [32, 35]]
        routes = [route_conference(net, Conference.of(g, i)) for i, g in enumerate(groups)]
        assert analyze_conflicts(routes).conflict_free


class TestRadixLaws:
    @pytest.mark.parametrize("radix,n_ports", [(3, 27), (4, 16), (4, 64), (8, 64)])
    def test_adversarial_meets_law_at_every_level(self, radix, n_ports):
        net = radix_cube(n_ports, radix)
        n = net.n_stages
        for level in range(1, n + 1):
            cs = radix_cube_adversarial_set(n_ports, radix, level)
            routes = [route_conference(net, c) for c in cs]
            got = analyze_conflicts(routes).stage_profile[level - 1]
            assert got == radix_cube_link_multiplicity(level, n, radix)

    @pytest.mark.parametrize("radix,n_ports", [(3, 27), (4, 64)])
    def test_matching_profile_equals_law(self, radix, n_ports):
        net = radix_cube(n_ports, radix)
        n = net.n_stages
        law = tuple(radix_cube_link_multiplicity(t, n, radix) for t in range(1, n + 1))
        assert matching_stage_profile(net) == law

    def test_higher_radix_cuts_worst_case_at_fixed_n_ports(self):
        """The headline radix trade at N=64: worst dilation 8 (r=2) vs
        4 (r=4) — bigger switches buy thinner links."""
        assert radix_max_multiplicity(6, 2) == 8
        assert radix_max_multiplicity(3, 4) == 4
        assert radix_max_multiplicity(2, 8) == 8

    def test_law_validation(self):
        with pytest.raises(ValueError):
            radix_cube_link_multiplicity(0, 3, 4)
        with pytest.raises(ValueError):
            radix_cube_link_multiplicity(1, 3, 1)
        with pytest.raises(ValueError):
            radix_max_multiplicity(0, 4)


class TestRadixIntegration:
    def test_group_connections_route_on_radix_networks(self):
        from repro.core.groupcast import GroupConnection, route_group

        net = radix_cube(64, 4)
        route = route_group(net, GroupConnection.multicast(0, [17, 42, 63]))
        for r, t in route.taps.items():
            assert route.mask_at(t, r) == 1

    def test_churn_on_radix_network(self):
        from repro.core.churn import join_member

        net = radix_cube(64, 4)
        route = route_conference(net, Conference.of([0, 1]))
        result = join_member(net, route, 2)  # stays inside the digit block
        assert result.hitless

    def test_faults_on_radix_network(self):
        from repro.core.routing import UnroutableError

        net = radix_cube(64, 4)
        conf = Conference.of([0, 1])
        route = route_conference(net, conf)
        # Banyan fragility generalizes: any used link is fatal.
        victim = min(route.links)
        with pytest.raises(UnroutableError):
            route_conference(net, conf, faults=frozenset({victim}))

    def test_scheduling_on_radix_network(self):
        from repro.analysis.scheduling import schedule_slots

        net = radix_cube(64, 4)
        cs = radix_cube_adversarial_set(64, 4, 1)
        routes = [route_conference(net, c) for c in cs]
        res = schedule_slots(routes)
        assert res.n_slots == res.clique_bound == 4
