"""Tests for classic unicast/permutation routing on the substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.builders import BANYAN_TOPOLOGIES, build
from repro.topology.graph import unique_path
from repro.topology.unicast import (
    count_passable_permutations,
    destination_tag_path,
    is_permutation_passable,
    route_permutation,
)
from repro.util.bits import bit_reverse

TOPOLOGIES = sorted(BANYAN_TOPOLOGIES)


class TestDestinationTag:
    @settings(max_examples=60, deadline=None)
    @given(name=st.sampled_from(TOPOLOGIES), s=st.integers(0, 15), d=st.integers(0, 15))
    def test_matches_unique_path(self, name, s, d):
        net = build(name, 16)
        assert destination_tag_path(net, s, d) == unique_path(net, s, d)


class TestPermutationRouting:
    def test_identity_passes_omega(self):
        """Identity = all-straight switches on omega: trivially passable."""
        net = build("omega", 8)
        owner = route_permutation(net, list(range(8)))
        assert owner is not None
        assert len(owner) == 8 * 3  # every connection owns 3 links

    def test_bit_reversal_passes_baseline(self):
        """Baseline realizes bit reversal with straight switches."""
        net = build("baseline", 8)
        assert is_permutation_passable(net, [bit_reverse(x, 3) for x in range(8)])

    def test_known_blocking_case_on_omega(self):
        """Sending 0->0 and 4->1 collides in an omega network: both paths
        need the same first-stage output."""
        net = build("omega", 8)
        perm = [0, 2, 3, 4, 1, 5, 6, 7]  # 0->0 and 4->1 among others
        assert not is_permutation_passable(net, perm)

    def test_validation(self):
        net = build("omega", 8)
        with pytest.raises(ValueError, match="not a permutation"):
            route_permutation(net, [0, 0, 1, 2, 3, 4, 5, 6])
        from repro.topology.builders import benes_cube

        with pytest.raises(ValueError, match="banyan"):
            route_permutation(benes_cube(8), list(range(8)))

    def test_shift_permutations_pass_omega(self):
        """Cyclic shifts are classic omega-passable permutations."""
        net = build("omega", 8)
        for k in range(8):
            assert is_permutation_passable(net, [(x + k) % 8 for x in range(8)])


class TestPassableCounts:
    def test_counts_match_across_equivalent_topologies_n4(self):
        """All three paper topologies pass the same *number* of
        permutations at N=4 (they are relabel-equivalent), far below 4!."""
        counts = {
            name: count_passable_permutations(build(name, 4))
            for name in ("omega", "baseline", "indirect-binary-cube")
        }
        assert len(set(counts.values())) == 1
        count = next(iter(counts.values()))
        # A 4-port banyan has 4 switches -> at most 2^4 = 16 states.
        assert count <= 16 < 24
        assert count == 16  # every switch state realizes a distinct permutation

    def test_size_guard(self):
        with pytest.raises(ValueError):
            count_passable_permutations(build("omega", 16))
