"""Tests for layered-graph algorithms."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology.builders import BANYAN_TOPOLOGIES, build
from repro.topology.graph import (
    all_paths,
    backward_cone,
    count_paths,
    forward_cone,
    to_networkx,
    unique_path,
)

TOPOLOGIES = sorted(BANYAN_TOPOLOGIES)


class TestCones:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_forward_cone_levels_and_growth(self, name):
        net = build(name, 16)
        cones = forward_cone(net, (0, 3))
        assert len(cones) == net.n_levels
        assert cones[0] == frozenset({3})
        for level in range(1, net.n_levels):
            assert len(cones[level]) == min(2 ** level, 16)

    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_backward_cone_mirrors_forward(self, name):
        net = build(name, 16)
        for src in (0, 7):
            for dst in (2, 13):
                fwd = forward_cone(net, (0, src))
                bwd = backward_cone(net, (net.n_stages, dst))
                # Membership duality: src in bwd[0] iff dst in fwd[-1].
                assert (src in bwd[0]) == (dst in fwd[-1])

    def test_cone_from_interior_point(self):
        net = build("omega", 16)
        cones = forward_cone(net, (2, 5))
        assert len(cones) == net.n_stages - 2 + 1
        assert cones[0] == frozenset({5})


class TestPaths:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_every_pair_has_unique_path(self, name):
        net = build(name, 8)
        for s in range(8):
            for d in range(8):
                assert count_paths(net, s, d) == 1
                path = unique_path(net, s, d)
                assert path[0] == (0, s)
                assert path[-1] == (net.n_stages, d)
                assert len(path) == net.n_levels

    def test_path_steps_are_edges(self):
        net = build("baseline", 16)
        path = unique_path(net, 3, 12)
        for (l1, r1), (l2, r2) in zip(path, path[1:]):
            assert l2 == l1 + 1
            assert (l2, r2) in net.successors(l1, r1)

    def test_all_paths_matches_count(self):
        net = build("omega", 8)
        for s in (0, 5):
            for d in (1, 6):
                assert len(all_paths(net, s, d)) == count_paths(net, s, d)

    @given(st.sampled_from(TOPOLOGIES), st.integers(0, 15), st.integers(0, 15))
    def test_unique_path_hypothesis(self, name, s, d):
        net = build(name, 16)
        path = unique_path(net, s, d)
        assert path[0] == (0, s) and path[-1] == (net.n_stages, d)


class TestMultiPathNetworks:
    def test_benes_has_multiple_paths(self):
        from repro.topology.builders import benes_cube

        net = benes_cube(8)
        counts = {count_paths(net, 0, d) for d in range(8)}
        assert max(counts) > 1  # redundancy the banyan networks lack
        with pytest.raises(ValueError, match="unique path"):
            # pick a pair with several paths
            dest = next(d for d in range(8) if count_paths(net, 0, d) > 1)
            unique_path(net, 0, dest)

    def test_all_paths_enumerates_benes_redundancy(self):
        from repro.topology.builders import benes_cube

        net = benes_cube(8)
        for d in (0, 3, 7):
            assert len(all_paths(net, 0, d)) == count_paths(net, 0, d)


class TestNetworkxExport:
    def test_export_shape(self):
        net = build("omega", 8)
        g = to_networkx(net)
        assert g.number_of_nodes() == net.n_levels * 8
        assert g.number_of_edges() == net.n_stages * 8 * 2

    def test_export_is_dag_with_level_layers(self):
        net = build("indirect-binary-cube", 8)
        g = to_networkx(net)
        assert nx.is_directed_acyclic_graph(g)
        for (l1, _), (l2, _) in g.edges():
            assert l2 == l1 + 1

    def test_export_edge_attributes(self):
        net = build("baseline", 8)
        g = to_networkx(net)
        for _, _, data in g.edges(data=True):
            assert 0 <= data["stage"] < net.n_stages
            assert 0 <= data["switch"] < 4

    def test_paths_agree_with_networkx(self):
        net = build("omega", 8)
        g = to_networkx(net)
        for s, d in [(0, 0), (3, 6), (7, 1)]:
            nx_count = sum(
                1 for _ in nx.all_simple_paths(g, (0, s), (net.n_stages, d))
            )
            assert nx_count == count_paths(net, s, d)
