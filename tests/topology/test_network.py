"""Tests for the generic multistage network model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology.builders import TOPOLOGY_BUILDERS, build
from repro.topology.network import MultistageNetwork, Stage
from repro.topology.permutations import identity
from repro.util.bits import bit_reverse

TOPOLOGIES = sorted(TOPOLOGY_BUILDERS)
topology_and_size = st.tuples(st.sampled_from(TOPOLOGIES), st.sampled_from([4, 8, 16, 32]))


class TestConstruction:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            MultistageNetwork(6, [Stage(identity(6), identity(6))])

    def test_requires_stages(self):
        with pytest.raises(ValueError):
            MultistageNetwork(8, [])

    def test_stage_size_must_match(self):
        with pytest.raises(ValueError):
            MultistageNetwork(8, [Stage(identity(4), identity(4))])

    def test_stage_wiring_sizes_must_match(self):
        with pytest.raises(ValueError):
            Stage(identity(4), identity(8))

    def test_shape_properties(self):
        net = build("omega", 16)
        assert net.n_ports == 16
        assert net.n_stages == 4
        assert net.n_levels == 5
        assert net.n_switches == 4 * 8
        assert net.n_links == 4 * 16
        assert "omega" in repr(net)


class TestStageNavigation:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_successor_predecessor_duality(self, name):
        net = build(name, 16)
        for level in range(net.n_stages):
            for row in range(16):
                for nxt in net.successors(level, row):
                    assert (level, row) in net.predecessors(*nxt)

    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_successor_table_matches_scalar(self, name):
        net = build(name, 16)
        tab = net.successor_table
        for level in range(net.n_stages):
            for row in range(16):
                succ = {p[1] for p in net.successors(level, row)}
                assert succ == {int(tab[level, row, 0]), int(tab[level, row, 1])}

    def test_tables_are_readonly(self):
        net = build("omega", 8)
        with pytest.raises(ValueError):
            net.successor_table[0, 0, 0] = 5
        with pytest.raises(ValueError):
            net.predecessor_table[0, 0, 0] = 5

    def test_navigation_bounds(self):
        net = build("omega", 8)
        with pytest.raises(ValueError):
            net.successors(3, 0)  # level 3 is the output column
        with pytest.raises(ValueError):
            net.predecessors(0, 0)
        with pytest.raises(ValueError):
            net.successors(0, 8)

    def test_switch_partners_are_symmetric(self):
        for name in TOPOLOGIES:
            net = build(name, 16)
            for stage in net.stages:
                for row in range(16):
                    partner = stage.partner_row(row)
                    assert partner != row
                    assert stage.partner_row(partner) == row
                    assert stage.switch_of_row(partner) == stage.switch_of_row(row)

    def test_switch_io_consistent_with_successors(self):
        net = build("baseline", 16)
        for s, stage in enumerate(net.stages):
            for sw in range(8):
                (in_a, in_b), (out_a, out_b) = stage.switch_io(sw)
                assert set(stage.successors(in_a)) == {out_a, out_b}
                assert set(stage.successors(in_b)) == {out_a, out_b}

    def test_switch_io_bounds(self):
        net = build("baseline", 8)
        with pytest.raises(ValueError):
            net.stages[0].switch_io(4)


class TestStraightPermutation:
    def test_omega_straight_is_identity(self):
        sp = build("omega", 32).straight_permutation()
        assert all(sp(x) == x for x in range(32))

    def test_cube_straight_is_identity(self):
        sp = build("indirect-binary-cube", 32).straight_permutation()
        assert all(sp(x) == x for x in range(32))

    def test_baseline_straight_is_bit_reversal(self):
        sp = build("baseline", 32).straight_permutation()
        assert all(sp(x) == bit_reverse(x, 5) for x in range(32))


class TestReachability:
    @given(topology_and_size, st.data())
    def test_forward_cone_doubles_until_saturation(self, ts, data):
        name, size = ts
        net = build(name, size)
        row = data.draw(st.integers(0, size - 1))
        frontier = {row}
        for level in range(net.n_stages):
            reached = net.reachable_rows(0, row, level)
            assert len(reached) == min(1 << level, size)
        assert net.reachable_rows(0, row, net.n_stages) == frozenset(range(size))

    @given(topology_and_size, st.data())
    def test_reach_and_coreach_agree(self, ts, data):
        name, size = ts
        net = build(name, size)
        src = data.draw(st.integers(0, size - 1))
        dst = data.draw(st.integers(0, size - 1))
        level = data.draw(st.integers(0, net.n_stages))
        fwd = net.reachable_rows(0, src, level)
        back = net.co_reachable_rows(net.n_stages, dst, level)
        # src reaches dst through level `level` iff the cones intersect.
        assert bool(fwd & back) == (dst in net.reachable_rows(0, src, net.n_stages))

    def test_backward_reach_rejected(self):
        net = build("omega", 8)
        with pytest.raises(ValueError):
            net.reachable_rows(2, 0, 1)


class TestReversedNetwork:
    @pytest.mark.parametrize("name", ["omega", "baseline", "indirect-binary-cube"])
    def test_double_reverse_restores_behaviour(self, name):
        net = build(name, 16)
        rev2 = net.reversed_network().reversed_network()
        assert np.array_equal(net.successor_table, rev2.successor_table)

    def test_reverse_swaps_cones(self):
        net = build("omega", 16)
        rev = net.reversed_network()
        for row in (0, 5, 11):
            fwd = net.reachable_rows(0, row, net.n_stages)
            assert rev.co_reachable_rows(net.n_stages, row, 0) == fwd

    def test_reverse_names(self):
        assert build("omega", 8).reversed_network().name == "reverse-omega"
