"""Tests for the crossbar reference implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conference import ConferenceSet
from repro.core.network import ConferenceNetwork
from repro.switching.crossbar import ConferenceCrossbar


class TestCrossbar:
    def test_delivery(self):
        xbar = ConferenceCrossbar(8)
        cs = ConferenceSet.of(8, [[0, 3, 5], [1, 2]])
        out = xbar.realize(cs)
        assert out.correct
        assert out.delivered[0][3] == frozenset({0, 3, 5})
        assert out.delivered[1][1] == frozenset({1, 2})
        assert out.contacts_closed == 9 + 4

    def test_size_checks(self):
        with pytest.raises(ValueError):
            ConferenceCrossbar(6)
        with pytest.raises(ValueError):
            ConferenceCrossbar(8).realize(ConferenceSet.of(16, [[0, 1]]))

    def test_total_crosspoints(self):
        assert ConferenceCrossbar(16).total_crosspoints == 256

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_crossbar_and_fabric_agree(self, seed):
        """Behavioural equivalence: the multistage fabric (with enough
        dilation) and the crossbar deliver identical mixes."""
        from repro.workloads.generators import uniform_partition

        cs = uniform_partition(16, load=0.8, seed=seed)
        xbar_out = ConferenceCrossbar(16).realize(cs)
        net_out = ConferenceNetwork.build("omega", 16, dilation=16).realize(cs)
        assert net_out.ok
        assert net_out.delivery.delivered == xbar_out.delivered
