"""Tests for the output multiplexer relay."""

import pytest

from repro.switching.mux import MuxBank, OutputMux


class TestOutputMux:
    def test_tap_points(self):
        mux = OutputMux(row=5, n_stages=4)
        assert mux.n_inputs == 5
        assert mux.select(0) == (0, 5)
        assert mux.select(4) == (4, 5)

    def test_select_bounds(self):
        with pytest.raises(ValueError):
            OutputMux(row=0, n_stages=3).select(4)


class TestMuxBank:
    def test_selection_round_trip(self):
        bank = MuxBank(8, 3)
        bank.set_selection(2, 1)
        bank.set_selection(5, 3)
        assert bank.selection(2) == 1
        assert bank.selection(0) is None
        assert bank.selected_points() == {2: (1, 2), 5: (3, 5)}

    def test_clear(self):
        bank = MuxBank(8, 3)
        bank.set_selection(1, 2)
        bank.clear()
        assert bank.selection(1) is None

    def test_relay_disabled_forces_final_stage(self):
        bank = MuxBank(8, 3, relay_enabled=False)
        bank.set_selection(0, 3)  # final stage is fine
        with pytest.raises(ValueError, match="relay disabled"):
            bank.set_selection(0, 1)

    def test_gate_cost(self):
        assert MuxBank(8, 3).gate_cost() == 8 * 4
        assert MuxBank(8, 3, relay_enabled=False).gate_cost() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MuxBank(6, 3)
        with pytest.raises(ValueError):
            MuxBank(8, 0)
        bank = MuxBank(8, 3)
        with pytest.raises(ValueError):
            bank.set_selection(8, 1)
        with pytest.raises(ValueError):
            bank.set_selection(0, 4)
