"""Tests for switch-module semantics."""

import pytest

from repro.switching.switch import (
    COMBINE_BROADCAST,
    CROSS,
    IDLE,
    STRAIGHT,
    Signal,
    SwitchSetting,
)


def sig(conf, *members):
    return Signal(conf, frozenset(members))


class TestSignal:
    def test_combine_unions_members(self):
        assert sig(1, 1, 2).combine(sig(1, 3)).members == frozenset({1, 2, 3})

    def test_combine_rejects_cross_conference(self):
        with pytest.raises(ValueError, match="conferences"):
            sig(1, 1).combine(sig(2, 2))

    def test_repr_is_stable(self):
        assert "conf=3" in repr(sig(3, 9, 1))


class TestSwitchSetting:
    def test_straight(self):
        o0, o1 = STRAIGHT.apply(sig(0, 1), sig(0, 2))
        assert o0.members == frozenset({1}) and o1.members == frozenset({2})

    def test_cross(self):
        o0, o1 = CROSS.apply(sig(0, 1), sig(0, 2))
        assert o0.members == frozenset({2}) and o1.members == frozenset({1})

    def test_combine_broadcast(self):
        o0, o1 = COMBINE_BROADCAST.apply(sig(0, 1), sig(0, 2))
        assert o0.members == o1.members == frozenset({1, 2})

    def test_idle(self):
        assert IDLE.apply(sig(0, 1), None) == (None, None)
        assert IDLE.is_idle
        assert not STRAIGHT.is_idle

    def test_partial_fanin(self):
        setting = SwitchSetting(out0=frozenset({0, 1}), out1=frozenset())
        o0, o1 = setting.apply(sig(0, 4), sig(0, 9))
        assert o0.members == frozenset({4, 9})
        assert o1 is None

    def test_silent_selected_rail_raises(self):
        with pytest.raises(ValueError, match="silent"):
            STRAIGHT.apply(sig(0, 1), None)

    def test_invalid_rails_rejected(self):
        with pytest.raises(ValueError):
            SwitchSetting(out0=frozenset({2}))

    def test_io_views(self):
        setting = SwitchSetting.for_io(frozenset({1}), frozenset({0, 1}))
        assert setting.inputs_used == frozenset({1})
        assert setting.outputs_used == frozenset({0, 1})
        o0, o1 = setting.apply(None, sig(2, 7))
        assert o0.members == o1.members == frozenset({7})

    def test_for_io_empty_outputs(self):
        assert SwitchSetting.for_io(frozenset({0}), frozenset()).is_idle
