"""Tests for the hardware-level fabric simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conference import Conference
from repro.core.routing import RoutingPolicy, TapPolicy, route_conference
from repro.switching.fabric import CapacityExceeded, Fabric
from repro.topology.builders import PAPER_TOPOLOGIES, build

TOPOLOGIES = sorted(PAPER_TOPOLOGIES)


def routes_for(net, groups, policy=None):
    return [
        route_conference(net, Conference.of(g, conference_id=i), policy)
        for i, g in enumerate(groups)
    ]


class TestDelivery:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_simple_set_delivers(self, name):
        net = build(name, 16)
        fabric = Fabric(net, dilation=16)
        routes = routes_for(net, [[0, 5, 9], [12, 13], [1, 2, 3, 4]])
        report = fabric.simulate(routes)
        assert report.correct
        for route in routes:
            cid = route.conference.conference_id
            for port in route.conference.members:
                assert report.delivered[cid][port] == route.conference.member_set

    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_singleton_hears_itself(self, name):
        net = build(name, 8)
        fabric = Fabric(net)
        report = fabric.simulate(routes_for(net, [[3]]))
        assert report.correct
        assert report.delivered[0][3] == frozenset({3})

    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_whole_network_conference(self, name):
        net = build(name, 16)
        fabric = Fabric(net)
        report = fabric.simulate(routes_for(net, [list(range(16))]))
        assert report.correct

    def test_final_tap_policy_also_delivers(self):
        net = build("omega", 16)
        fabric = Fabric(net, dilation=4, relay_enabled=False)
        routes = routes_for(net, [[0, 3, 9]], RoutingPolicy(tap_policy=TapPolicy.FINAL))
        assert fabric.simulate(routes).correct

    def test_relay_disabled_rejects_early_taps(self):
        net = build("omega", 16)
        fabric = Fabric(net, dilation=4, relay_enabled=False)
        # Members {0, 8} share their low bits, so member 0's earliest tap
        # is level 1 — illegal without the relay.
        routes = routes_for(net, [[0, 8]])
        report = fabric.simulate(routes)
        assert not report.correct
        assert any("relay" in err for err in report.errors)

    @settings(max_examples=40, deadline=None)
    @given(
        name=st.sampled_from(TOPOLOGIES),
        data=st.data(),
    )
    def test_random_disjoint_sets_deliver_exactly(self, name, data):
        """Property: on the real fabric, every member of every conference
        hears exactly the full mix, never more, never less."""
        net = build(name, 16)
        ports = data.draw(st.permutations(range(16)))
        n_confs = data.draw(st.integers(1, 5))
        cuts = sorted(data.draw(
            st.lists(st.integers(1, 15), min_size=n_confs - 1, max_size=n_confs - 1, unique=True)
        ))
        groups = [list(g) for g in _split(ports, cuts) if g]
        fabric = Fabric(net, dilation=len(groups) or 1)
        report = fabric.simulate(routes_for(net, groups), check_capacity=True)
        assert report.correct


def _split(seq, cuts):
    prev = 0
    for c in list(cuts) + [len(seq)]:
        yield seq[prev:c]
        prev = c


class TestCapacity:
    def test_capacity_enforced(self):
        net = build("indirect-binary-cube", 16)
        fabric = Fabric(net, dilation=1)
        # Interleaved conferences {0,3} and {1,2} both spread over rows
        # 0..3 at stage 1 of the cube.
        routes = routes_for(net, [[0, 3], [1, 2]])
        with pytest.raises(CapacityExceeded) as exc:
            fabric.simulate(routes)
        assert exc.value.demanded == 2
        assert exc.value.capacity == 1

    def test_capacity_check_can_be_disabled(self):
        net = build("indirect-binary-cube", 16)
        fabric = Fabric(net, dilation=1)
        routes = routes_for(net, [[0, 3], [1, 2]])
        report = fabric.simulate(routes, check_capacity=False)
        assert report.correct  # signals still deliver; peak load reports the conflict
        assert report.peak_link_load == 2

    def test_dilation_validation(self):
        with pytest.raises(ValueError):
            Fabric(build("omega", 8), dilation=0)


class TestGuards:
    def test_overlapping_conferences_rejected(self):
        net = build("omega", 8)
        fabric = Fabric(net, dilation=4)
        routes = routes_for(net, [[0, 1], [1, 2]])
        with pytest.raises(ValueError, match="share port"):
            fabric.simulate(routes)

    def test_derive_settings_cover_route_stages(self):
        net = build("baseline", 16)
        fabric = Fabric(net, dilation=4)
        (route,) = routes_for(net, [[0, 7, 11]])
        settings = fabric.derive_settings([route])
        deepest = max(route.taps.values())
        stages_touched = {key[0] for key in settings}
        assert stages_touched == set(range(deepest))
