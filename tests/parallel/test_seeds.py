"""Property tests for the deterministic seed-stream splitter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.seeds import (
    chunk_slices,
    chunk_tasks,
    seed_fingerprint,
    spawn_seed_sequences,
    trial_seeds,
)

pytestmark = pytest.mark.tier1

seeds = st.integers(min_value=0, max_value=2**63 - 1)


@given(seed=seeds, count=st.integers(min_value=1, max_value=128))
@settings(max_examples=60, deadline=None)
def test_no_collisions_across_shards(seed, count):
    """Distinct trials never share a stream, whatever the root seed."""
    fingerprints = [seed_fingerprint(s) for s in spawn_seed_sequences(seed, count)]
    assert len(set(fingerprints)) == count
    # ...and no child collides with the root stream itself.
    assert seed_fingerprint(seed) not in fingerprints


@given(seed=seeds, count=st.integers(min_value=0, max_value=64), extra=st.integers(min_value=1, max_value=64))
@settings(max_examples=60, deadline=None)
def test_prefix_stability(seed, count, extra):
    """Trial ``i``'s stream does not depend on the total trial count."""
    short = [seed_fingerprint(s) for s in spawn_seed_sequences(seed, count)]
    long = [seed_fingerprint(s) for s in spawn_seed_sequences(seed, count + extra)]
    assert long[:count] == short


@given(
    seed=seeds,
    count=st.integers(min_value=1, max_value=96),
    chunk_a=st.integers(min_value=1, max_value=96),
    chunk_b=st.integers(min_value=1, max_value=96),
)
@settings(max_examples=60, deadline=None)
def test_stability_under_rechunking(seed, count, chunk_a, chunk_b):
    """Chunking assigns work but never changes which seed a trial gets."""
    tasks = list(enumerate(trial_seeds(count, seed=seed)))

    def flatten(chunk_size):
        return [
            (index, seed_fingerprint(value))
            for chunk in chunk_tasks(tasks, chunk_size)
            for index, value in chunk
        ]

    assert flatten(chunk_a) == flatten(chunk_b)


@given(count=st.integers(min_value=0, max_value=200), chunk=st.integers(min_value=1, max_value=64))
@settings(max_examples=60, deadline=None)
def test_chunk_slices_partition(count, chunk):
    """Chunks tile ``range(count)`` exactly, in order, within size."""
    covered = []
    for s in chunk_slices(count, chunk):
        rows = list(range(count))[s]
        assert 1 <= len(rows) <= chunk
        covered.extend(rows)
    assert covered == list(range(count))


@given(seed=seeds, count=st.integers(min_value=1, max_value=32))
@settings(max_examples=30, deadline=None)
def test_spawned_generators_are_usable_and_reproducible(seed, count):
    streams = spawn_seed_sequences(seed, count)
    draws = [np.random.default_rng(s).integers(0, 1 << 30) for s in streams]
    again = [np.random.default_rng(s).integers(0, 1 << 30) for s in spawn_seed_sequences(seed, count)]
    assert draws == again


def test_trial_seeds_validation():
    assert trial_seeds(3, seeds=[5, 6, 7]) == [5, 6, 7]
    with pytest.raises(ValueError):
        trial_seeds(3, seeds=[5, 6])
    with pytest.raises(ValueError):
        trial_seeds(2, seed=1, seeds=[1, 2])
    with pytest.raises(ValueError):
        spawn_seed_sequences(0, -1)
    assert spawn_seed_sequences(0, 0) == []
