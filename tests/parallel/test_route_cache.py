"""Route cache correctness: equivalence with fresh routing and fault safety.

The cache memoizes ``route_conference`` keyed on ``(members, fault
set)``.  Two properties carry the whole design: a cached route is
indistinguishable from a freshly computed one, and an entry computed on
the healthy network is never served once a link has died (the satellite
fix this suite guards: stale-route reuse under live faults).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conference import Conference
from repro.core.healing import SelfHealingController
from repro.core.network import ConferenceNetwork
from repro.core.routing import RoutingPolicy, UnroutableError, route_conference
from repro.parallel.cache import CacheStats, RouteCache, shared_network, shared_route_cache
from repro.sim.engine import EventLoop
from repro.sim.faults import FaultInjector, FaultTransition, fault_universe
from repro.topology.builders import build

pytestmark = [pytest.mark.tier1, pytest.mark.parallel]

N_PORTS = 16
NET = build("extra-stage-cube", N_PORTS)
POLICY = RoutingPolicy()
FAULT_POINTS = fault_universe(NET)

members_sets = st.sets(st.integers(min_value=0, max_value=N_PORTS - 1), min_size=2, max_size=6)
fault_sets = st.sets(st.sampled_from(FAULT_POINTS), max_size=3)

# One shared cache across examples on purpose: later examples hit
# entries written by earlier ones, so the equality check below covers
# the rebuild-from-(levels, taps) path, not just fresh misses.
SHARED = RouteCache(NET, POLICY)


def _outcome(fn):
    try:
        return fn()
    except UnroutableError:
        return "unroutable"


class TestCachedEqualsFresh:
    @given(members=members_sets, faults=fault_sets)
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_conferences_and_faults(self, members, faults):
        conference = Conference.of(sorted(members))
        fresh = _outcome(
            lambda: route_conference(NET, conference, POLICY, faults=frozenset(faults) or None)
        )
        cached = _outcome(lambda: SHARED.route(conference, faults=frozenset(faults)))
        again = _outcome(lambda: SHARED.route(conference, faults=frozenset(faults)))
        assert cached == fresh
        assert again == fresh

    @given(members=members_sets)
    @settings(max_examples=40, deadline=None)
    def test_conference_id_is_a_label(self, members):
        # Entries are keyed by membership; the id on the way out is the
        # requester's, not the warmer's.
        cache = shared_route_cache("extra-stage-cube", N_PORTS)
        warm = cache.route(Conference.of(sorted(members), 7))
        reuse = cache.route(Conference.of(sorted(members), 99))
        assert reuse.conference.conference_id == 99
        assert (reuse.levels, reuse.taps) == (warm.levels, warm.taps)


class TestFaultSafety:
    """A cache populated before a fault must not serve stale routes."""

    def test_pre_fault_entry_bypassed_after_link_death(self):
        # Unique-path cube: killing a point on the only route makes the
        # conference unroutable, so serving the warm healthy entry would
        # be the stale-reuse bug this test pins down.
        net = build("indirect-binary-cube", N_PORTS)
        cache = RouteCache(net)
        conference = Conference.of([0, 1])
        healthy = cache.route(conference)
        dead = next(p for p in healthy.points if p in fault_universe(net))

        injector = FaultInjector(net, script=[FaultTransition(1.0, dead, True)])
        cache.attach(injector)
        loop = EventLoop()
        injector.start(loop)
        loop.run()

        assert cache.current_faults == frozenset({dead})
        assert len(cache) == 1  # the healthy entry is still resident...
        with pytest.raises(UnroutableError):
            cache.route(conference)  # ...but unreachable under the fault

    def test_fault_forces_detour_and_repair_restores_warm_entry(self):
        net = build("extra-stage-cube", N_PORTS)
        cache = RouteCache(net)
        conference = Conference.of([0, 1])
        healthy = cache.route(conference)
        dead = next(p for p in healthy.points if p in fault_universe(net))

        script = [FaultTransition(1.0, dead, True), FaultTransition(5.0, dead, False)]
        injector = FaultInjector(net, script=script)
        cache.attach(injector)
        loop = EventLoop()
        injector.start(loop)
        loop.run(until=2.0)

        detour = cache.route(conference)
        assert dead not in detour.points
        assert detour != healthy
        assert cache.stats.misses == 2  # healthy entry was not served

        loop.run()  # plays the repair
        assert cache.current_faults == frozenset()
        hits_before = cache.stats.hits
        assert cache.route(conference) == healthy
        assert cache.stats.hits == hits_before + 1

    def test_explicit_fault_argument_overrides_tracked_context(self):
        cache = RouteCache(NET)
        conference = Conference.of([2, 3])
        baseline = cache.route(conference)
        dead = next(p for p in baseline.points if p in FAULT_POINTS)
        detour = cache.route(conference, faults=frozenset({dead}))
        assert dead not in detour.points
        assert cache.route(conference) == baseline


class TestHealingWithCache:
    """The controller behaves bit-identically with and without a cache."""

    @staticmethod
    def _controller(cache=None):
        network = ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS)
        return SelfHealingController(network, rng=0, route_cache=cache), network

    @staticmethod
    def _exercise(healing):
        loop = EventLoop()
        for i, members in enumerate([(0, 1), (2, 3), (4, 5, 6, 7), (8, 15)]):
            healing.try_join(Conference.of(members, i))
        trace = []
        for point in ((1, 0), (2, 4), (1, 0)):
            healing.apply_fault(loop, point)
            trace.append((healing.live_conferences, healing.degraded_conferences.copy()))
            healing.apply_repair(loop, point)
            trace.append((healing.live_conferences, healing.degraded_conferences.copy()))
        routes = {cid: healing.route_of(cid) for cid in healing.live_conferences}
        return trace, routes, healing.stats

    def test_identical_behavior_and_warm_hits(self):
        plain, _ = self._controller()
        network = ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS)
        cache = RouteCache(network.topology, policy=network.policy)
        cached_ctl = SelfHealingController(network, rng=0, route_cache=cache)

        assert self._exercise(plain) == self._exercise(cached_ctl)
        assert cache.stats.hits > 0  # the repair walk reused warm entries

    def test_mismatched_cache_rejected(self):
        network = ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS)
        with pytest.raises(ValueError):
            SelfHealingController(network, route_cache=RouteCache(build("omega", N_PORTS)))
        with pytest.raises(ValueError):
            SelfHealingController(
                network,
                route_cache=RouteCache(network.topology, policy=RoutingPolicy(prune=True)),
            )


class TestLRUMechanics:
    def test_eviction_and_stats(self):
        cache = RouteCache(NET, maxsize=2)
        a, b, c = Conference.of([0, 1]), Conference.of([2, 3]), Conference.of([4, 5])
        cache.route(a)
        cache.route(b)
        cache.route(a)  # refresh a: b is now least recent
        cache.route(c)  # evicts b
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        cache.route(b)
        assert cache.stats.misses == 4
        assert cache.stats.hits == 1
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_negative_caching(self):
        net = build("indirect-binary-cube", N_PORTS)
        cache = RouteCache(net)
        conference = Conference.of([0, 1])
        dead = frozenset({next(iter(cache.route(conference).points & set(fault_universe(net))))})
        for _ in range(3):
            with pytest.raises(UnroutableError):
                cache.route(conference, faults=dead)
        assert cache.stats.unroutable == 1  # computed once, replayed twice

    def test_clear_and_validation(self):
        cache = RouteCache(NET)
        cache.route(Conference.of([0, 1]))
        cache.clear()
        assert len(cache) == 0
        with pytest.raises(ValueError):
            RouteCache(NET, maxsize=0)

    def test_shared_registry_is_per_key(self):
        assert shared_network("omega", 32) is shared_network("omega", 32)
        assert shared_route_cache("omega", 32) is shared_route_cache("omega", 32)
        assert shared_route_cache("omega", 32) is not shared_route_cache("omega", 16)


class TestCacheStats:
    """Edge cases of the hit/miss accounting and its worker-side merge."""

    def test_zero_request_hit_rate_is_zero(self):
        stats = CacheStats()
        assert stats.requests == 0
        assert stats.hit_rate == 0.0  # no division-by-zero

    def test_fresh_cache_reports_empty_stats(self):
        cache = RouteCache(NET)
        assert cache.stats == CacheStats()
        assert cache.stats.hit_rate == 0.0

    def test_post_invalidation_accounting(self):
        # A fault-context change moves the key namespace: the warm entry
        # stays resident but the next lookup is an honest miss, and the
        # derived rates must follow the raw counts through it.
        cache = RouteCache(build("extra-stage-cube", N_PORTS))
        conference = Conference.of([0, 1])
        cache.route(conference)
        cache.route(conference)
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        cache.set_faults(frozenset({FAULT_POINTS[0]}))
        cache.route(conference)
        assert (cache.stats.hits, cache.stats.misses) == (1, 2)
        assert cache.stats.requests == 3
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_merge_is_fieldwise_addition(self):
        a = CacheStats(hits=3, misses=1, evictions=2, unroutable=1)
        b = CacheStats(hits=1, misses=3, evictions=0, unroutable=0)
        total = a.merge(b)
        assert total == CacheStats(hits=4, misses=4, evictions=2, unroutable=1)
        assert total is not a and total is not b  # inputs untouched
        assert a == CacheStats(hits=3, misses=1, evictions=2, unroutable=1)
        assert total.hit_rate == pytest.approx(0.5)  # request-weighted

    def test_merged_folds_many_workers(self):
        per_worker = [
            CacheStats(hits=5, misses=5),
            CacheStats(hits=0, misses=10),
            CacheStats(),  # an idle worker contributes nothing
        ]
        total = CacheStats.merged(per_worker)
        assert total.requests == 20
        assert total.hit_rate == pytest.approx(0.25)
        assert CacheStats.merged([]) == CacheStats()

    def test_as_dict_includes_derived_fields(self):
        stats = CacheStats(hits=1, misses=3)
        assert stats.as_dict() == {
            "hits": 1,
            "misses": 3,
            "evictions": 0,
            "unroutable": 0,
            "requests": 4,
            "hit_rate": 0.25,
        }

    def test_merged_live_caches(self):
        # The sharded-sweep idiom: each worker's cache reports its own
        # stats, and the reducer folds them into one fabric-wide view.
        caches = [RouteCache(NET), RouteCache(NET)]
        for cache in caches:
            cache.route(Conference.of([0, 1]))
            cache.route(Conference.of([0, 1]))
        total = CacheStats.merged(cache.stats for cache in caches)
        assert (total.hits, total.misses) == (2, 2)
        assert total.hit_rate == pytest.approx(0.5)


class TestBatchPriming:
    def test_primed_equals_fresh_and_counts_inserts(self):
        cache = RouteCache(NET)
        batch = [Conference.of([0, 1]), Conference.of([2, 3, 4]), [0, 1]]
        assert cache.prime(batch) == 2  # third entry dedupes onto the first
        assert len(cache) == 2
        for conference in (Conference.of([0, 1]), Conference.of([2, 3, 4])):
            assert _outcome(lambda: cache.route(conference)) == _outcome(
                lambda: route_conference(NET, conference, POLICY)
            )
        # Primed entries were found warm: no misses, no recomputation.
        assert cache.stats.misses == 0
        assert cache.stats.hits == 2

    def test_prime_skips_present_entries(self):
        cache = RouteCache(NET)
        cache.route(Conference.of([0, 1]))
        assert cache.prime([Conference.of([0, 1])]) == 0

    def test_prime_stores_negative_entries(self):
        net = build("indirect-binary-cube", N_PORTS)
        cache = RouteCache(net)
        conference = Conference.of([0, 1])
        dead = frozenset(
            {next(iter(cache.route(conference).points & set(fault_universe(net))))}
        )
        assert cache.prime([conference], faults=dead) == 1
        with pytest.raises(UnroutableError):
            cache.route(conference, faults=dead)
        assert cache.stats.unroutable == 0  # primed, never computed on lookup

    def test_prime_never_caches_out_of_range_errors(self):
        cache = RouteCache(NET)
        assert cache.prime([Conference.of([0, 99])]) == 0
        with pytest.raises(ValueError):
            cache.route(Conference.of([0, 99]))

    def test_primed_route_matches_lookup_route(self):
        conference = Conference.of([1, 2, 6])
        primed, lazy = RouteCache(NET), RouteCache(NET)
        primed.prime([conference])
        # A route resolved by the columnar priming pass is byte-identical
        # to the one a cold per-object lookup computes.
        assert repr(primed.route(conference)) == repr(lazy.route(conference))
        assert primed.stats.misses == 0
