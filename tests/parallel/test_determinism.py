"""Differential suite: the parallel engine is bit-identical to serial.

The engine's contract is that worker count and chunk size are invisible
in the output — not statistically, *exactly*: per-trial records, their
order, and every derived summary statistic must match the serial
engine's output byte for byte.  These tests run the same experiments
through the inline serial path (``workers=None``) and through process
pools of width 1, 2 and 4 at several chunk sizes, and assert equality
of the full record structures.

Set ``REPRO_TEST_WORKERS`` to add an extra pool width to the grid (CI
runs the suite on a 2-worker matrix).
"""

import os

import pytest

from repro.parallel.experiments import (
    group_traffic_trial,
    random_load_arm,
    randomized_search_parallel,
    search_trials,
    summarize_multiplicities,
)
from repro.parallel.runner import ExperimentRunner, run_tasks, run_trials

pytestmark = [pytest.mark.tier1, pytest.mark.parallel]


def _worker_grid() -> list[int]:
    grid = [1, 2, 4]
    extra = int(os.environ.get("REPRO_TEST_WORKERS", "0"))
    if extra and extra not in grid:
        grid.append(extra)
    return grid


WORKERS = _worker_grid()
CHUNKS = (1, 4)


class TestRandomLoadDifferential:
    """F1-family sweep cells: parallel == serial, records and summary."""

    @pytest.mark.parametrize("topology,n_ports", [("indirect-binary-cube", 16), ("omega", 32)])
    def test_grid_matches_serial(self, topology, n_ports):
        serial = random_load_arm(topology, n_ports, trials=10, seed=123)
        assert len(serial["records"]) == 10
        assert [r["trial"] for r in serial["records"]] == list(range(10))
        for workers in WORKERS:
            for chunk in CHUNKS:
                parallel = random_load_arm(
                    topology, n_ports, trials=10, seed=123,
                    workers=workers, chunk_size=chunk,
                )
                assert parallel["records"] == serial["records"], (workers, chunk)
                assert parallel["summary"] == serial["summary"], (workers, chunk)

    def test_explicit_seed_list_matches_serial(self):
        seeds = range(1000, 1012)
        serial = random_load_arm(
            "indirect-binary-cube", 16, workload="clustered", trials=12,
            seeds=seeds, load=0.75,
        )
        parallel = random_load_arm(
            "indirect-binary-cube", 16, workload="clustered", trials=12,
            seeds=seeds, load=0.75, workers=2, chunk_size=5,
        )
        assert parallel == serial

    @pytest.mark.slow
    def test_default_chunking_matches_serial(self):
        serial = random_load_arm("baseline", 16, trials=17, seed=9)
        for workers in WORKERS:
            parallel = random_load_arm("baseline", 16, trials=17, seed=9, workers=workers)
            assert parallel == serial


class TestSearchDifferential:
    """The sharded randomized search reduces identically at any width."""

    def test_records_and_reduction_match_serial(self):
        serial_records = search_trials("indirect-binary-cube", 16, trials=12, pool_size=8, seed=7)
        serial_best = randomized_search_parallel(
            "indirect-binary-cube", 16, trials=12, pool_size=8, seed=7
        )
        for workers in WORKERS:
            for chunk in CHUNKS:
                records = search_trials(
                    "indirect-binary-cube", 16, trials=12, pool_size=8, seed=7,
                    workers=workers, chunk_size=chunk,
                )
                assert records == serial_records, (workers, chunk)
                best = randomized_search_parallel(
                    "indirect-binary-cube", 16, trials=12, pool_size=8, seed=7,
                    workers=workers, chunk_size=chunk,
                )
                assert best == serial_best, (workers, chunk)

    def test_randomized_search_workers_kwarg(self):
        from repro.analysis.worstcase import randomized_search
        from repro.topology.builders import build

        net = build("indirect-binary-cube", 16)
        one = randomized_search(net, trials=10, pool_size=8, seed=3, workers=1)
        two = randomized_search(net, trials=10, pool_size=8, seed=3, workers=2, chunk_size=3)
        assert one == two
        assert one.multiplicity >= 2

    @pytest.mark.slow
    def test_search_prefix_stability(self):
        # Growing the trial count only appends trials: a consequence of
        # the spawned seed streams that makes sweeps resumable.
        short = search_trials("omega", 16, trials=6, pool_size=8, seed=21, workers=2)
        long = search_trials("omega", 16, trials=10, pool_size=8, seed=21, workers=2)
        assert long[:6] == short


class TestMapDifferential:
    """Arm-level map: ordered, chunking-invariant reduction."""

    def test_group_traffic_trials_match_serial(self):
        params = {
            "topology": "indirect-binary-cube",
            "n_ports": 16,
            "group_size": 4,
            "n_groups": 3,
        }
        serial = run_trials(group_traffic_trial, 8, params=params, seeds=range(7000, 7008))
        for workers, chunk in ((2, 1), (4, 3)):
            parallel = run_trials(
                group_traffic_trial, 8, params=params, seeds=range(7000, 7008),
                workers=workers, chunk_size=chunk,
            )
            assert parallel == serial

    def test_map_preserves_item_order(self):
        runner = ExperimentRunner(workers=2, chunk_size=2)
        items = [{"topology": "omega", "n_ports": 16, "value": i} for i in range(7)]
        out = runner.map(_echo_item, items)
        assert [r["value"] for r in out] == list(range(7))

    def test_summary_is_pure_function_of_records(self):
        records = [{"max_multiplicity": m} for m in (3, 1, 4, 1, 5)]
        assert summarize_multiplicities(records) == summarize_multiplicities(list(records))


def _echo_item(item, params):
    return item


def test_runner_rejects_bad_config():
    with pytest.raises(ValueError):
        ExperimentRunner(workers=0)
    with pytest.raises(ValueError):
        ExperimentRunner(chunk_size=0)
    with pytest.raises(ValueError):
        run_trials(_echo_item, 4, seed=1, seeds=[1, 2, 3, 4])


def test_run_tasks_empty():
    assert run_tasks(_echo_item, [], workers=2) == []
