"""Tests for the migration queue budget and placement-delta planning."""

import pytest

from repro.cluster.directory import EntryState, SessionDirectory
from repro.cluster.placement import place_shard
from repro.cluster.rebalance import MigrationQueue, Move, plan_rebalance
from repro.serve.protocol import Priority


def _move(csid, kind="rebalance", source="s0"):
    return Move(
        cluster_session_id=csid,
        members=(csid,),
        priority=Priority.NORMAL,
        kind=kind,
        source_shard=source,
    )


class TestMigrationQueue:
    def test_budget_throttles_per_tick_batches(self):
        q = MigrationQueue(budget=3)
        for i in range(8):
            q.enqueue(_move(i))
        batches = [q.start_batch() for _ in range(4)]
        sizes = [len(b) for b in batches]
        assert sizes == [3, 3, 2, 0]  # never more than budget per tick
        assert [m.cluster_session_id for m in batches[0]] == [0, 1, 2]  # FIFO
        assert q.started == 8 and q.depth == 0

    def test_requeue_counts_attempts(self):
        q = MigrationQueue(budget=1)
        m = _move(0)
        q.enqueue(m)
        (started,) = q.start_batch()
        q.requeue(started)
        assert m.attempts == 1 and q.retried == 1
        assert q.start_batch() == [m]  # comes back on a later tick

    def test_discard_removes_only_the_named_session(self):
        q = MigrationQueue()
        a, b = _move(0), _move(1)
        q.enqueue(a)
        q.enqueue(b)
        assert q.discard(0) is a
        assert q.discard(0) is None
        assert list(q) == [b]

    def test_budget_validated(self):
        with pytest.raises(ValueError, match="budget"):
            MigrationQueue(budget=0)

    def test_unknown_move_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            _move(0, kind="teleport")


class TestPlanRebalance:
    def _directory(self, n, weights):
        d = SessionDirectory()
        for _ in range(n):
            e = d.create((0,))
            e.state = EntryState.ACTIVE
            e.shard_id = place_shard(e.cluster_session_id, weights)
            e.shard_session_id = 0
        return d

    def test_no_change_no_moves(self):
        weights = {"s0": 1.0, "s1": 1.0}
        d = self._directory(100, weights)
        plan = plan_rebalance(d.live(), weights)
        assert plan.moves == () and plan.fraction == 0.0
        assert plan.total_sessions == 100

    def test_scale_up_delta_targets_only_the_new_shard(self):
        old = {"s0": 1.0, "s1": 1.0}
        new = {**old, "s2": 1.0}
        d = self._directory(300, old)
        plan = plan_rebalance(d.live(), new)
        assert plan.moves  # something must move
        assert set(plan.targets) == {"s2"}
        for csid, source, target in plan.moves:
            assert target == "s2" and source in old
            assert place_shard(csid, new) == "s2"
        # expected fraction 1/3, generous slack for 300 samples
        assert plan.fraction == pytest.approx(1 / 3, abs=0.1)

    def test_only_active_entries_planned(self):
        weights = {"s0": 1.0}
        d = self._directory(5, weights)
        migrating = d.create((0,))
        migrating.state, migrating.shard_id = EntryState.MIGRATING, "gone"
        pending = d.create((1,))
        plan = plan_rebalance(d.live(), {"s1": 1.0})
        assert plan.total_sessions == 5  # pending/migrating not counted
        assert all(
            csid not in (migrating.cluster_session_id, pending.cluster_session_id)
            for csid, _, _ in plan.moves
        )

    def test_as_dict_json_ready(self):
        import json

        weights = {"s0": 1.0}
        d = self._directory(10, weights)
        plan = plan_rebalance(d.live(), {"s0": 1.0, "s1": 1.0})
        data = plan.as_dict()
        json.dumps(data)
        assert data["kind"] == "rebalance_plan"
        assert data["total_sessions"] == 10
