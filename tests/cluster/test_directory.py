"""Tests for the cluster-wide session directory."""

import pytest

from repro.cluster.directory import DirectoryEntry, EntryState, SessionDirectory
from repro.serve.protocol import Priority


class TestLifecycle:
    def test_create_mints_sequential_pending_entries(self):
        d = SessionDirectory()
        a = d.create((0, 1), Priority.INTERACTIVE)
        b = d.create((2, 3))
        assert (a.cluster_session_id, b.cluster_session_id) == (0, 1)
        assert a.state is EntryState.PENDING and a.live
        assert a.priority is Priority.INTERACTIVE and b.priority is Priority.NORMAL
        assert a.members == (0, 1)
        assert len(d) == 2 and 0 in d and 5 not in d

    def test_get_require(self):
        d = SessionDirectory()
        e = d.create((0,))
        assert d.get(e.cluster_session_id) is e
        assert d.require(e.cluster_session_id) is e
        assert d.get(99) is None
        with pytest.raises(KeyError, match="99"):
            d.require(99)

    def test_live_and_on_shard_filters(self):
        d = SessionDirectory()
        a, b, c = d.create((0,)), d.create((1,)), d.create((2,))
        a.state, a.shard_id = EntryState.ACTIVE, "s0"
        b.state, b.shard_id = EntryState.MIGRATING, "s0"
        c.state = EntryState.CLOSED
        assert d.live() == [a, b]
        assert d.on_shard("s0") == [a, b]
        assert d.on_shard("s1") == []
        assert not c.live

    def test_counts_cover_every_state(self):
        d = SessionDirectory()
        d.create((0,)).state = EntryState.LOST
        counts = d.counts()
        assert counts["lost"] == 1
        assert set(counts) == {s.value for s in EntryState}

    def test_record_move_bumps_generation_and_tally(self):
        d = SessionDirectory()
        e = d.create((0, 1))
        d.record_move(e.cluster_session_id, "s1", 7, failover=False)
        assert (e.shard_id, e.shard_session_id, e.generation) == ("s1", 7, 1)
        assert (e.moves, e.failovers) == (1, 0)
        d.record_move(e.cluster_session_id, "s2", 3, failover=True)
        assert e.generation == 2 and (e.moves, e.failovers) == (1, 1)

    def test_as_dict_round(self):
        e = DirectoryEntry(5, (1, 2), state=EntryState.ACTIVE, shard_id="s0")
        data = e.as_dict()
        assert data["session"] == 5 and data["state"] == "active"
        assert data["members"] == [1, 2]


class TestInconsistencies:
    def _homed(self):
        d = SessionDirectory()
        e = d.create((0, 1))
        e.state, e.shard_id, e.shard_session_id = EntryState.ACTIVE, "s0", 0
        return d, e

    def test_clean_bijection(self):
        d, _ = self._homed()
        assert d.inconsistencies({"s0": {0: (0, 1)}}) == []

    def test_active_without_home(self):
        d = SessionDirectory()
        d.create((0,)).state = EntryState.ACTIVE
        assert any("no home" in p for p in d.inconsistencies({}))

    def test_unknown_shard_and_dead_pointer(self):
        d, e = self._homed()
        assert any("unknown shard" in p for p in d.inconsistencies({}))
        assert any("dead" in p for p in d.inconsistencies({"s0": {}}))

    def test_membership_drift(self):
        d, _ = self._homed()
        assert any("drifted" in p for p in d.inconsistencies({"s0": {0: (0, 9)}}))

    def test_unclaimed_shard_session(self):
        d, _ = self._homed()
        probs = d.inconsistencies({"s0": {0: (0, 1), 1: (4, 5)}})
        assert any("unclaimed" in p for p in probs)

    def test_double_claim(self):
        d, e = self._homed()
        other = d.create((2, 3))
        other.state, other.shard_id, other.shard_session_id = (
            EntryState.ACTIVE,
            "s0",
            0,
        )
        assert any("both claim" in p for p in d.inconsistencies({"s0": {0: (0, 1)}}))

    def test_non_active_entries_ignored(self):
        d, e = self._homed()
        e.state = EntryState.MIGRATING  # mid-move entries are exempt
        assert d.inconsistencies({"s0": {0: (0, 1)}}) == [
            "shard 's0' hosts unclaimed session 0"
        ]
