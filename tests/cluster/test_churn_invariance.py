"""Shard-count invariance of churn replay.

Satellite of the 1.6 redesign: replaying the same churn timeline
through a :class:`ClusterService` at 1, 2, 4, and 8 shards must produce
byte-identical shard-invariant records — the incremental membership
path may not let placement leak into routing outcomes.  The CI
``churn-determinism`` job runs the same comparison via the W1 bench.
"""

import json

import pytest

from repro.cluster.controller import ClusterService
from repro.core.network import ConferenceNetwork
from repro.workloads.churn import diurnal_load, flash_crowd, lurker_joins, replay_churn

pytestmark = pytest.mark.tier1

N_PORTS = 32
SHARD_COUNTS = (1, 2, 4, 8)


def _replay(events, shards):
    def factory(shard_id):
        return ConferenceNetwork.build(
            "indirect-binary-cube", N_PORTS, dilation=N_PORTS
        )

    cluster = ClusterService(factory, shards=shards, rng=0)
    records = replay_churn(cluster, events, settle_ticks=128)
    return json.dumps(records, sort_keys=True)


@pytest.mark.parametrize(
    "timeline",
    [
        flash_crowd(N_PORTS, crowd=6, seed=3),
        diurnal_load(N_PORTS, seed=7),
        lurker_joins(N_PORTS, lurkers=5, seed=1),
    ],
    ids=["flash-crowd", "diurnal", "lurkers"],
)
def test_records_are_byte_identical_across_shard_counts(timeline):
    baseline = _replay(timeline, SHARD_COUNTS[0])
    for shards in SHARD_COUNTS[1:]:
        assert _replay(timeline, shards) == baseline, (
            f"churn replay diverged at {shards} shards"
        )


def test_records_strip_shard_specific_detail():
    records = json.loads(_replay(lurker_joins(N_PORTS, lurkers=3, seed=0), 4))
    assert records, "empty replay"
    for record in records:
        assert "shard" not in record.get("detail", {})
