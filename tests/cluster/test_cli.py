"""Tests for the cluster CLI commands."""

import json

from repro.cli import main


class TestClusterCommand:
    def test_drill_runs_clean(self, capsys):
        rc = main([
            "cluster", "--ports", "16", "--shards", "3",
            "--conferences", "30", "--kill-at", "5", "--add-at", "15",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cluster drill" in out
        assert "0 sessions lost" in out
        assert "killed shard-" in out and "added shard-" in out

    def test_drills_can_be_disabled(self, capsys):
        rc = main([
            "cluster", "--ports", "16", "--shards", "2",
            "--conferences", "20", "--kill-at", "-1", "--add-at", "-1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "killed" not in out and "added" not in out

    def test_json_report(self, capsys, tmp_path):
        path = tmp_path / "drill.json"
        rc = main([
            "cluster", "--ports", "16", "--shards", "2",
            "--conferences", "20", "--kill-at", "-1", "--add-at", "-1",
            "--json", str(path),
        ])
        assert rc == 0
        data = json.loads(path.read_text())
        assert data["kind"] == "cluster_bench" and data["ok"] is True


class TestBenchClusterCommand:
    ARGS = [
        "bench-cluster", "--ports", "16", "--conferences", "30",
        "--seed", "5", "--resize-prob", "0.2",
    ]

    def test_bench_runs_and_reports(self, capsys):
        rc = main([*self.ARGS, "--shards", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cluster bench" in out and "result: ok" in out

    def test_invariant_json_identical_across_shard_counts(self, capsys, tmp_path):
        paths = {}
        for shards in (1, 4):
            paths[shards] = tmp_path / f"inv{shards}.json"
            rc = main([*self.ARGS, "--shards", str(shards),
                       "--invariant-json", str(paths[shards])])
            assert rc == 0
        capsys.readouterr()
        assert paths[1].read_bytes() == paths[4].read_bytes()

    def test_full_json_differs_per_shard_count(self, capsys, tmp_path):
        path = tmp_path / "full.json"
        rc = main([*self.ARGS, "--shards", "2", "--json", str(path)])
        assert rc == 0
        data = json.loads(path.read_text())
        assert data["shards"] == 2 and set(data["per_shard"]) == {
            "shard-0",
            "shard-1",
        }

    def test_telemetry_flags(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        prom = tmp_path / "m.prom"
        rc = main([*self.ARGS, "--shards", "2",
                   "--trace-out", str(trace), "--metrics-out", str(prom)])
        assert rc == 0
        assert trace.exists() and trace.stat().st_size > 0
        assert "repro_cluster_requests_total" in prom.read_text()
