"""Tests for ClusterService: routing, drain, failover, elastic scaling."""

import pytest

from repro.cluster.controller import ClusterService, ShardState
from repro.cluster.directory import EntryState
from repro.core.network import ConferenceNetwork
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serve.protocol import Priority


def _factory(shard_id):
    return ConferenceNetwork.build("indirect-binary-cube", 16, dilation=16)


def _cluster(**kw):
    kw.setdefault("shards", 2)
    kw.setdefault("rng", 0)
    return ClusterService(_factory, **kw)


def _settle(cluster, ticks=50):
    """Tick until the cluster is idle (bounded)."""
    for _ in range(ticks):
        cluster.tick()
        if not cluster.migrations.depth and not cluster.directory.counts()["pending"]:
            if cluster.check_consistency() == []:
                return
    raise AssertionError("cluster did not settle")


def _open(cluster, members, **kw):
    """Open and settle one conference; returns (csid, terminal response)."""
    got = []
    csid = cluster.submit_open(members, on_complete=got.append, **kw)
    for _ in range(20):
        if got:
            break
        cluster.tick()
    assert got, "open verdict never arrived"
    return csid, got[0]


class TestClientSurface:
    def test_open_reports_cluster_id_and_shard(self):
        cluster = _cluster()
        csid, resp = _open(cluster, (0, 1, 2))
        assert resp.ok and resp.status == "admitted"
        assert resp.session_id == csid  # cluster id, not the shard-local id
        assert resp.detail["shard"] in cluster.shards
        entry = cluster.directory.require(csid)
        assert entry.state is EntryState.ACTIVE
        assert entry.shard_id == resp.detail["shard"]
        assert cluster.check_consistency() == []

    def test_join_and_leave_update_directory_membership(self):
        cluster = _cluster()
        csid, _ = _open(cluster, (0, 1))
        got = []
        cluster.submit_join(csid, (2,), on_complete=got.append)
        cluster.tick()
        assert got and got[0].ok
        assert cluster.directory.require(csid).members == (0, 1, 2)
        cluster.submit_leave(csid, (0,), on_complete=got.append)
        cluster.tick()
        assert got[1].ok
        assert cluster.directory.require(csid).members == (1, 2)
        assert cluster.check_consistency() == []

    def test_close_and_double_close(self):
        cluster = _cluster()
        csid, _ = _open(cluster, (0, 1))
        got = []
        cluster.submit_close(csid, on_complete=got.append)
        cluster.tick()
        assert got[0].ok and got[0].status == "closed"
        assert cluster.directory.require(csid).state is EntryState.CLOSED
        cluster.submit_close(csid, on_complete=got.append)
        assert got[1].status == "error" and got[1].reason == "already-closed"

    def test_unknown_session_errors(self):
        cluster = _cluster()
        got = []
        cluster.submit_join(99, (1,), on_complete=got.append)
        assert got[0].status == "error" and got[0].reason == "unknown-session"

    def test_resize_on_pending_session_bounces(self):
        cluster = _cluster()
        got = []
        csid = cluster.submit_open((0, 1))  # not yet ticked: PENDING
        cluster.submit_join(csid, (2,), on_complete=got.append)
        assert got[0].status == "rejected" and got[0].reason == "session-pending"

    def test_open_after_shutdown_rejected(self):
        cluster = _cluster()
        cluster.shutdown()
        got = []
        cluster.submit_open((0, 1), on_complete=got.append)
        assert got[0].status == "rejected" and got[0].reason == "service-closed"

    def test_responses_share_one_cluster_op_id_space(self):
        cluster = _cluster()
        csid_a, resp_a = _open(cluster, (0, 1))
        csid_b, resp_b = _open(cluster, (2, 3))
        assert resp_a.request_id != resp_b.request_id


class TestDrain:
    def test_drain_shard_rehomes_and_retires(self):
        cluster = _cluster(shards=3)
        sessions = [
            _open(cluster, m)[0] for m in [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]
        ]
        victims = {cluster.directory.require(c).shard_id for c in sessions}
        victim = sorted(victims)[0]
        hosted = len(cluster.directory.on_shard(victim))
        moved = cluster.drain_shard(victim)
        assert moved == hosted
        assert cluster.shards[victim].state is ShardState.DRAINING
        _settle(cluster)
        for _ in range(10):  # let the empty shard retire
            cluster.tick()
        assert cluster.shards[victim].state is ShardState.REMOVED
        assert cluster.directory.on_shard(victim) == []
        for csid in sessions:
            entry = cluster.directory.require(csid)
            assert entry.state is EntryState.ACTIVE
        assert cluster.stats.lost_sessions == 0
        assert cluster.check_consistency() == []

    def test_drain_requires_active_shard(self):
        cluster = _cluster()
        cluster.drain_shard("shard-0")
        with pytest.raises(ValueError, match="drain"):
            cluster.drain_shard("shard-0")

    def test_cluster_drain_settles_everything(self):
        cluster = _cluster()
        for m in [(0, 1), (2, 3)]:
            cluster.submit_open(m)
        cluster.drain()
        counts = cluster.directory.counts()
        assert counts["pending"] == 0 and counts["migrating"] == 0


class TestFailover:
    def test_fail_shard_rehomes_active_sessions_zero_lost(self):
        cluster = _cluster(shards=3)
        sessions = [
            _open(cluster, m)[0] for m in [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]
        ]
        victim = cluster.directory.require(sessions[0]).shard_id
        hosted = len(cluster.directory.on_shard(victim))
        moved = cluster.fail_shard(victim)
        assert moved == hosted
        assert cluster.shards[victim].state is ShardState.FAILED
        _settle(cluster)
        for csid in sessions:
            entry = cluster.directory.require(csid)
            assert entry.state is EntryState.ACTIVE
            assert entry.shard_id != victim
        assert cluster.stats.failovers == hosted
        assert cluster.stats.lost_sessions == 0
        assert cluster.check_consistency() == []

    def test_pending_open_survives_failover_with_callback(self):
        cluster = _cluster(shards=2)
        got = []
        csid = cluster.submit_open((0, 1), on_complete=got.append)
        victim = cluster.directory.require(csid).shard_id
        cluster.fail_shard(victim)  # before the open ever completed
        _settle(cluster)
        assert got and got[0].ok, "client verdict must survive the failover"
        assert got[0].session_id == csid
        entry = cluster.directory.require(csid)
        assert entry.state is EntryState.ACTIVE and entry.shard_id != victim

    def test_inflight_op_on_dead_shard_errors(self):
        cluster = _cluster(shards=2)
        csid, _ = _open(cluster, (0, 1))
        home = cluster.directory.require(csid).shard_id
        got = []
        cluster.submit_join(csid, (2,), on_complete=got.append)  # queued, unticked
        cluster.fail_shard(home)
        assert got and got[0].status == "error" and got[0].reason == "shard-failed"

    def test_fail_last_shard_then_opens_rejected(self):
        cluster = _cluster(shards=1)
        cluster.fail_shard("shard-0")
        got = []
        cluster.submit_open((0, 1), on_complete=got.append)
        assert got[0].status == "rejected" and got[0].reason == "no-active-shards"

    def test_fail_is_idempotent(self):
        cluster = _cluster(shards=2)
        cluster.fail_shard("shard-0")
        assert cluster.fail_shard("shard-0") == 0


class TestElasticScaling:
    def test_scale_up_moves_only_the_placement_delta(self):
        cluster = _cluster(shards=2)
        sessions = [
            _open(cluster, (2 * i, 2 * i + 1))[0] for i in range(6)
        ]
        before = {c: cluster.directory.require(c).shard_id for c in sessions}
        new_shard, plan = cluster.scale_up()
        assert new_shard in cluster.shards
        for csid, source, target in plan.moves:
            assert target == new_shard  # delta lands only on the newcomer
        _settle(cluster)
        for csid in sessions:
            entry = cluster.directory.require(csid)
            moved = (csid, before[csid], new_shard) in plan.moves
            assert entry.shard_id == (new_shard if moved else before[csid])
        assert cluster.stats.migrations == len(plan.moves)
        assert cluster.stats.lost_sessions == 0
        assert cluster.check_consistency() == []

    def test_migration_budget_throttles_moves_per_tick(self):
        cluster = _cluster(shards=2, migration_budget=1)
        for i in range(4):
            _open(cluster, (2 * i, 2 * i + 1))
        cluster.drain_shard("shard-0")
        backlog = cluster.migrations.depth
        if backlog < 2:
            pytest.skip("placement left too few sessions on shard-0")
        cluster.tick()
        # one tick may start at most budget moves
        assert cluster.migrations.started == 1
        assert cluster.migrations.depth == backlog - 1

    def test_scale_down_is_graceful_drain(self):
        cluster = _cluster(shards=2)
        csid, _ = _open(cluster, (0, 1))
        cluster.scale_down("shard-0")
        _settle(cluster)
        assert cluster.directory.require(csid).state is EntryState.ACTIVE
        assert cluster.stats.lost_sessions == 0


class TestTelemetryAndShutdown:
    def test_failover_spans_and_shard_labelled_counters(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        cluster = _cluster(shards=2, tracer=tracer, metrics=registry)
        csid, resp = _open(cluster, (0, 1))
        home = resp.detail["shard"]
        cluster.fail_shard(home)
        _settle(cluster)
        names = {r["name"] for r in tracer.records()}
        assert "cluster.failover" in names
        assert (
            registry.counter("repro_cluster_shard_failures_total").value(shard=home)
            == 1
        )
        assert (
            registry.counter("repro_cluster_requests_total").value(
                shard=home, kind="open", status="admitted"
            )
            == 1
        )

    def test_migrate_spans_on_rebalance(self):
        tracer = Tracer()
        cluster = _cluster(shards=2, tracer=tracer)
        for i in range(6):
            _open(cluster, (2 * i, 2 * i + 1))
        _, plan = cluster.scale_up()
        _settle(cluster)
        spans = [r for r in tracer.records() if r["name"] == "cluster.migrate"]
        assert len([s for s in spans if s.get("type") == "span_open"]) >= len(
            plan.moves
        ) or len(spans) >= len(plan.moves)

    def test_shutdown_closes_everything_and_reports_counts(self):
        cluster = _cluster(shards=2)
        for i in range(3):
            _open(cluster, (2 * i, 2 * i + 1))
        counts = cluster.shutdown()
        assert cluster.state == "closed"
        assert counts["lost"] == 0
        assert counts["closed"] + counts["rejected"] == 3
        assert cluster.stats.lost_sessions == 0

    def test_same_seed_same_story(self):
        def run():
            cluster = _cluster(shards=3, rng=42)
            for i in range(5):
                _open(cluster, (2 * i, 2 * i + 1))
            cluster.fail_shard("shard-1")
            _settle(cluster)
            cluster.shutdown()
            return cluster.stats.as_dict()

        assert run() == run()
