"""Tests for the cluster churn benchmark.

The acceptance criterion: for a fixed seed the client-visible metrics
are byte-identical regardless of how sessions map onto shards, and the
shard-kill drill under a live fault timeline loses zero sessions.
"""

import json

import pytest

from repro.cluster.bench import run_cluster_bench
from repro.sim.faults import FaultProcessConfig

FAST = dict(ports=16, conferences=40, seed=7, arrival_rate=4.0, mean_hold_ticks=10.0)


def _invariant_bytes(**kw):
    report = run_cluster_bench(**kw)
    assert report.ok, report.reason
    return json.dumps(report.invariant(), sort_keys=True).encode()


class TestShardCountInvariance:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_metrics_byte_identical_across_shard_counts(self, shards):
        baseline = _invariant_bytes(shards=1, **FAST)
        assert _invariant_bytes(shards=shards, **FAST) == baseline

    def test_invariance_holds_under_resizes(self):
        cfg = dict(FAST, resize_prob=0.3)
        assert _invariant_bytes(shards=1, **cfg) == _invariant_bytes(shards=4, **cfg)

    def test_repeat_run_byte_identical(self):
        assert _invariant_bytes(shards=2, **FAST) == _invariant_bytes(shards=2, **FAST)

    def test_different_seeds_differ(self):
        a = _invariant_bytes(shards=2, **FAST)
        b = _invariant_bytes(shards=2, **dict(FAST, seed=8))
        assert a != b

    def test_invariant_view_excludes_mapping_dependent_fields(self):
        report = run_cluster_bench(shards=2, **FAST)
        inv = report.invariant()
        assert "per_shard" not in inv and "peak_queue_depth" not in inv
        assert inv["lost_sessions"] == 0


class TestDrills:
    def test_shard_kill_drill_under_faults_zero_lost(self):
        report = run_cluster_bench(
            shards=4,
            kill_shard_at=6,
            fault_process=FaultProcessConfig(
                mean_time_to_failure=120.0, mean_time_to_repair=8.0
            ),
            **FAST,
        )
        assert report.ok, report.reason
        assert report.killed_shard is not None and report.kill_tick == 6
        assert report.lost_sessions == 0
        assert report.consistency == []
        assert report.cluster["failovers"] >= 0
        assert report.fault_transitions > 0

    def test_elastic_scale_up_drill(self):
        report = run_cluster_bench(shards=2, add_shard_at=8, **FAST)
        assert report.ok, report.reason
        assert report.added_shard is not None
        assert 0.0 <= report.rebalance_fraction <= 1.0
        assert report.lost_sessions == 0

    def test_single_shard_kill_refused(self):
        # with one shard there is nowhere to fail over to; the bench
        # skips the drill rather than losing sessions
        report = run_cluster_bench(shards=1, kill_shard_at=6, **FAST)
        assert report.ok and report.killed_shard is None


class TestReportContract:
    def test_result_contract_and_serialization(self):
        from repro.report.serialize import result_to_dict

        report = run_cluster_bench(shards=2, **FAST)
        assert report.ok and report.reason is None
        payload = result_to_dict(report)
        json.dumps(payload)
        assert payload["kind"] == "cluster_bench"
        assert payload["schema"] == 1
        assert set(payload["per_shard"]) == {"shard-0", "shard-1"}

    def test_validation(self):
        with pytest.raises(ValueError, match="shards"):
            run_cluster_bench(shards=0, **FAST)
        with pytest.raises(ValueError, match="conferences"):
            run_cluster_bench(conferences=0)
