"""Tests for weighted rendezvous placement.

The headline property is the minimal-disruption bound: adding a shard
of weight ``w`` to total weight ``W`` moves only keys the newcomer now
wins (~``w/W`` of them), and removing a shard moves exactly the keys it
owned.  These are the bounds the cluster's elastic scaling leans on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.placement import place_shard, rank_shards, shard_score

FOUR = {f"shard-{i}": 1.0 for i in range(4)}


class TestScore:
    def test_deterministic_pure_function(self):
        assert shard_score(17, "a") == shard_score(17, "a")
        assert shard_score("conf-17", "a") == shard_score("conf-17", "a")

    def test_distinct_pairs_distinct_scores(self):
        scores = {shard_score(k, s) for k in range(50) for s in ("a", "b", "c")}
        assert len(scores) == 150

    def test_weight_scales_score_linearly(self):
        base = shard_score(5, "a", 1.0)
        assert shard_score(5, "a", 3.0) == pytest.approx(3.0 * base)

    @pytest.mark.parametrize("weight", [0.0, -1.0])
    def test_nonpositive_weight_rejected(self, weight):
        with pytest.raises(ValueError, match="weight"):
            shard_score(1, "a", weight)

    def test_key_and_shard_not_confused(self):
        # The separator keeps ("ab", "c") and ("a", "bc") distinct.
        assert shard_score("ab", "c") != shard_score("a", "bc")


class TestRanking:
    def test_rank_is_permutation_and_head_is_placement(self):
        for key in range(100):
            ranked = rank_shards(key, FOUR)
            assert sorted(ranked) == sorted(FOUR)
            assert ranked[0] == place_shard(key, FOUR)

    def test_empty_pool(self):
        assert place_shard(1, {}) is None
        assert rank_shards(1, {}) == []

    def test_removing_the_winner_promotes_the_second(self):
        # The failover property: survivors keep their relative order.
        for key in range(200):
            ranked = rank_shards(key, FOUR)
            survivors = {s: 1.0 for s in FOUR if s != ranked[0]}
            assert rank_shards(key, survivors) == ranked[1:]


class TestMinimalDisruption:
    """Proof-by-test of the ~1/n movement bound (acceptance criterion)."""

    KEYS = range(2000)

    def test_scale_up_moves_only_newcomer_wins(self):
        before = {k: place_shard(k, FOUR) for k in self.KEYS}
        grown = {**FOUR, "shard-4": 1.0}
        moved = 0
        for k in self.KEYS:
            after = place_shard(k, grown)
            if after != before[k]:
                moved += 1
                # every moved key lands on the new shard, never between
                # survivors
                assert after == "shard-4"
        # expected fraction 1/5; allow generous sampling slack
        assert moved / len(self.KEYS) == pytest.approx(1 / 5, abs=0.05)

    def test_scale_down_moves_only_the_removed_shards_keys(self):
        before = {k: place_shard(k, FOUR) for k in self.KEYS}
        shrunk = {s: 1.0 for s in FOUR if s != "shard-2"}
        for k in self.KEYS:
            after = place_shard(k, shrunk)
            if before[k] != "shard-2":
                assert after == before[k]
            else:
                assert after != "shard-2"
        evicted = sum(1 for k in self.KEYS if before[k] == "shard-2")
        assert evicted / len(self.KEYS) == pytest.approx(1 / 4, abs=0.05)

    def test_weighted_share_tracks_capacity(self):
        pool = {"small": 1.0, "big": 3.0}
        big = sum(1 for k in self.KEYS if place_shard(k, pool) == "big")
        assert big / len(self.KEYS) == pytest.approx(3 / 4, abs=0.05)

    @settings(max_examples=50, deadline=None)
    @given(key=st.integers(0, 10**9), extra=st.floats(0.5, 4.0))
    def test_disruption_property_random_keys(self, key, extra):
        before = place_shard(key, FOUR)
        after = place_shard(key, {**FOUR, "shard-x": extra})
        assert after in (before, "shard-x")
