"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["show", "--topology", "torus"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("conference-net ")
        assert any(ch.isdigit() for ch in out)


class TestCommands:
    def test_show(self, capsys):
        assert main(["show", "--topology", "omega", "--ports", "8"]) == 0
        out = capsys.readouterr().out
        assert "omega" in out

    def test_route_reports_conflicts(self, capsys):
        code = main([
            "route", "--topology", "indirect-binary-cube", "--ports", "8",
            "--conference", "0,3", "--conference", "1,2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "max multiplicity 2" in out
        assert "delivery: correct" in out

    def test_route_without_relay(self, capsys):
        code = main([
            "route", "--ports", "8", "--no-relay",
            "--conference", "0,1",
        ])
        assert code == 0
        assert "delivery: correct" in capsys.readouterr().out

    def test_worstcase(self, capsys):
        assert main(["worstcase", "--ports", "16"]) == 0
        out = capsys.readouterr().out
        assert "omega (measured)" in out
        assert "adversarial witness" in out

    def test_cost(self, capsys):
        assert main(["cost", "--ports", "16,64"]) == 0
        out = capsys.readouterr().out
        assert "crossbar" in out
        assert "yang2001" in out

    def test_blocking(self, capsys):
        code = main([
            "blocking", "--topology", "omega", "--ports", "16",
            "--dilations", "1,2", "--duration", "50", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dilation" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "--ports", "16", "--load", "0.9", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "TDM schedule" in out
        assert "required dilation" in out

    def test_faults(self, capsys):
        code = main([
            "faults", "--topology", "benes-cube", "--ports", "16",
            "--count", "3", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "survivability" in out
        assert "dead links" in out
        # Default: both relay variants are reported.
        assert "\non " in out and "\noff" in out

    def test_faults_relay_flag_selects_one_row(self, capsys):
        assert main(["faults", "--ports", "16", "--count", "2", "--no-relay"]) == 0
        out = capsys.readouterr().out
        assert "\noff" in out and "\non " not in out
        assert main(["faults", "--ports", "16", "--count", "2", "--relay"]) == 0
        out = capsys.readouterr().out
        assert "\non " in out and "\noff" not in out

    def test_faults_include_injections(self, capsys):
        # With every level-0 wire dead, nothing can survive.
        n_links = 16 * 4  # inter-stage links of a 16-port cube
        code = main([
            "faults", "--ports", "16", "--count", str(n_links + 16),
            "--include-injections", "--seed", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "(0," in out  # an injection point among the dead links

    def test_availability(self, capsys):
        code = main([
            "availability", "--topology", "extra-stage-cube", "--ports", "16",
            "--duration", "200", "--mttf", "200", "--mttr", "10", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "availability over time" in out
        assert "\non " in out and "\noff" in out

    def test_availability_with_traffic(self, capsys):
        code = main([
            "availability", "--ports", "16", "--duration", "150",
            "--mttf", "150", "--mttr", "10", "--traffic",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bounded backoff" in out
        assert "backoff" in out and "no-retry" in out


class TestTelemetry:
    """The observability surface: --trace-out / --metrics-out and `trace`."""

    def test_availability_telemetry_flags(self, capsys, tmp_path):
        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.prom"
        code = main([
            "availability", "--topology", "extra-stage-cube", "--ports", "16",
            "--duration", "200", "--mttf", "200", "--mttr", "10", "--seed", "1",
            "--trace-out", str(trace_path), "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "availability over time" in out  # normal report still printed
        records = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert records, "trace file is empty"
        names = {record["name"] for record in records}
        assert "conference.submit" in names
        metrics = metrics_path.read_text()
        assert "repro_link_occupancy_bucket{" in metrics
        assert "repro_conflict_multiplicity{" in metrics

    def test_availability_output_unchanged_by_telemetry(self, capsys, tmp_path):
        args = [
            "availability", "--ports", "16", "--duration", "150",
            "--mttf", "150", "--mttr", "10", "--seed", "3",
        ]
        assert main(args) == 0
        bare = capsys.readouterr().out
        assert main(args + ["--trace-out", str(tmp_path / "t.jsonl")]) == 0
        instrumented = capsys.readouterr().out
        # The report proper is byte-identical; telemetry only appends a
        # "wrote ..." footer after it.
        assert instrumented.startswith(bare)

    def test_trace_subcommand(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "trace", "--ports", "16", "--duration", "150",
            "--mttf", "100", "--mttr", "10", "--seed", "2",
            "--out", str(trace_path), "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace of one availability run" in out
        records = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert records
        assert {"event", "span"} >= {record["type"] for record in records}
        metrics = json.loads(metrics_path.read_text())
        assert metrics["repro_admissions_total"]["kind"] == "counter"
