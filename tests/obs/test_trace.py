"""Unit tests of the structured event tracer."""

import io
import json

import pytest

from repro.obs.trace import NULL_TRACER, Tracer

pytestmark = pytest.mark.tier1


def _fake_clock(times):
    it = iter(times)
    return lambda: next(it)


class TestEvents:
    def test_event_record_schema(self):
        tr = Tracer(clock=_fake_clock([0.0, 1.5]))
        tr.event("fault.fail", t=12.5, level=2, row=7)
        (rec,) = tr.records()
        assert rec == {
            "type": "event",
            "seq": 0,
            "name": "fault.fail",
            "t": 12.5,
            "wall": 1.5,
            "level": 2,
            "row": 7,
        }

    def test_sequence_numbers_monotonic(self):
        tr = Tracer()
        for _ in range(5):
            tr.event("tick")
        assert [r["seq"] for r in tr.records()] == list(range(5))

    def test_reserved_attribute_names_rejected(self):
        tr = Tracer()
        with pytest.raises(ValueError, match="collide"):
            tr.event("bad", seq=1)
        with pytest.raises(ValueError, match="collide"):
            tr.span_open("bad", status="x")

    def test_counts_by_name(self):
        tr = Tracer()
        tr.event("a")
        tr.event("a")
        tr.event("b")
        assert tr.counts() == {"a": 2, "b": 1}


class TestSpans:
    def test_span_recorded_once_at_close(self):
        tr = Tracer(clock=_fake_clock([0.0, 0.1, 0.4]))
        sid = tr.span_open("conference.submit", t=1.0, cid=3)
        assert len(tr) == 0  # nothing recorded until close
        tr.span_close(sid, t=2.0, status="admitted", links=4)
        (rec,) = tr.records()
        assert rec["type"] == "span"
        assert (rec["t0"], rec["t1"]) == (1.0, 2.0)
        assert (rec["wall0"], rec["wall1"]) == (0.1, 0.4)
        assert rec["status"] == "admitted"
        assert (rec["cid"], rec["links"]) == (3, 4)

    def test_close_unknown_sid_is_ignored(self):
        tr = Tracer()
        tr.span_close(999)
        assert len(tr) == 0

    def test_span_context_manager_marks_errors(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("work"):
                raise RuntimeError("boom")
        (rec,) = tr.records()
        assert rec["status"] == "error"

    def test_flush_open_spans(self):
        tr = Tracer()
        tr.span_open("a", t=1.0)
        tr.span_open("b", t=2.0)
        assert tr.flush_open_spans(t=9.0) == 2
        assert [r["status"] for r in tr.records()] == ["open", "open"]
        assert [r["t1"] for r in tr.records()] == [9.0, 9.0]


class TestRingBuffer:
    def test_capacity_drops_oldest(self):
        tr = Tracer(capacity=3)
        for i in range(5):
            tr.event("e", i=i)
        assert tr.emitted == 5
        assert len(tr) == 3
        assert tr.truncated
        assert [r["i"] for r in tr.records()] == [2, 3, 4]

    def test_untruncated_flag(self):
        tr = Tracer(capacity=10)
        tr.event("e")
        assert not tr.truncated

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestExport:
    def test_write_jsonl_roundtrip(self, tmp_path):
        tr = Tracer()
        tr.event("fault.fail", t=1.0, point=(2, 7), dead={1, 5})
        sid = tr.span_open("conference.drop", t=1.0, cid=9)
        path = tmp_path / "trace.jsonl"
        n = tr.write_jsonl(str(path))
        assert n == 2  # open span flushed into the export
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["point"] == [2, 7]  # tuples serialize as lists
        assert records[0]["dead"] == [1, 5]  # sets serialize sorted
        assert records[1]["sid"] == sid
        assert records[1]["status"] == "open"

    def test_write_jsonl_to_file_object(self):
        tr = Tracer()
        tr.event("e")
        buf = io.StringIO()
        assert tr.write_jsonl(buf) == 1
        assert json.loads(buf.getvalue())["name"] == "e"


class TestNullTracer:
    def test_records_nothing(self):
        NULL_TRACER.event("e")
        sid = NULL_TRACER.span_open("s")
        NULL_TRACER.span_close(sid)
        assert len(NULL_TRACER) == 0
