"""Live health end-to-end: drills through serve and cluster.

Three contracts the SLO engine makes at the system level:

* **transparency** — a drill with the full stack attached (tracer, SLO
  evaluator, flight recorder, live endpoint) produces a report *equal*
  to the bare run of the same seed;
* **detection** — a seeded fault drill drives the availability
  objective into ``page`` with the burn windows actually firing, the
  breach dumps incident bundles, and the live ``/slo`` endpoint serves
  exactly that state;
* **causality** — the cross-shard trace contexts make a cluster-level
  open or failover and the shard-level work it caused read as one
  parented chain, with every parent id resolving.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.cluster.bench import run_cluster_bench
from repro.core.healing import RetryPolicy
from repro.obs import ExpositionServer, FlightRecorder, SLOEvaluator, Tracer
from repro.serve.bench import run_serve_bench
from repro.sim.faults import FaultProcessConfig

pytestmark = [pytest.mark.tier1, pytest.mark.parallel]

#: A drill that survivably loses links often enough to page availability.
SERVE_DRILL = dict(
    conferences=60,
    seed=3,
    arrival_rate=4.0,
    mean_hold_ticks=20.0,
    retry=RetryPolicy(max_retries=8, base_delay=1.0, max_delay=10.0),
    fault_process=FaultProcessConfig(
        mean_time_to_failure=400.0, mean_time_to_repair=5.0
    ),
)

CLUSTER_DRILL = dict(
    ports=16,
    shards=2,
    conferences=60,
    seed=3,
    arrival_rate=4.0,
    kill_shard_at=12,
)


def _full_stack(**flight_kwargs):
    tracer = Tracer()
    slo = SLOEvaluator()
    flight = FlightRecorder(**flight_kwargs)
    flight.watch(tracer)
    flight.attach_slo(slo)
    return tracer, slo, flight


class TestServeDrill:
    @pytest.fixture(scope="class")
    def drill(self):
        tracer, slo, flight = _full_stack()
        instrumented = run_serve_bench(
            16, tracer=tracer, slo=slo, flight=flight, **SERVE_DRILL
        )
        bare = run_serve_bench(16, **SERVE_DRILL)
        return bare, instrumented, tracer, slo, flight

    def test_full_stack_is_transparent(self, drill):
        bare, instrumented, tracer, _, _ = drill
        assert instrumented == bare
        assert tracer.emitted > 0  # differential is not vacuous

    def test_fault_drill_pages_availability(self, drill):
        _, _, _, slo, _ = drill
        assert slo.state == "page"
        status = slo.last["slos"]["availability"]
        assert status["state"] == "page"
        assert status["breaches"] >= 1
        # The page came from a firing page-severity burn window with a
        # burn rate actually past its factor — not a bookkeeping fluke.
        firing = [w for w in status["windows"] if w["firing"]]
        assert any(w["severity"] == "page" for w in firing)
        for w in firing:
            assert w["burn_rate"] >= w["factor"]

    def test_breach_dumped_incident_bundles(self, drill):
        _, _, _, _, flight = drill
        assert flight.dumped >= 1
        reasons = {b["reason"] for b in flight.bundles}
        # Both triggers exist in this drill: link failures and the breach.
        assert any(r == "fault.fail" for r in reasons)
        types = {line["type"] for b in flight.bundles for line in b["lines"]}
        assert {"incident", "event"} <= types

    def test_endpoint_serves_the_paged_state(self, drill):
        _, _, _, slo, _ = drill
        with ExpositionServer(slo=slo) as server:
            try:
                with urllib.request.urlopen(server.url + "/slo", timeout=5.0) as r:
                    body, code = r.read(), r.status
            except urllib.error.HTTPError as err:
                body, code = err.read(), err.code
            assert code == 200
            assert json.loads(body) == slo.last
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(server.url + "/healthz", timeout=5.0)
            assert exc.value.code == 503


class TestClusterDrill:
    @pytest.fixture(scope="class")
    def drill(self):
        tracer, slo, flight = _full_stack()
        instrumented = run_cluster_bench(
            tracer=tracer, slo=slo, flight=flight, **CLUSTER_DRILL
        )
        bare = run_cluster_bench(**CLUSTER_DRILL)
        tracer.flush_open_spans()
        return bare, instrumented, tracer, slo, flight

    def test_full_stack_is_transparent(self, drill):
        bare, instrumented, tracer, slo, _ = drill
        assert instrumented.invariant() == bare.invariant()
        assert instrumented == bare
        assert tracer.emitted > 0
        assert slo.last is not None

    def test_every_parent_id_resolves(self, drill):
        _, _, tracer, _, _ = drill
        records = tracer.records()
        sids = {r["sid"] for r in records if r.get("type") == "span"}
        parented = [r for r in records if "parent" in r]
        assert parented, "failover drill must produce parented records"
        unresolved = [r for r in parented if r["parent"] not in sids]
        assert unresolved == []

    def test_causal_chains_cross_the_shard_boundary(self, drill):
        """open -> place -> route and failover -> heal read as one trace."""
        _, _, tracer, _, _ = drill
        records = tracer.records()
        spans = {r["sid"]: r for r in records if r.get("type") == "span"}
        chains = {
            (spans[r["parent"]]["name"], r["name"])
            for r in records
            if "parent" in r and r["parent"] in spans
        }
        # A cluster-level open parents the shard-level serve/admission
        # work it caused — the cross-boundary half of the trace.
        assert ("cluster.open", "serve.enqueue") in chains
        assert ("cluster.open", "conference.submit") in chains
        assert ("cluster.open", "admission.admit") in chains
        # The kill drill's failover parents both the nested per-session
        # moves and the re-homed admissions on the surviving shard.
        assert ("cluster.failover", "cluster.failover") in chains
        assert ("cluster.failover", "serve.enqueue") in chains
        assert ("cluster.failover", "admission.admit") in chains

    def test_killed_shard_is_reported(self, drill):
        bare, instrumented, _, _, _ = drill
        assert instrumented.killed_shard == bare.killed_shard is not None


class TestIncidentBundleCausality:
    def test_bundle_carries_cross_boundary_chain(self, tmp_path):
        """A dumped incident is forensically useful: the bundle itself
        contains parented spans whose parents are cluster-level spans,
        so open -> place -> route -> heal can be read from the file."""
        out = tmp_path / "incidents"
        tracer, slo, flight = _full_stack(out_dir=str(out), capacity=16384)
        run_cluster_bench(
            tracer=tracer,
            slo=slo,
            flight=flight,
            fault_process=FaultProcessConfig(
                mean_time_to_failure=400.0, mean_time_to_repair=5.0
            ),
            **CLUSTER_DRILL,
        )
        assert flight.dumped >= 1
        paths = sorted(out.glob("incident-*.jsonl"))
        assert paths
        lines = [
            json.loads(line)
            for path in paths
            for line in path.read_text().splitlines()
        ]
        assert lines[0]["type"] == "incident"
        spans = {r["sid"]: r for r in lines if r.get("type") == "span"}
        cluster_parents = {
            spans[r["parent"]]["name"]
            for r in lines
            if "parent" in r and r["parent"] in spans
            and spans[r["parent"]]["name"].startswith("cluster.")
        }
        assert cluster_parents  # the bundle shows who caused the work
