"""Flight recorder: ring truncation, dump triggers, debounce, rotation."""

import json

import pytest

from repro.obs import FlightRecorder, MetricsRegistry, SLOEvaluator, Tracer
from repro.obs.slo import BurnWindow, SLOSpec

pytestmark = [pytest.mark.tier1, pytest.mark.parallel]


class TestRing:
    def test_ring_truncates_oldest_first(self):
        flight = FlightRecorder(capacity=4)
        tracer = flight.watch(Tracer())
        for i in range(10):
            tracer.event("tick", t=float(i), i=i)
        records = flight.records()
        assert len(records) == 4
        assert [r["i"] for r in records] == [6, 7, 8, 9]
        assert flight.seen == 10
        assert flight.truncated == 6

    def test_capacity_one_keeps_only_newest(self):
        flight = FlightRecorder(capacity=1)
        tracer = flight.watch(Tracer())
        tracer.event("a", t=0.0)
        tracer.event("b", t=1.0)
        assert [r["name"] for r in flight.records()] == ["b"]

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(keep=0)

    def test_watch_returns_the_tracer_for_chaining(self):
        flight = FlightRecorder()
        tracer = Tracer()
        assert flight.watch(tracer) is tracer


class TestDumpTriggers:
    def test_fault_fail_event_dumps(self):
        flight = FlightRecorder()
        tracer = flight.watch(Tracer())
        tracer.event("fault.fail", t=12.0, link="(1,2)->(2,3)")
        assert flight.dumped == 1
        assert flight.bundles[0]["reason"] == "fault.fail"

    def test_auto_fault_dump_can_be_disabled(self):
        flight = FlightRecorder(auto_fault_dump=False)
        tracer = flight.watch(Tracer())
        tracer.event("fault.fail", t=12.0)
        assert flight.dumped == 0

    def test_debounce_swallows_correlated_faults(self):
        flight = FlightRecorder(min_gap=25.0)
        tracer = flight.watch(Tracer())
        for t in (10.0, 11.0, 12.0):  # one burst
            tracer.event("fault.fail", t=t)
        tracer.event("fault.fail", t=50.0)  # past the gap
        assert flight.dumped == 2
        assert flight.suppressed == 2

    def test_force_overrides_debounce(self):
        flight = FlightRecorder(min_gap=1000.0)
        flight.dump(reason="first", now=0.0)
        assert flight.dump(reason="manual", now=1.0, force=False) is None
        flight.dump(reason="manual", now=1.0, force=True)
        assert flight.dumped == 2
        assert flight.suppressed == 1

    def test_slo_breach_hook_dumps_with_reason(self):
        spec = SLOSpec(
            "availability",
            objective=0.99,
            windows=(BurnWindow(ticks=10.0, factor=1.0, severity="page"),),
        )
        slo = SLOEvaluator([spec], frame=5.0)
        flight = FlightRecorder()
        flight.attach_slo(slo)
        slo.record("availability", bad=100, now=0.0)
        slo.evaluate(0.0)
        assert flight.dumped == 1
        assert flight.bundles[0]["reason"] == "slo:availability"
        # The breach record itself was ringed before the dump froze it.
        types = [line["type"] for line in flight.bundles[0]["lines"]]
        assert "breach" in types


class TestBundles:
    def test_in_memory_bundle_shape(self):
        flight = FlightRecorder()
        tracer = flight.watch(Tracer())
        tracer.event("conference.submit", t=1.0, cid=7)
        flight.dump(reason="manual", now=2.0, extra={"drill": True})
        bundle = flight.bundles[0]
        assert bundle["path"] is None
        header = bundle["lines"][0]
        assert header["type"] == "incident"
        assert header["reason"] == "manual"
        assert header["drill"] is True
        assert header["records"] == 1
        assert bundle["lines"][1]["name"] == "conference.submit"

    def test_bundle_includes_last_slo_state(self):
        slo = SLOEvaluator(frame=5.0)
        slo.record("availability", good=10, now=0.0)
        slo.evaluate(0.0)
        flight = FlightRecorder()
        flight.attach_slo(slo)
        flight.dump(reason="manual", now=1.0)
        tail = flight.bundles[0]["lines"][-1]
        assert tail["type"] == "slo"
        assert tail["state"] == "ok"

    def test_disk_bundles_are_jsonl(self, tmp_path):
        out = tmp_path / "incidents"
        flight = FlightRecorder(out_dir=str(out))
        tracer = flight.watch(Tracer())
        tracer.event("fault.fail", t=5.0, link="x")
        path = out / "incident-001.jsonl"
        assert flight.bundles[0]["path"] == str(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "incident"
        assert lines[1]["name"] == "fault.fail"

    def test_rotation_keeps_newest_bundles(self, tmp_path):
        out = tmp_path / "incidents"
        flight = FlightRecorder(out_dir=str(out), keep=2, min_gap=1.0)
        for i in range(5):
            flight.dump(reason=f"drill-{i}", now=float(i * 10))
        names = sorted(p.name for p in out.iterdir())
        assert names == ["incident-004.jsonl", "incident-005.jsonl"]
        assert flight.dumped == 5


class TestMetricSampling:
    def test_counter_deltas_ring_only_on_movement(self):
        registry = MetricsRegistry()
        flight = FlightRecorder()
        counter = registry.counter("repro_admissions_total", "admissions")
        flight.sample_metrics(registry, now=0.0)  # baseline: nothing moved
        assert flight.records() == []
        counter.inc(3, outcome="admitted")
        flight.sample_metrics(registry, now=1.0)
        counter.inc(2, outcome="admitted")
        flight.sample_metrics(registry, now=2.0)
        flight.sample_metrics(registry, now=3.0)  # quiet tick rings nothing
        records = flight.records()
        assert [r["t"] for r in records] == [1.0, 2.0]
        key = 'repro_admissions_total{outcome="admitted"}'
        assert records[0]["deltas"] == {key: 3}
        assert records[1]["deltas"] == {key: 2}

    def test_gauges_and_histograms_are_not_sampled(self):
        registry = MetricsRegistry()
        flight = FlightRecorder()
        registry.gauge("repro_depth", "d").set(9)
        registry.histogram("repro_lat", "l").observe(1.0)
        flight.sample_metrics(registry, now=0.0)
        assert flight.records() == []

    def test_note_slo_rings_compact_state(self):
        slo = SLOEvaluator(frame=5.0)
        status = slo.evaluate(0.0)
        flight = FlightRecorder()
        flight.note_slo(0.0, status)
        (record,) = flight.records()
        assert record["type"] == "slo"
        assert record["state"] == "ok"
        assert set(record["slos"]) == {
            "admission_latency", "availability", "recovery", "shed_rate",
        }
