"""Unit tests of the metrics registry, exposition, merge, and timed()."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_OCCUPANCY_BUCKETS,
    MetricsRegistry,
    collecting,
    collection_enabled,
    default_registry,
    maybe_registry,
    timed,
)

pytestmark = pytest.mark.tier1


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_drops_total", "drops")
        c.inc(cause="fault")
        c.inc(2, cause="fault")
        c.inc(cause="capacity")
        assert c.value(cause="fault") == 3
        assert c.value(cause="capacity") == 1
        assert c.value(cause="never") == 0

    def test_counters_only_go_up(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("1starts_with_digit")
        with pytest.raises(ValueError):
            reg.counter("has space")


class TestGauge:
    def test_set_and_set_max(self):
        g = MetricsRegistry().gauge("g")
        g.set(5, stage="1")
        g.set_max(3, stage="1")  # lower: ignored
        assert g.value(stage="1") == 5
        g.set_max(9, stage="1")
        assert g.value(stage="1") == 9

    def test_inc_can_go_down(self):
        g = MetricsRegistry().gauge("g")
        g.inc(3)
        g.inc(-1)
        assert g.value() == 2


class TestHistogram:
    def test_cumulative_buckets_and_sum(self):
        h = MetricsRegistry().histogram("h", buckets=(1, 2, 4))
        for v in (1, 2, 3, 100):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == 106
        assert h._series[()]["counts"] == [1, 1, 1, 1]  # le1, le2, le4, +Inf

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())


class TestExposition:
    def test_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_drops_total", "drops by cause").inc(cause="fault")
        h = reg.histogram("repro_link_occupancy", buckets=(1, 2))
        h.observe(1, stage="1")
        h.observe(5, stage="1")
        text = reg.render_prometheus()
        assert "# HELP repro_drops_total drops by cause" in text
        assert "# TYPE repro_drops_total counter" in text
        assert 'repro_drops_total{cause="fault"} 1' in text
        assert 'repro_link_occupancy_bucket{stage="1",le="1"} 1' in text
        assert 'repro_link_occupancy_bucket{stage="1",le="+Inf"} 2' in text
        assert 'repro_link_occupancy_sum{stage="1"} 6' in text
        assert 'repro_link_occupancy_count{stage="1"} 2' in text

    def test_deterministic_rendering(self):
        def build(order):
            reg = MetricsRegistry()
            for name in order:
                reg.counter(name).inc(k=name)
            return reg.render_prometheus()

        assert build(["b", "a", "c"]) == build(["c", "a", "b"])

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(path='a"b\\c\nd')
        line = reg.render_prometheus().splitlines()[-1]
        assert line == 'c{path="a\\"b\\\\c\\nd"} 1'

    def test_to_json_parses(self):
        reg = MetricsRegistry()
        reg.gauge("g", "help").set(2, stage="3")
        data = json.loads(reg.to_json())
        assert data["g"]["kind"] == "gauge"
        assert data["g"]["series"] == [{"labels": {"stage": "3"}, "value": 2}]

    def test_write_json_vs_prometheus(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        prom, jsn = tmp_path / "m.prom", tmp_path / "m.json"
        reg.write(str(prom))
        reg.write(str(jsn))
        assert prom.read_text().startswith("# TYPE c counter")
        assert json.loads(jsn.read_text())["c"]["kind"] == "counter"


class TestMerge:
    def test_counters_add_gauges_max_histograms_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 1), (b, 2)):
            reg.counter("c").inc(n)
            reg.gauge("g").set(n, stage="1")
            reg.histogram("h", buckets=(1, 4)).observe(n)
        a.merge(b)
        assert a.counter("c").value() == 3
        assert a.gauge("g").value(stage="1") == 2  # max, not sum
        assert a.histogram("h").count() == 2
        assert a.histogram("h").sum() == 3

    def test_merge_accepts_snapshots(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc(5)
        a.merge(b.snapshot())
        assert a.counter("c").value() == 5

    def test_merge_order_invariant(self):
        regs = []
        for n in (1, 2, 3):
            reg = MetricsRegistry()
            reg.counter("c").inc(n)
            reg.gauge("g").set_max(n)
            regs.append(reg)
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for reg in regs:
            forward.merge(reg)
        for reg in reversed(regs):
            backward.merge(reg)
        assert forward.render_prometheus() == backward.render_prometheus()

    def test_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1, 2)).observe(1)
        b.histogram("h", buckets=(1, 3)).observe(1)
        with pytest.raises(ValueError, match="bucket"):
            a.merge(b)

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        snap = reg.snapshot()
        reg.counter("c").inc()
        assert snap["c"]["series"][()] == 1


class TestCollection:
    def test_disabled_by_default(self):
        assert not collection_enabled()
        assert maybe_registry() is None

    def test_collecting_swaps_default_registry(self):
        outer = default_registry()
        with collecting() as reg:
            assert collection_enabled()
            assert maybe_registry() is reg
            assert default_registry() is reg
            reg.counter("c").inc()
        assert not collection_enabled()
        assert default_registry() is outer
        assert "c" not in outer

    def test_collecting_into_explicit_registry(self):
        mine = MetricsRegistry()
        with collecting(mine) as reg:
            assert reg is mine

    def test_collecting_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with collecting():
                raise RuntimeError
        assert not collection_enabled()


class TestTimed:
    def test_context_manager_records(self):
        reg = MetricsRegistry()
        with timed("repro_route", registry=reg, stage="2"):
            pass
        h = reg.get("repro_route_seconds")
        assert h is not None
        assert h.count(stage="2") == 1

    def test_untimed_without_registry(self):
        before = len(default_registry())
        with timed("repro_nothing"):
            pass
        assert len(default_registry()) == before

    def test_decorator_records_under_collection(self):
        @timed("repro_fn")
        def fn(x):
            return x + 1

        assert fn(1) == 2  # fast path, no collection
        with collecting() as reg:
            assert fn(2) == 3
        assert reg.histogram("repro_fn_seconds").count() == 1

    def test_occupancy_buckets_cover_small_loads(self):
        assert DEFAULT_OCCUPANCY_BUCKETS[0] == 1
