"""The SLO engine: histograms, burn rates, alert states, merge determinism."""

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.slo import (
    ALERT_STATES,
    BurnWindow,
    SLOEvaluator,
    SLOSpec,
    WindowedHistogram,
    default_serve_slos,
    log_bucket_edges,
    merge_snapshots,
)

pytestmark = [pytest.mark.tier1, pytest.mark.parallel]


class TestLogBucketEdges:
    def test_geometric_spacing(self):
        edges = log_bucket_edges(1.0, 16.0, 2.0)
        assert edges == (1.0, 2.0, 4.0, 8.0, 16.0)

    def test_last_edge_covers_high(self):
        edges = log_bucket_edges(0.5, 100.0, 3.0)
        assert edges[-1] >= 100.0
        assert edges[-2] < 100.0

    @pytest.mark.parametrize(
        "low, high, growth",
        [(0.0, 1.0, 2.0), (-1.0, 1.0, 2.0), (2.0, 1.0, 2.0), (1.0, 2.0, 1.0), (1.0, 2.0, 0.5)],
    )
    def test_invalid_parameters_raise(self, low, high, growth):
        with pytest.raises(ValueError):
            log_bucket_edges(low, high, growth)


class TestWindowedHistogram:
    def test_quantile_is_bucket_upper_edge(self):
        hist = WindowedHistogram(low=1.0, high=64.0, growth=2.0, window=10.0)
        hist.observe(3.0, now=0.0)  # bucket edge 4.0
        assert hist.quantile(0.5) == 4.0
        assert hist.count() == 1

    def test_empty_histogram_has_no_quantiles(self):
        hist = WindowedHistogram()
        assert hist.quantile(0.5) is None
        assert hist.percentiles() == {"p50": None, "p95": None, "p99": None}

    def test_overflow_reports_inf(self):
        hist = WindowedHistogram(low=1.0, high=4.0, growth=2.0)
        hist.observe(1e9, now=0.0)
        assert hist.quantile(0.99) == math.inf

    def test_quantile_rejects_out_of_range(self):
        hist = WindowedHistogram()
        for q in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                hist.quantile(q)

    def test_old_windows_expire(self):
        hist = WindowedHistogram(window=10.0, windows=2)
        hist.observe(1.0, now=0.0)
        assert hist.count() == 1
        hist.advance(now=35.0)  # window 3; live windows are {2, 3}
        assert hist.count() == 0
        assert hist.observed == 1  # lifetime counter is never trimmed

    def test_observation_in_live_window_survives_advance(self):
        hist = WindowedHistogram(window=10.0, windows=3)
        hist.observe(2.0, now=25.0)
        hist.advance(now=41.0)  # windows {2, 3, 4} live; obs sits in 2
        assert hist.count() == 1

    def test_interleaved_observe_and_query_stays_consistent(self):
        # The merged-counts cache must never go stale across the
        # observe / advance / quantile interleavings the evaluator does.
        hist = WindowedHistogram(low=1.0, high=64.0, growth=2.0, window=5.0, windows=4)
        rng = random.Random(7)
        mirror = []
        for step in range(200):
            now = float(step)
            value = rng.uniform(0.5, 80.0)
            hist.observe(value, now)
            mirror.append((int(now // 5.0), value))
            if step % 3 == 0:
                hist.advance(now)
            floor = int(now // 5.0) - 3
            live = sorted(v for wid, v in mirror if wid >= floor)
            assert hist.count() == len(live)
            q = hist.quantile(0.95)
            rank_value = live[max(1, math.ceil(0.95 * len(live) - 1e-9)) - 1]
            assert q >= rank_value

    def test_merge_requires_identical_shape(self):
        a = WindowedHistogram(low=1.0, high=8.0, growth=2.0)
        b = WindowedHistogram(low=1.0, high=16.0, growth=2.0)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_merge_adds_counts_by_absolute_window(self):
        a = WindowedHistogram(window=10.0)
        b = WindowedHistogram(window=10.0)
        a.observe(1.0, now=5.0)
        b.observe(1.0, now=5.0)
        b.observe(2.0, now=15.0)
        a.merge(b.snapshot())
        assert a.count() == 3
        assert a.observed == 3


class TestPercentileErrorBound:
    @settings(max_examples=60, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=0.5, max_value=4096.0, allow_nan=False),
            min_size=1,
            max_size=120,
        ),
        q=st.sampled_from([0.5, 0.9, 0.95, 0.99, 1.0]),
    )
    def test_reported_quantile_within_growth_factor(self, samples, q):
        """For in-range data the bucket edge overestimates by < growth.

        The reported quantile is the upper edge of the bucket holding
        the true q-ranked sample ``v``, so ``v <= reported < v * growth``
        (left equality when ``v`` sits exactly on an edge).
        """
        growth = 2.0 ** 0.5
        hist = WindowedHistogram(low=0.5, high=4096.0, growth=growth, window=1e9)
        for v in samples:
            hist.observe(v, now=0.0)
        reported = hist.quantile(q)
        ordered = sorted(samples)
        true_value = ordered[max(1, math.ceil(q * len(ordered) - 1e-9)) - 1]
        assert reported >= true_value
        assert reported < max(true_value, 0.5) * growth * (1 + 1e-9)


class TestSLOSpec:
    def test_budget_is_one_minus_objective(self):
        spec = SLOSpec("availability", objective=0.999)
        assert spec.budget == pytest.approx(0.001)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="bad name!"),
            dict(name=""),
            dict(name="x", objective=0.0),
            dict(name="x", objective=1.0),
            dict(name="x", kind="gauge"),
            dict(name="x", kind="latency"),  # missing threshold
            dict(name="x", windows=()),
        ],
    )
    def test_invalid_specs_raise(self, kwargs):
        with pytest.raises(ValueError):
            SLOSpec(**kwargs)

    def test_burn_window_validation(self):
        with pytest.raises(ValueError):
            BurnWindow(ticks=0.0, factor=1.0)
        with pytest.raises(ValueError):
            BurnWindow(ticks=10.0, factor=0.0)
        with pytest.raises(ValueError):
            BurnWindow(ticks=10.0, factor=1.0, severity="panic")

    def test_default_serve_slos_cover_the_bench_signals(self):
        names = {spec.name for spec in default_serve_slos()}
        assert names == {"admission_latency", "availability", "recovery", "shed_rate"}


def _ratio_spec(**overrides):
    base = dict(
        name="availability",
        objective=0.99,
        windows=(
            BurnWindow(ticks=40.0, factor=2.0, severity="warn"),
            BurnWindow(ticks=20.0, factor=10.0, severity="page"),
        ),
    )
    base.update(overrides)
    return SLOSpec(**base)


class TestSLOEvaluator:
    def test_all_good_traffic_stays_ok(self):
        slo = SLOEvaluator([_ratio_spec()], frame=5.0)
        for t in range(40):
            slo.record("availability", good=10, now=float(t))
            status = slo.evaluate(float(t))
        assert status["state"] == "ok"
        assert slo.state == "ok"
        assert status["slos"]["availability"]["breaches"] == 0

    def test_burn_escalates_ok_warn_page(self):
        slo = SLOEvaluator([_ratio_spec()], frame=5.0)
        seen = []
        # 3% bad: burn 3.0 fires the 2x warn window, not the 10x page.
        for t in range(20):
            slo.record("availability", good=97, bad=3, now=float(t))
            seen.append(slo.evaluate(float(t))["state"])
        assert seen[-1] == "warn"
        # 15% bad: burn 15 > 10 fires the page window.
        for t in range(20, 40):
            slo.record("availability", good=85, bad=15, now=float(t))
            seen.append(slo.evaluate(float(t))["state"])
        assert seen[-1] == "page"
        assert set(seen) <= set(ALERT_STATES)

    def test_breach_hook_fires_once_per_page_entry(self):
        slo = SLOEvaluator([_ratio_spec()], frame=5.0)
        fired = []
        slo.add_breach_hook(lambda name, status, now: fired.append((name, now)))
        for t in range(10):
            slo.record("availability", bad=100, now=float(t))
            slo.evaluate(float(t))
        assert len(fired) == 1  # stays paged; no re-fire while paged
        assert fired[0][0] == "availability"
        assert slo.last["slos"]["availability"]["breaches"] == 1

    def test_latency_objective_derives_good_from_threshold(self):
        spec = SLOSpec(
            "latency", objective=0.9, kind="latency", threshold=10.0,
            windows=(BurnWindow(ticks=30.0, factor=1.0, severity="page"),),
        )
        slo = SLOEvaluator([spec], frame=5.0)
        for t in range(10):
            slo.observe("latency", 5.0, now=float(t))
        status = slo.evaluate(9.0)["slos"]["latency"]
        assert status["state"] == "ok"
        assert status["percentiles"]["p50"] is not None
        assert status["observations"] == 10
        for t in range(10, 20):
            slo.observe("latency", 50.0, now=float(t))
        assert slo.evaluate(19.0)["state"] == "page"

    def test_observe_on_ratio_spec_raises(self):
        slo = SLOEvaluator([_ratio_spec()])
        with pytest.raises(ValueError):
            slo.observe("availability", 1.0, now=0.0)

    def test_contains_and_specs(self):
        slo = SLOEvaluator()
        assert "availability" in slo
        assert "nonexistent" not in slo
        assert [s.name for s in slo.specs] == sorted(s.name for s in slo.specs)

    def test_duplicate_spec_rejected(self):
        slo = SLOEvaluator([_ratio_spec()])
        with pytest.raises(ValueError):
            slo.add_spec(_ratio_spec())

    def test_recovers_to_ok_when_bad_traffic_ages_out(self):
        slo = SLOEvaluator([_ratio_spec()], frame=5.0)
        for t in range(5):
            slo.record("availability", bad=100, now=float(t))
            slo.evaluate(float(t))
        assert slo.state == "page"
        # Quiet good traffic long past the longest burn window.
        for t in range(5, 120):
            slo.record("availability", good=100, now=float(t))
            slo.evaluate(float(t))
        assert slo.state == "ok"

    def test_write_and_to_json(self, tmp_path):
        slo = SLOEvaluator([_ratio_spec()], frame=5.0)
        slo.record("availability", good=5, now=0.0)
        slo.evaluate(0.0)
        path = tmp_path / "slo.json"
        slo.write(str(path))
        doc = json.loads(path.read_text())
        assert doc == slo.last
        assert json.loads(slo.to_json()) == doc

    def test_to_json_before_any_evaluation(self):
        slo = SLOEvaluator([_ratio_spec()])
        doc = json.loads(SLOEvaluator([_ratio_spec()]).to_json())
        assert doc["state"] == "ok"
        assert doc["t"] is None
        assert slo.last is None


class TestMergeDeterminism:
    """Satellite: shuffled merge order must render byte-identically."""

    @staticmethod
    def _worker(seed):
        slo = SLOEvaluator(frame=5.0)
        rng = random.Random(seed)
        for t in range(60):
            now = float(t)
            slo.record(
                "availability",
                good=rng.randrange(50, 150),
                bad=rng.randrange(0, 3),
                now=now,
            )
            slo.observe("admission_latency", rng.uniform(0.5, 30.0), now=now)
            slo.observe("recovery", rng.uniform(0.25, 8.0), now=now)
            slo.record("shed_rate", good=rng.randrange(10, 90), now=now)
        return slo.snapshot()

    def test_shuffled_merge_orders_render_identically(self):
        snapshots = [self._worker(seed) for seed in range(6)]
        renders = set()
        for order_seed in range(8):
            order = list(range(len(snapshots)))
            random.Random(order_seed).shuffle(order)
            merged = merge_snapshots(
                SLOEvaluator(frame=5.0), [snapshots[i] for i in order]
            )
            merged.evaluate(59.0)
            renders.add(merged.to_json(indent=2))
        assert len(renders) == 1

    def test_merge_rejects_mismatched_shapes(self):
        snap = self._worker(0)
        with pytest.raises(ValueError):
            SLOEvaluator(frame=7.0).merge(snap)
        with pytest.raises(ValueError):
            SLOEvaluator([_ratio_spec()], frame=5.0).merge(snap)

    def test_merged_counts_equal_summed_workers(self):
        snapshots = [self._worker(seed) for seed in range(3)]
        merged = merge_snapshots(SLOEvaluator(frame=5.0), snapshots)
        status = merged.evaluate(59.0)["slos"]["admission_latency"]
        # 60 observations per worker, all within the longest window.
        assert status["observations"] == 180
